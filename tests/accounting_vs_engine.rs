//! Cross-crate integration: the I/O simulator's symbolic accounting agrees
//! with what the byte engine actually does — the property that makes
//! Figures 4–5 trustworthy.

use dcode::baselines::registry::{build, ALL_CODES};
use dcode::codec::{apply_plan, encode, write_logical, Stripe};
use dcode::core::decoder::plan_recovery;
use dcode::iosim::access::{plan_degraded_segment, write_accesses};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

#[test]
fn write_accounting_matches_engine_receipts() {
    let mut rng = StdRng::seed_from_u64(5150);
    for &id in &ALL_CODES {
        let layout = build(id, 7).unwrap();
        let block = 32;
        let payload: Vec<u8> = (0..layout.data_len() * block).map(|_| rng.gen()).collect();
        let mut stripe = Stripe::from_data(&layout, block, &payload);
        encode(&layout, &mut stripe);

        for _ in 0..25 {
            let start = rng.gen_range(0..layout.data_len());
            let len = rng.gen_range(1..=(layout.data_len() - start).min(8));
            let bytes: Vec<u8> = (0..len * block).map(|_| rng.gen()).collect();
            let receipt = write_logical(&layout, &mut stripe, start, &bytes);

            // The simulator's per-disk counts for the same op must equal the
            // engine's touched elements × 2 (read-modify-write).
            let acc = write_accesses(&layout, start, len);
            assert_eq!(
                acc.total() as usize,
                receipt.element_ios(),
                "{} start={start} len={len}",
                id.name()
            );
            // Per-disk attribution agrees too.
            let mut per_disk = vec![0u64; layout.disks()];
            for c in receipt.data_written.iter().chain(&receipt.parities_written) {
                per_disk[c.col] += 2;
            }
            assert_eq!(
                acc.per_disk,
                per_disk,
                "{} start={start} len={len}",
                id.name()
            );
        }
    }
}

#[test]
fn degraded_read_plans_actually_serve_the_read() {
    // The planner's read set must be sufficient: rebuilding the lost
    // requested elements using ONLY cells the plan reads reproduces the
    // correct bytes.
    let mut rng = StdRng::seed_from_u64(31337);
    for &id in &ALL_CODES {
        let layout = build(id, 7).unwrap();
        let block = 16;
        let payload: Vec<u8> = (0..layout.data_len() * block).map(|_| rng.gen()).collect();
        let mut healthy = Stripe::from_data(&layout, block, &payload);
        encode(&layout, &mut healthy);

        for _ in 0..30 {
            let failed = rng.gen_range(0..layout.disks());
            let start = rng.gen_range(0..layout.data_len());
            let len = rng.gen_range(1..=(layout.data_len() - start).min(12));
            let seg = plan_degraded_segment(&layout, start, len, failed);

            // Available cells: everything the plan says it reads.
            let mut available: BTreeSet<_> = seg.surviving_requested.iter().copied().collect();
            available.extend(seg.extra_reads.iter().copied());

            // Check sufficiency: each lost cell's chosen equation reads only
            // available cells.
            for (lost, &eq_idx) in seg.lost.iter().zip(&seg.chosen_eqs) {
                let eq = layout.equation(eq_idx);
                for cell in eq.cells() {
                    if cell != *lost {
                        assert!(
                            available.contains(&cell),
                            "{}: equation {eq_idx} needs unread cell {cell}",
                            id.name()
                        );
                    }
                }
            }

            // And byte-level: rebuild those cells and compare.
            if !seg.lost.is_empty() {
                let erased: BTreeSet<_> = seg.lost.iter().copied().collect();
                let plan = plan_recovery(&layout, &erased).unwrap();
                let mut broken = healthy.clone();
                broken.erase_cells(&seg.lost);
                apply_plan(&mut broken, &plan);
                for cell in &seg.lost {
                    assert_eq!(broken.block(*cell), healthy.block(*cell));
                }
            }
        }
    }
}

#[test]
fn degraded_extra_reads_never_touch_the_failed_disk() {
    for &id in &ALL_CODES {
        let layout = build(id, 11).unwrap();
        for failed in 0..layout.disks() {
            for start in [0usize, 7, 20] {
                let seg = plan_degraded_segment(&layout, start, 9, failed);
                assert!(seg.extra_reads.iter().all(|c| c.col != failed));
                assert!(seg.surviving_requested.iter().all(|c| c.col != failed));
            }
        }
    }
}
