//! Facade-level smoke of the newer public surfaces: spec parsing, sharing
//! analysis, exact fault tolerance, trace replay, bulk encoding, and the
//! Reed–Solomon baseline — everything reachable from the `dcode` crate.

use dcode::baselines::registry::{build, CodeId};
use dcode::baselines::{shortened_evenodd, shortened_rdp};
use dcode::codec::rs::{Erasure, RsRaid6};
use dcode::codec::{encode_payload, payload_of};
use dcode::core::analysis::adjacent_sharing_probability;
use dcode::core::mds::fault_tolerance;
use dcode::core::spec::{format_spec, parse_spec};

#[test]
fn spec_roundtrip_for_every_registered_code() {
    for &id in &dcode::baselines::registry::ALL_CODES {
        let original = build(id, 7).unwrap();
        let parsed = parse_spec(&format_spec(&original)).unwrap();
        assert_eq!(parsed.disks(), original.disks(), "{}", id.name());
        assert_eq!(parsed.data_len(), original.data_len(), "{}", id.name());
        assert_eq!(fault_tolerance(&parsed), 2, "{}", id.name());
    }
}

#[test]
fn sharing_probability_orders_the_codes_as_the_paper_argues() {
    // Horizontal-parity codes share heavily; diagonal-only codes barely.
    let p = 11;
    let prob = |id: CodeId| adjacent_sharing_probability(&build(id, p).unwrap());
    assert!(prob(CodeId::HCode) > 0.8);
    assert!(prob(CodeId::Rdp) > 0.8);
    assert!(prob(CodeId::DCode) > 0.8);
    assert!(prob(CodeId::XCode) < 0.1);
    assert!(prob(CodeId::Hdp) < 0.1); // diagonal stripe mapping
}

#[test]
fn shortened_codes_give_arbitrary_disk_counts() {
    for disks in 4..=12 {
        assert_eq!(shortened_rdp(disks).unwrap().disks(), disks);
        assert_eq!(shortened_evenodd(disks).unwrap().disks(), disks);
    }
    // D-Code itself exists only at primes — the trade-off in one assert.
    assert!(dcode::core::dcode::dcode(9).is_err());
}

#[test]
fn bulk_encode_roundtrip_through_facade() {
    let layout = build(CodeId::DCode, 7).unwrap();
    let payload: Vec<u8> = (0..100_000).map(|i| (i % 241) as u8).collect();
    let stripes = encode_payload(&layout, 1024, &payload, 4);
    assert_eq!(payload_of(&layout, &stripes, payload.len()), payload);
}

#[test]
fn rs_baseline_recovers_like_the_array_codes() {
    let rs = RsRaid6::new(9, 512);
    let data: Vec<Vec<u8>> = (0..9).map(|k| vec![k as u8 + 1; 512]).collect();
    let (p, q) = rs.encode(&data);
    let mut d = data.clone();
    d[2].fill(0);
    d[7].fill(0);
    let (mut pp, mut qq) = (p.clone(), q.clone());
    rs.decode(&mut d, &mut pp, &mut qq, Erasure::TwoData(2, 7));
    assert_eq!(d, data);
}

#[test]
fn exact_tolerance_of_spec_defined_raid5_is_one() {
    let l = parse_spec(
        "name = r5\nrows = 2\ncols = 3\nrow (0,2) = (0,0) (0,1)\nrow (1,2) = (1,0) (1,1)\n",
    )
    .unwrap();
    assert_eq!(fault_tolerance(&l), 1);
}
