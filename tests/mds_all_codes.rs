//! Cross-crate integration: every code in the registry is a genuine RAID-6
//! MDS code at every paper prime, with the complexity profile its paper
//! claims.

use dcode::baselines::registry::{build, CodeId, ALL_CODES};
use dcode::core::mds::{storage_is_optimal, verify_mds};
use dcode::core::metrics::measure;
use dcode::core::PAPER_PRIMES;

#[test]
fn all_codes_all_paper_primes_are_mds() {
    for p in PAPER_PRIMES {
        for &id in &ALL_CODES {
            let layout = build(id, p).unwrap();
            verify_mds(&layout).unwrap_or_else(|v| panic!("{} p={p}: {v}", id.name()));
        }
    }
}

#[test]
fn dcode_is_mds_at_larger_primes() {
    for p in [17usize, 19, 23, 29] {
        let layout = build(CodeId::DCode, p).unwrap();
        verify_mds(&layout).unwrap();
    }
}

#[test]
fn storage_rates_are_mds_optimal() {
    for p in PAPER_PRIMES {
        for &id in &ALL_CODES {
            let layout = build(id, p).unwrap();
            assert!(storage_is_optimal(&layout), "{} p={p}", id.name());
        }
    }
}

#[test]
fn vertical_codes_hit_optimal_update_complexity_and_rdp_does_not() {
    for p in PAPER_PRIMES {
        let d = measure(&build(CodeId::DCode, p).unwrap());
        assert!((d.avg_update_complexity - 2.0).abs() < 1e-9, "D-Code p={p}");
        assert_eq!(d.max_update_complexity, 2);

        let x = measure(&build(CodeId::XCode, p).unwrap());
        assert!((x.avg_update_complexity - 2.0).abs() < 1e-9, "X-Code p={p}");

        let h = measure(&build(CodeId::HCode, p).unwrap());
        assert!((h.avg_update_complexity - 2.0).abs() < 1e-9, "H-Code p={p}");

        // RDP's diagonal-over-row-parity cascade and HDP's coupling exceed 2.
        let r = measure(&build(CodeId::Rdp, p).unwrap());
        assert!(r.avg_update_complexity > 2.0, "RDP p={p}");
        let hdp = measure(&build(CodeId::Hdp, p).unwrap());
        assert!(hdp.avg_update_complexity > 2.0, "HDP p={p}");
    }
}

#[test]
fn dcode_complexities_match_section_3d_closed_forms() {
    for p in PAPER_PRIMES {
        let m = measure(&build(CodeId::DCode, p).unwrap());
        let n = p as f64;
        assert!((m.encode_xors_per_data_element - (2.0 - 2.0 / (n - 2.0))).abs() < 1e-9);
        assert!((m.decode_xors_per_lost_element - (n - 3.0)).abs() < 1e-9);
    }
}

#[test]
fn disk_counts_match_section_4a() {
    for p in PAPER_PRIMES {
        assert_eq!(build(CodeId::Rdp, p).unwrap().disks(), p + 1);
        assert_eq!(build(CodeId::HCode, p).unwrap().disks(), p + 1);
        assert_eq!(build(CodeId::Hdp, p).unwrap().disks(), p - 1);
        assert_eq!(build(CodeId::XCode, p).unwrap().disks(), p);
        assert_eq!(build(CodeId::DCode, p).unwrap().disks(), p);
        assert_eq!(build(CodeId::EvenOdd, p).unwrap().disks(), p + 2);
    }
}
