//! Cross-crate integration: every code in the registry is a genuine RAID-6
//! MDS code at every paper prime, with the complexity profile its paper
//! claims.
//!
//! The exhaustive erasure sweep is proved symbolically: a 2-column erasure
//! is recoverable iff the parity equations restricted to the lost cells
//! have full column rank over GF(2) (`dcode::verify::verify_mds_by_rank`),
//! which checks all C(disks, 2) pairs without running the peeling planner
//! or touching a single payload byte. One byte-level smoke case per code
//! keeps the symbolic result anchored to the real codec (see
//! EXPERIMENTS.md "Static verification" for the old-vs-new timing).

use dcode::baselines::registry::{build, CodeId, ALL_CODES};
use dcode::codec::{encode, recover_columns, Stripe};
use dcode::core::mds::storage_is_optimal;
use dcode::core::metrics::measure;
use dcode::core::PAPER_PRIMES;
use dcode::verify::verify_mds_by_rank;

#[test]
fn all_codes_all_paper_primes_are_mds() {
    for p in PAPER_PRIMES {
        for &id in &ALL_CODES {
            let layout = build(id, p).unwrap();
            verify_mds_by_rank(&layout).unwrap_or_else(|v| panic!("{} p={p}: {v}", id.name()));
        }
    }
}

#[test]
fn all_codes_are_mds_at_larger_primes() {
    // The rank check is cheap enough to push the whole registry well past
    // the paper's primes, where the planner-based sweep grew quadratically
    // painful.
    for p in [17usize, 19, 23, 29, 31] {
        for &id in &ALL_CODES {
            let layout = build(id, p).unwrap();
            verify_mds_by_rank(&layout).unwrap_or_else(|v| panic!("{} p={p}: {v}", id.name()));
        }
    }
}

/// One byte-level round trip per code: encode a real payload, lose two
/// disks, recover, compare bytes. The symbolic rank proof above covers
/// every pair; this anchors it to the actual codec on one adversarial pair
/// (the first and last columns, which for every layout here include at
/// least one parity-bearing column).
#[test]
fn byte_level_smoke_one_pair_per_code() {
    let mut seed = 0x5eedu64;
    for &id in &ALL_CODES {
        let layout = build(id, 7).unwrap();
        let block = 64;
        let payload: Vec<u8> = (0..layout.data_len() * block)
            .map(|_| {
                // Tiny xorshift so each code sees a distinct payload.
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed as u8
            })
            .collect();
        let mut stripe = Stripe::from_data(&layout, block, &payload);
        encode(&layout, &mut stripe);
        let lost = [0, layout.disks() - 1];
        recover_columns(&layout, &mut stripe, &lost)
            .unwrap_or_else(|e| panic!("{}: {e}", id.name()));
        assert_eq!(stripe.data_bytes(&layout), payload, "{}", id.name());
    }
}

#[test]
fn storage_rates_are_mds_optimal() {
    for p in PAPER_PRIMES {
        for &id in &ALL_CODES {
            let layout = build(id, p).unwrap();
            assert!(storage_is_optimal(&layout), "{} p={p}", id.name());
        }
    }
}

#[test]
fn vertical_codes_hit_optimal_update_complexity_and_rdp_does_not() {
    for p in PAPER_PRIMES {
        let d = measure(&build(CodeId::DCode, p).unwrap());
        assert!((d.avg_update_complexity - 2.0).abs() < 1e-9, "D-Code p={p}");
        assert_eq!(d.max_update_complexity, 2);

        let x = measure(&build(CodeId::XCode, p).unwrap());
        assert!((x.avg_update_complexity - 2.0).abs() < 1e-9, "X-Code p={p}");

        let h = measure(&build(CodeId::HCode, p).unwrap());
        assert!((h.avg_update_complexity - 2.0).abs() < 1e-9, "H-Code p={p}");

        // RDP's diagonal-over-row-parity cascade and HDP's coupling exceed 2.
        let r = measure(&build(CodeId::Rdp, p).unwrap());
        assert!(r.avg_update_complexity > 2.0, "RDP p={p}");
        let hdp = measure(&build(CodeId::Hdp, p).unwrap());
        assert!(hdp.avg_update_complexity > 2.0, "HDP p={p}");
    }
}

#[test]
fn dcode_complexities_match_section_3d_closed_forms() {
    for p in PAPER_PRIMES {
        let m = measure(&build(CodeId::DCode, p).unwrap());
        let n = p as f64;
        assert!((m.encode_xors_per_data_element - (2.0 - 2.0 / (n - 2.0))).abs() < 1e-9);
        assert!((m.decode_xors_per_lost_element - (n - 3.0)).abs() < 1e-9);
    }
}

#[test]
fn disk_counts_match_section_4a() {
    for p in PAPER_PRIMES {
        assert_eq!(build(CodeId::Rdp, p).unwrap().disks(), p + 1);
        assert_eq!(build(CodeId::HCode, p).unwrap().disks(), p + 1);
        assert_eq!(build(CodeId::Hdp, p).unwrap().disks(), p - 1);
        assert_eq!(build(CodeId::XCode, p).unwrap().disks(), p);
        assert_eq!(build(CodeId::DCode, p).unwrap().disks(), p);
        assert_eq!(build(CodeId::EvenOdd, p).unwrap().disks(), p + 2);
    }
}
