//! Model-based fault injection: random interleavings of writes, disk
//! failures, rebuilds, silent corruption, scrubs, and reads against the
//! array layer, checked against a plain in-memory shadow copy. If any
//! interleaving the state machine permits ever returns wrong bytes, this
//! fails with the seed that found it.

use dcode::array::scrub::{scrub_stripe, ScrubReport};
use dcode::array::{Array, ArrayError, RotationScheme};
use dcode::core::dcode::dcode;
use dcode::core::Cell;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Harness {
    array: Array,
    shadow: Vec<u8>,
    block: usize,
    /// Cells corrupted since the last scrub, per stripe (at most one per
    /// stripe is repairable, so the injector stays within that budget).
    dirty: Vec<Option<Cell>>,
}

impl Harness {
    fn new(p: usize, stripes: usize, rotation: RotationScheme) -> Self {
        let layout = dcode(p).unwrap();
        let block = 32;
        let array = Array::new(layout, block, stripes, rotation);
        let shadow = vec![0u8; array.capacity_bytes()];
        Harness {
            array,
            shadow,
            block,
            dirty: vec![None; stripes],
        }
    }

    fn elements(&self) -> usize {
        self.array.capacity_elements()
    }

    /// Scrub any stripes with outstanding injected corruption, asserting
    /// the scrubber localizes each one exactly. Called before writes and
    /// disk failures: unscrubbed corruption interleaved with a delta write
    /// or a rebuild gets *entrenched* (parity pollution — delta updates and
    /// reconstruction both trust the on-disk bytes), which is precisely why
    /// real arrays scrub proactively.
    fn scrub_dirty(&mut self) {
        assert!(self.array.failed_disks().is_empty());
        for s in 0..self.array.stripes() {
            if let Some(expected) = self.dirty[s].take() {
                let layout = dcode(self.array.layout().prime()).unwrap();
                match scrub_stripe(&layout, self.array.stripe_mut(s)) {
                    ScrubReport::Repaired { cell } => assert_eq!(cell, expected),
                    other => panic!("stripe {s}: expected repair, got {other:?}"),
                }
            }
        }
    }

    fn step(&mut self, rng: &mut StdRng) {
        match rng.gen_range(0..100) {
            // Write a small random range (only when healthy).
            0..=39 => {
                if self.array.failed_disks().is_empty() {
                    self.scrub_dirty();
                }
                let start = rng.gen_range(0..self.elements());
                let count = rng.gen_range(1..=8.min(self.elements() - start));
                let bytes: Vec<u8> = (0..count * self.block).map(|_| rng.gen()).collect();
                match self.array.write(start, &bytes) {
                    Ok(()) => {
                        let lo = start * self.block;
                        self.shadow[lo..lo + bytes.len()].copy_from_slice(&bytes);
                    }
                    Err(ArrayError::TooManyFailures { .. }) => {
                        assert!(
                            !self.array.failed_disks().is_empty(),
                            "write refused on a healthy array"
                        );
                    }
                    Err(e) => panic!("unexpected write error: {e}"),
                }
            }
            // Fail a disk (after scrubbing, so rebuilds never read
            // corrupted sources).
            40..=54 => {
                if self.array.failed_disks().is_empty() {
                    self.scrub_dirty();
                }
                let disk = rng.gen_range(0..self.array.layout().disks());
                let failed_before = self.array.failed_disks();
                match self.array.fail_disk(disk) {
                    Ok(()) => assert!(failed_before.len() < 2),
                    Err(ArrayError::BadDiskState { .. }) => {
                        assert!(failed_before.contains(&disk));
                    }
                    Err(ArrayError::TooManyFailures { .. }) => {
                        assert_eq!(failed_before.len(), 2);
                    }
                    Err(e) => panic!("unexpected fail error: {e}"),
                }
            }
            // Rebuild a failed disk (if any).
            55..=69 => {
                if let Some(&disk) = self.array.failed_disks().first() {
                    self.array
                        .rebuild_disk(disk)
                        .expect("≤2 failures are rebuildable");
                }
            }
            // Inject silent corruption (healthy stripes only, one per
            // stripe between scrubs) and scrub it out.
            70..=79 => {
                if self.array.failed_disks().is_empty() {
                    let s = rng.gen_range(0..self.array.stripes());
                    if self.dirty[s].is_none() {
                        let grid = self.array.layout().grid();
                        let cell =
                            Cell::new(rng.gen_range(0..grid.rows), rng.gen_range(0..grid.cols));
                        let off = rng.gen_range(0..self.block);
                        self.array.stripe_mut(s).block_mut(cell)[off] ^= 0x3C;
                        self.dirty[s] = Some(cell);
                    }
                }
            }
            80..=89 => {
                if self.array.failed_disks().is_empty() {
                    self.scrub_dirty();
                }
            }
            // Read-and-check a random range (only meaningful when no
            // unscrubbed corruption could alias the range).
            _ => {
                if self.dirty.iter().all(Option::is_none) {
                    let start = rng.gen_range(0..self.elements());
                    let count = rng.gen_range(1..=12.min(self.elements() - start));
                    let got = self
                        .array
                        .read(start, count)
                        .expect("≤2 failures are readable");
                    let lo = start * self.block;
                    assert_eq!(
                        got,
                        &self.shadow[lo..lo + count * self.block],
                        "read mismatch at elements [{start}, {})",
                        start + count
                    );
                }
            }
        }
    }
}

fn run(seed: u64, p: usize, rotation: RotationScheme, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = Harness::new(p, 4, rotation);
    for step in 0..steps {
        h.step(&mut rng);
        let _ = step;
    }
    // Drain: rebuild everything, scrub leftovers, full read-back.
    // (Outstanding corruption implies the array is healthy — the injector
    // only runs then and every failure path scrubs first.)
    while let Some(&d) = h.array.failed_disks().first() {
        h.array.rebuild_disk(d).unwrap();
    }
    h.scrub_dirty();
    let all = h.array.read(0, h.elements()).unwrap();
    assert_eq!(all, h.shadow, "final state diverged (seed {seed})");
}

#[test]
fn random_interleavings_p5_no_rotation() {
    for seed in 0..8 {
        run(seed, 5, RotationScheme::None, 300);
    }
}

#[test]
fn random_interleavings_p5_rotated() {
    for seed in 100..108 {
        run(seed, 5, RotationScheme::PerStripe, 300);
    }
}

#[test]
fn random_interleavings_p7_rotated() {
    for seed in 200..205 {
        run(seed, 7, RotationScheme::PerStripe, 400);
    }
}
