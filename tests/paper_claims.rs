//! The paper's headline quantitative claims, asserted as integration tests
//! over scaled-down versions of the Figure 4–7 pipelines. These are the
//! reproduction's acceptance tests: if a code change breaks the shape of a
//! result, it fails here before anyone re-reads the figures.

use dcode::baselines::registry::{build, CodeId};
use dcode::disksim::experiment::{degraded_read_speed, normal_read_speed, ExperimentParams};
use dcode::iosim::sim::run_workload;
use dcode::iosim::workload::{generate, WorkloadKind, WorkloadParams};
use dcode::recovery::measure_savings;

fn quick_disk() -> ExperimentParams {
    ExperimentParams {
        normal_trials: 400,
        degraded_trials_per_case: 80,
        ..Default::default()
    }
}

fn small_load() -> WorkloadParams {
    WorkloadParams {
        n_ops: 500,
        ..Default::default()
    }
}

/// Figure 4(a): under read-only workloads RDP and H-Code leave parity disks
/// idle (LF = ∞) while HDP, X-Code and D-Code stay near 1.
#[test]
fn fig4a_read_only_balance() {
    let p = 11;
    for (id, expect_inf) in [
        (CodeId::Rdp, true),
        (CodeId::HCode, true),
        (CodeId::Hdp, false),
        (CodeId::XCode, false),
        (CodeId::DCode, false),
    ] {
        let layout = build(id, p).unwrap();
        let ops = generate(
            WorkloadKind::ReadOnly,
            layout.data_len(),
            small_load(),
            2015,
        );
        let lf = run_workload(&layout, &ops).lf();
        if expect_inf {
            assert!(lf.is_infinite(), "{} LF={lf}", id.name());
        } else {
            assert!(lf < 1.2, "{} LF={lf}", id.name());
        }
    }
}

/// Figure 4(b,c): D-Code stays well balanced under write-bearing workloads
/// while RDP degrades badly.
#[test]
fn fig4bc_mixed_balance() {
    let p = 13;
    for kind in [WorkloadKind::ReadIntensive, WorkloadKind::Mixed] {
        let d = build(CodeId::DCode, p).unwrap();
        let ops = generate(kind, d.data_len(), small_load(), 99);
        let lf_d = run_workload(&d, &ops).lf();
        assert!(lf_d < 1.3, "D-Code {kind:?} LF={lf_d}");

        let r = build(CodeId::Rdp, p).unwrap();
        let ops = generate(kind, r.data_len(), small_load(), 99);
        let lf_r = run_workload(&r, &ops).lf();
        assert!(lf_r > 2.0, "RDP {kind:?} LF={lf_r}");
    }
}

/// Figure 5: under the mixed workload, the well-balanced-but-diagonal codes
/// (X-Code, HDP) cost ≥10% more I/O than D-Code at p = 13, while the
/// horizontal codes stay within ±8% of D-Code.
#[test]
fn fig5_io_cost_shape() {
    let p = 13;
    let cost = |id: CodeId| {
        let layout = build(id, p).unwrap();
        let ops = generate(WorkloadKind::Mixed, layout.data_len(), small_load(), 7);
        run_workload(&layout, &ops).cost() as f64
    };
    let d = cost(CodeId::DCode);
    assert!(
        cost(CodeId::XCode) > 1.10 * d,
        "X-Code should cost >10% more"
    );
    assert!(cost(CodeId::Hdp) > 1.10 * d, "HDP should cost >10% more");
    assert!(
        (cost(CodeId::Rdp) - d).abs() < 0.08 * d,
        "RDP should be close"
    );
    assert!(
        (cost(CodeId::HCode) - d).abs() < 0.08 * d,
        "H-Code should be close"
    );
}

/// Figure 6: normal-mode read speed — D-Code equals X-Code (identical data
/// layout) and beats RDP/H-Code, most strongly at small p.
#[test]
fn fig6_normal_read_shape() {
    let params = quick_disk();
    for p in [5usize, 7] {
        let speed = |id: CodeId| normal_read_speed(&build(id, p).unwrap(), params, 11).mb_s;
        let d = speed(CodeId::DCode);
        let x = speed(CodeId::XCode);
        assert!(
            (d - x).abs() < 1e-9,
            "D-Code and X-Code share the data layout"
        );
        assert!(d > 1.10 * speed(CodeId::Rdp), "p={p}: ≥10% over RDP");
        assert!(d > 1.05 * speed(CodeId::HCode), "p={p}: ≥5% over H-Code");
    }
}

/// Figure 7: degraded-mode read speed — D-Code beats X-Code by ≥8% and HDP
/// by ≥15% (the paper reports 11.6–26.0% over X-Code and up to 62% over
/// HDP).
#[test]
fn fig7_degraded_read_shape() {
    let params = quick_disk();
    for p in [7usize, 11] {
        let speed = |id: CodeId| degraded_read_speed(&build(id, p).unwrap(), params, 23).mb_s;
        let d = speed(CodeId::DCode);
        assert!(d > 1.08 * speed(CodeId::XCode), "p={p}: over X-Code");
        assert!(d > 1.15 * speed(CodeId::Hdp), "p={p}: over HDP");
    }
}

/// Section III-D: the hybrid single-disk recovery saves about 25% of reads
/// for both X-Code and D-Code (Theorem 1 makes them identical).
#[test]
fn recovery_savings_about_25_percent() {
    for p in [7usize, 11, 13] {
        let d = measure_savings(&build(CodeId::DCode, p).unwrap());
        let x = measure_savings(&build(CodeId::XCode, p).unwrap());
        assert!((d.reduction_pct() - x.reduction_pct()).abs() < 1e-9);
        assert!(
            d.reduction_pct() > 20.0 && d.reduction_pct() < 32.0,
            "p={p}: {:.1}%",
            d.reduction_pct()
        );
    }
}
