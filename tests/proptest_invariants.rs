//! Property-based tests (proptest) over the core data structures and the
//! byte engine: random payloads, random failures, random write patterns.

use dcode::baselines::registry::{build, CodeId, ALL_CODES};
use dcode::codec::{encode, recover_columns, verify_parities, write_logical, Stripe};
use dcode::core::decoder::plan_column_recovery;
use dcode::iosim::access::{normal_read_accesses, segments, write_accesses};
use dcode::iosim::metrics::load_balancing_factor;
use proptest::prelude::*;

fn arb_code() -> impl Strategy<Value = CodeId> {
    prop::sample::select(ALL_CODES.to_vec())
}

fn arb_prime() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![5usize, 7, 11])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode → erase any two columns → decode reproduces the exact stripe.
    #[test]
    fn roundtrip_any_code_any_failure(
        id in arb_code(),
        p in arb_prime(),
        seed in any::<u64>(),
        c1 in 0usize..16,
        c2 in 0usize..16,
    ) {
        let layout = build(id, p).unwrap();
        let disks = layout.disks();
        let (c1, c2) = (c1 % disks, c2 % disks);
        prop_assume!(c1 != c2);

        let block = 24;
        let mut x = seed | 1;
        let payload: Vec<u8> = (0..layout.data_len() * block).map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 37) as u8
        }).collect();
        let mut stripe = Stripe::from_data(&layout, block, &payload);
        encode(&layout, &mut stripe);
        let golden = stripe.clone();
        recover_columns(&layout, &mut stripe, &[c1, c2]).unwrap();
        prop_assert_eq!(stripe, golden);
    }

    /// Delta updates leave the stripe exactly as a full re-encode would.
    #[test]
    fn update_equals_reencode(
        id in arb_code(),
        start_frac in 0.0f64..1.0,
        len in 1usize..10,
        seed in any::<u64>(),
    ) {
        let layout = build(id, 7).unwrap();
        let block = 16;
        let start = ((layout.data_len() - 1) as f64 * start_frac) as usize;
        let len = len.min(layout.data_len() - start);

        let mut x = seed | 1;
        let mut bytes = |n: usize| -> Vec<u8> {
            (0..n).map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 29) as u8
            }).collect()
        };
        let payload = bytes(layout.data_len() * block);
        let mut live = Stripe::from_data(&layout, block, &payload);
        encode(&layout, &mut live);
        let new_data = bytes(len * block);
        write_logical(&layout, &mut live, start, &new_data);
        prop_assert!(verify_parities(&layout, &live));

        let mut fresh = Stripe::from_data(&layout, block, &live.data_bytes(&layout));
        encode(&layout, &mut fresh);
        prop_assert_eq!(live, fresh);
    }

    /// Triple-column erasures are always rejected (the code is exactly
    /// 2-fault tolerant, never accidentally 3-fault tolerant).
    #[test]
    fn triple_failures_always_rejected(
        id in arb_code(),
        p in arb_prime(),
        c in 0usize..16,
    ) {
        let layout = build(id, p).unwrap();
        let disks = layout.disks();
        let cols = [c % disks, (c + 1) % disks, (c + 2) % disks];
        prop_assert!(plan_column_recovery(&layout, &cols).is_err());
    }

    /// Read accounting: a normal read's total accesses equal its length,
    /// regardless of code, start, or wrap count.
    #[test]
    fn normal_read_cost_is_exact(
        id in arb_code(),
        start in 0usize..200,
        len in 1usize..60,
    ) {
        let layout = build(id, 7).unwrap();
        let acc = normal_read_accesses(&layout, start, len);
        prop_assert_eq!(acc.total() as usize, len);
    }

    /// Write accounting invariants: cost ≥ 2·(len + 1) (every write touches
    /// at least one parity) and LF of any single op is finite only when all
    /// disks participate.
    #[test]
    fn write_cost_lower_bound(
        id in arb_code(),
        start in 0usize..100,
        len in 1usize..30,
    ) {
        let layout = build(id, 7).unwrap();
        let acc = write_accesses(&layout, start, len);
        prop_assert!(acc.total() as usize >= 2 * (len + 1));
        let lf = load_balancing_factor(&acc);
        prop_assert!(lf >= 1.0 || lf.is_infinite());
    }

    /// Segment decomposition is a partition: lengths sum to the request and
    /// every boundary segment fits in one stripe.
    #[test]
    fn segments_partition_requests(
        data_len in 1usize..200,
        start in 0usize..500,
        len in 0usize..500,
    ) {
        let (full, segs) = segments(data_len, start, len);
        let seg_total: usize = segs.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(full * data_len + seg_total, len);
        for (s, l) in segs {
            prop_assert!(l >= 1);
            prop_assert!(s + l <= data_len);
        }
    }
}
