//! Cross-crate integration: the byte engine round-trips real data through
//! every code, every failure pair, and random partial writes.

use dcode::baselines::registry::{build, ALL_CODES};
use dcode::codec::{
    apply_plan, encode, encode_parallel, encode_with_matrix, generator_matrix, recover_columns,
    verify_parities, write_logical, Stripe,
};
use dcode::core::decoder::plan_recovery;
use dcode::core::PAPER_PRIMES;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn random_payload(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen()).collect()
}

#[test]
fn full_roundtrip_every_code_every_pair() {
    let mut rng = StdRng::seed_from_u64(0xD0C0DE);
    for p in [5usize, 7] {
        for &id in &ALL_CODES {
            let layout = build(id, p).unwrap();
            let block = 128;
            let payload = random_payload(&mut rng, layout.data_len() * block);
            let mut stripe = Stripe::from_data(&layout, block, &payload);
            encode(&layout, &mut stripe);
            let golden = stripe.clone();
            for c1 in 0..layout.disks() {
                for c2 in c1 + 1..layout.disks() {
                    let mut s = golden.clone();
                    recover_columns(&layout, &mut s, &[c1, c2]).unwrap();
                    assert_eq!(s, golden, "{} p={p} ({c1},{c2})", id.name());
                }
            }
            assert_eq!(golden.data_bytes(&layout), payload);
        }
    }
}

#[test]
fn three_encoder_backends_agree() {
    let mut rng = StdRng::seed_from_u64(7);
    for p in PAPER_PRIMES {
        for &id in &ALL_CODES {
            let layout = build(id, p).unwrap();
            let block = 64;
            let payload = random_payload(&mut rng, layout.data_len() * block);
            let base = Stripe::from_data(&layout, block, &payload);

            let mut seq = base.clone();
            encode(&layout, &mut seq);
            let mut par = base.clone();
            encode_parallel(&layout, &mut par, 3);
            let mut mat = base.clone();
            encode_with_matrix(&layout, &generator_matrix(&layout), &mut mat);

            assert_eq!(seq, par, "{} p={p}: parallel differs", id.name());
            assert_eq!(seq, mat, "{} p={p}: bit-matrix differs", id.name());
        }
    }
}

#[test]
fn random_partial_writes_keep_parities_consistent() {
    let mut rng = StdRng::seed_from_u64(99);
    for &id in &ALL_CODES {
        let layout = build(id, 7).unwrap();
        let block = 64;
        let payload = random_payload(&mut rng, layout.data_len() * block);
        let mut stripe = Stripe::from_data(&layout, block, &payload);
        encode(&layout, &mut stripe);

        for _ in 0..20 {
            let start = rng.gen_range(0..layout.data_len());
            let max_len = layout.data_len() - start;
            let len = rng.gen_range(1..=max_len.min(6));
            let bytes = random_payload(&mut rng, len * block);
            write_logical(&layout, &mut stripe, start, &bytes);
            assert!(
                verify_parities(&layout, &stripe),
                "{} after write",
                id.name()
            );
        }

        // After the write storm, the stripe still survives a double failure.
        let golden = stripe.clone();
        let mut s = golden.clone();
        recover_columns(&layout, &mut s, &[1, 3]).unwrap();
        assert_eq!(s, golden);
    }
}

#[test]
fn arbitrary_cell_erasures_within_two_columns_recover() {
    // Partial erasures (a subset of two columns' cells) also decode — the
    // planner handles any erasure pattern the column failures dominate.
    let mut rng = StdRng::seed_from_u64(1234);
    let layout = build(dcode::baselines::registry::CodeId::DCode, 7).unwrap();
    let block = 32;
    let payload = random_payload(&mut rng, layout.data_len() * block);
    let mut stripe = Stripe::from_data(&layout, block, &payload);
    encode(&layout, &mut stripe);
    let golden = stripe.clone();

    for _ in 0..50 {
        let c1 = rng.gen_range(0..7);
        let c2 = rng.gen_range(0..7);
        let cells: Vec<_> = layout
            .grid()
            .cells()
            .filter(|c| (c.col == c1 || c.col == c2) && rng.gen_bool(0.6))
            .collect();
        let erased: BTreeSet<_> = cells.iter().copied().collect();
        let plan = plan_recovery(&layout, &erased).unwrap();
        let mut s = golden.clone();
        s.erase_cells(&cells);
        apply_plan(&mut s, &plan);
        assert_eq!(s, golden);
    }
}
