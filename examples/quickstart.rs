//! Quickstart: protect data with D-Code, lose two disks, get it all back.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dcode::codec::{encode, recover_columns, verify_parities, Stripe};
use dcode::core::dcode::dcode;
use dcode::core::mds::verify_mds;

fn main() {
    // A 7-disk array running D-Code: a 7×7 stripe, 35 data elements,
    // horizontal + deployment parities in the last two rows.
    let code = dcode(7).expect("7 is prime");
    println!(
        "D-Code over {} disks: {} data + {} parity elements per stripe",
        code.disks(),
        code.data_len(),
        code.grid().len() - code.data_len()
    );

    // The construction is verified MDS: any two disks may fail.
    verify_mds(&code).expect("D-Code tolerates any two disk failures");

    // Fill a stripe with a payload (64 KiB per element here).
    let block = 64 * 1024;
    let payload: Vec<u8> = (0..code.data_len() * block)
        .map(|i| (i % 251) as u8)
        .collect();
    let mut stripe = Stripe::from_data(&code, block, &payload);
    encode(&code, &mut stripe);
    assert!(verify_parities(&code, &stripe));
    println!("encoded {} bytes of user data", payload.len());

    // Disks 2 and 3 die.
    let plan =
        recover_columns(&code, &mut stripe, &[2, 3]).expect("double failures are recoverable");
    println!(
        "disks 2 and 3 failed: rebuilt {} elements in {} XOR-steps, reading {} surviving elements",
        plan.erased.len(),
        plan.steps.len(),
        plan.surviving_reads().len()
    );

    // Every byte is back.
    assert_eq!(stripe.data_bytes(&code), payload);
    assert!(verify_parities(&code, &stripe));
    println!("payload verified intact — RAID-6 recovery complete");
}
