//! Single-disk recovery optimization: conventional vs hybrid rebuild reads
//! (Section III-D's ~25% claim), shown per failed disk for one code.
//!
//! ```sh
//! cargo run --release --example recovery_optimizer          # D-Code, p=7
//! cargo run --release --example recovery_optimizer -- 11
//! ```

use dcode::core::dcode::dcode;
use dcode::recovery::{conventional_rebuild, measure_savings, optimal_rebuild};

fn main() {
    let p: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let layout = dcode(p).expect("prime required");

    println!("D-Code p = {p}: whole-disk rebuild reads per failed disk\n");
    println!(
        "{:<6} {:>14} {:>11} {:>10}",
        "disk", "conventional", "optimized", "saved"
    );
    for col in 0..layout.disks() {
        let conv = conventional_rebuild(&layout, col);
        let opt = optimal_rebuild(&layout, col);
        println!(
            "{:<6} {:>14} {:>11} {:>9.1}%",
            col,
            conv.reads_with_multiplicity,
            opt.read_count(),
            100.0 * (1.0 - opt.read_count() as f64 / conv.reads_with_multiplicity as f64)
        );
        // Show the family mix the optimizer chose for the first disk.
        if col == 0 {
            let mix: Vec<String> = opt
                .choices
                .iter()
                .map(|(cell, eq)| format!("{cell}:{}", layout.equation(*eq).kind))
                .collect();
            println!("       chosen equations: {}", mix.join(", "));
        }
    }
    let s = measure_savings(&layout);
    println!(
        "\naverage: {:.1} conventional vs {:.1} optimized reads — {:.1}% saved \
         (the paper's ~25% claim, via Xu et al.)",
        s.conventional_reads,
        s.optimized_reads,
        s.reduction_pct()
    );
}
