//! Array tour: the multi-stripe layer end to end — writes, a double disk
//! failure served live, rebuild, a silent-corruption scrub, and the
//! stripe-rotation load study.
//!
//! ```sh
//! cargo run --release --example array_tour
//! ```

use dcode::array::loadstudy::{lf, physical_loads, StripeSkew};
use dcode::array::scrub::{scrub_stripe, ScrubReport};
use dcode::array::{Array, RotationScheme};
use dcode::core::dcode::dcode;

fn main() {
    let layout = dcode(7).unwrap();
    let block = 4096;
    let mut array = Array::new(layout, block, 16, RotationScheme::PerStripe);
    println!(
        "array: 7-disk D-Code × {} stripes = {} KiB capacity",
        array.stripes(),
        array.capacity_bytes() / 1024
    );

    // Fill with a recognizable pattern.
    let payload: Vec<u8> = (0..array.capacity_bytes())
        .map(|i| (i % 251) as u8)
        .collect();
    array.write(0, &payload).unwrap();

    // Two disks die; reads keep working.
    array.fail_disk(1).unwrap();
    array.fail_disk(4).unwrap();
    let degraded = array.read(100, 50).unwrap();
    assert_eq!(degraded, &payload[100 * block..150 * block]);
    println!("disks 1 and 4 failed — 50-element read served correctly while degraded");

    // Rebuild both.
    let r1 = array.rebuild_disk(1).unwrap();
    let r4 = array.rebuild_disk(4).unwrap();
    println!("rebuilt disk 1 ({r1} element reads) and disk 4 ({r4} element reads)");
    assert!(array.failed_disks().is_empty());

    // Inject silent corruption into one element and scrub it out.
    array.stripe_mut(3).block_mut(dcode::core::Cell::new(2, 5))[7] ^= 0xA5;
    match scrub_stripe(&dcode(7).unwrap(), array.stripe_mut(3)) {
        ScrubReport::Repaired { cell } => {
            println!("scrub localized and repaired silent corruption at element {cell}");
        }
        other => panic!("expected repair, got {other:?}"),
    }
    assert_eq!(array.read(0, array.capacity_elements()).unwrap(), payload);

    // Rotation study in one breath (the paper's Section II argument).
    let skewed = vec![1.0, 1.0, 1.0, 1.0, 1.0, 5.0, 5.0]; // RDP-like hot parity columns
    for skew in [StripeSkew::Uniform, StripeSkew::SingleHot] {
        let rotated = lf(&physical_loads(
            &dcode(7).unwrap(),
            &skewed,
            RotationScheme::PerStripe,
            14,
            skew,
        ));
        println!("rotation under {skew:?} stripe popularity: LF = {rotated:.2}");
    }
    println!(
        "rotation only balances when stripes are equally hot — a balanced code needs no rotation."
    );
}
