//! Object store on RAID-6: put objects, lose two disks, keep serving,
//! rebuild, and re-open the store from the array alone — the cloud-storage
//! scenario the paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example object_store
//! ```

use dcode::array::objstore::ObjectStore;
use dcode::array::{Array, RotationScheme};
use dcode::core::dcode::dcode;

fn main() {
    let array = Array::new(dcode(7).unwrap(), 1024, 32, RotationScheme::PerStripe);
    println!(
        "formatting an object store on a 7-disk D-Code array ({} KiB usable)",
        array.capacity_bytes() / 1024
    );
    let mut store = ObjectStore::format(array, 8).expect("format");

    let alpha: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
    let beta: Vec<u8> = b"hello, dependable world".to_vec();
    store.put("alpha.bin", &alpha).unwrap();
    store.put("beta.txt", &beta).unwrap();
    println!("stored: {:?}", store.list());

    store.array_mut().fail_disk(1).unwrap();
    store.array_mut().fail_disk(4).unwrap();
    assert_eq!(store.get("alpha.bin").unwrap(), alpha);
    assert_eq!(store.get("beta.txt").unwrap(), beta);
    println!("disks 1 and 4 failed — both objects still served correctly");

    store.array_mut().rebuild_disk(1).unwrap();
    store.array_mut().rebuild_disk(4).unwrap();
    println!("rebuilt both disks");

    store.delete("beta.txt").unwrap();
    store.put("gamma.bin", &alpha[..10_000]).unwrap();
    assert_eq!(store.get("gamma.bin").unwrap(), &alpha[..10_000]);
    println!("deleted beta.txt, reused its space for gamma.bin");
    println!("final listing: {:?}", store.list());
}
