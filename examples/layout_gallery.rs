//! Layout gallery: render every code in the workspace at a chosen prime,
//! Figure-2 style, with its complexity metrics.
//!
//! ```sh
//! cargo run --example layout_gallery            # p = 7
//! cargo run --example layout_gallery -- 11      # any evaluated prime
//! ```

use dcode::baselines::registry::all_codes;
use dcode::core::metrics::measure;
use dcode::core::render::{render_kind, render_kinds_map};

fn main() {
    let p: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    for layout in all_codes(p) {
        println!("{}", "=".repeat(60));
        print!("{}", render_kinds_map(&layout));
        // Show each parity family's membership picture.
        let kinds: Vec<_> = layout.equation_census();
        for (i, (kind, count)) in kinds.iter().enumerate() {
            println!("\n{count} {kind} equations:");
            print!("{}", render_kind(&layout, *kind, i == 1));
        }
        let m = measure(&layout);
        println!(
            "\nmetrics: {} disks | rate {:.3} (MDS-optimal: {}) | encode {:.3} XOR/element | \
             decode {:.3} XOR/lost | update avg {:.2} / max {}",
            m.disks,
            m.storage_rate,
            m.storage_optimal,
            m.encode_xors_per_data_element,
            m.decode_xors_per_lost_element,
            m.avg_update_complexity,
            m.max_update_complexity
        );
        println!();
    }
}
