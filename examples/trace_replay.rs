//! Trace replay: feed the I/O simulator a block trace instead of the
//! paper's synthetic tuples — either a file in the simple
//! `offset,length,R|W` format or a generated Zipf-skewed trace.
//!
//! ```sh
//! cargo run --release --example trace_replay                 # synthetic Zipf
//! cargo run --release --example trace_replay -- my.trace     # replay a file
//! ```

use dcode::baselines::registry::{build, EVALUATED_CODES};
use dcode::iosim::sim::run_workload;
use dcode::iosim::trace::{parse_trace, zipf_trace, ZipfTraceParams};

fn main() {
    let p = 11;
    let trace_arg = std::env::args().nth(1);

    println!("{:<8} {:>8} {:>12}", "code", "LF", "I/O cost");
    for &id in &EVALUATED_CODES {
        let layout = build(id, p).unwrap();
        let ops = match &trace_arg {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                parse_trace(&text).unwrap_or_else(|e| panic!("{e}"))
            }
            None => zipf_trace(
                layout.data_len(),
                ZipfTraceParams {
                    skew: 1.5,
                    read_fraction: 0.6,
                    ..Default::default()
                },
                2015,
            ),
        };
        let res = run_workload(&layout, &ops);
        let lf = if res.lf().is_finite() {
            format!("{:.2}", res.lf())
        } else {
            "inf".into()
        };
        println!("{:<8} {:>8} {:>12}", id.name(), lf, res.cost());
    }
    if trace_arg.is_none() {
        println!("\n(synthetic Zipf trace: 2000 ops, skew 1.5, 60% reads — pass a");
        println!(" file of `offset,length,R|W` lines to replay a real trace)");
    }
}
