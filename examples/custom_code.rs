//! Define your own array code at runtime from a text spec and run it
//! through the full toolchain: MDS verification, the byte codec, and the
//! I/O simulator — no recompilation, no trait implementations.
//!
//! ```sh
//! cargo run --release --example custom_code
//! ```

use dcode::codec::{encode, recover_columns, Stripe};
use dcode::core::mds::{verify_double_fault_tolerance, verify_mds};
use dcode::core::spec::{format_spec, parse_spec};
use dcode::iosim::sim::run_workload;
use dcode::iosim::workload::{generate, WorkloadKind, WorkloadParams};

/// A hand-written 4-disk code: RAID-5-style row parity plus one extra
/// "checksum of everything" disk. Looks plausible — is it RAID-6?
const NAIVE: &str = "
    name = naive-double-parity
    rows = 2
    cols = 4
    row (0,3) = (0,0) (0,1) (0,2)
    row (1,3) = (1,0) (1,1) (1,2)
    diagonal (0,2) = (0,0) (0,1) (1,0) (1,1)
    diagonal (1,2) = (0,0) (1,1) (0,1) (1,0)
";

fn main() {
    // The naive design parses and protects every element…
    let naive = parse_spec(NAIVE).expect("structurally valid");
    // …but the MDS checker exposes it: its two extra equations are not
    // independent enough to survive every pair of failures.
    match verify_double_fault_tolerance(&naive) {
        Ok(()) => println!("naive code unexpectedly survived — report a bug!"),
        Err(v) => println!("naive 4-disk code rejected: {v}"),
    }

    // D-Code itself round-trips through the same text format.
    let dcode_spec = format_spec(&dcode::core::dcode::dcode(5).unwrap());
    let code = parse_spec(&dcode_spec).unwrap();
    verify_mds(&code).unwrap();
    println!(
        "\nre-parsed D-Code spec verifies MDS at p = {}",
        code.prime()
    );

    // And anything that parses + verifies runs on the whole stack.
    let payload: Vec<u8> = (0..code.data_len() * 256)
        .map(|i| (i % 249) as u8)
        .collect();
    let mut stripe = Stripe::from_data(&code, 256, &payload);
    encode(&code, &mut stripe);
    recover_columns(&code, &mut stripe, &[1, 3]).unwrap();
    assert_eq!(stripe.data_bytes(&code), payload);
    println!("byte roundtrip through a double failure: ok");

    let ops = generate(
        WorkloadKind::Mixed,
        code.data_len(),
        WorkloadParams::default(),
        1,
    );
    let res = run_workload(&code, &ops);
    println!("mixed-workload LF through the simulator: {:.2}", res.lf());
}
