//! Degraded reads end to end: fail a disk, read through the failure, and
//! watch which surviving elements each code has to touch — the mechanism
//! behind the paper's Figure 1 and Figure 7.
//!
//! ```sh
//! cargo run --example degraded_read
//! ```

use dcode::baselines::registry::{build, CodeId, EVALUATED_CODES};
use dcode::codec::{apply_plan, encode, Stripe};
use dcode::core::decoder::plan_recovery;
use dcode::iosim::access::plan_degraded_segment;
use std::collections::BTreeSet;

fn main() {
    let p = 7;
    let (start, len, failed) = (7usize, 6usize, 1usize);
    println!(
        "Reading {len} continuous data elements starting at logical {start} \
         with disk {failed} failed, p = {p}:\n"
    );
    println!(
        "{:<8} {:>9} {:>12} {:>12}",
        "code", "lost", "extra reads", "total reads"
    );
    for &id in &EVALUATED_CODES {
        let layout = build(id, p).unwrap();
        let plan = plan_degraded_segment(&layout, start, len, failed);
        println!(
            "{:<8} {:>9} {:>12} {:>12}",
            id.name(),
            plan.lost.len(),
            plan.extra_reads.len(),
            plan.total_reads()
        );
    }

    // Now actually serve the read through the byte engine for D-Code: the
    // returned bytes must match what a healthy array would produce.
    let layout = build(CodeId::DCode, p).unwrap();
    let block = 4096;
    let payload: Vec<u8> = (0..layout.data_len() * block)
        .map(|i| (i * 7 % 256) as u8)
        .collect();
    let mut healthy = Stripe::from_data(&layout, block, &payload);
    encode(&layout, &mut healthy);

    let mut broken = healthy.clone();
    broken.erase_columns(&[failed]);

    // Reconstruct only what the degraded read needs: the lost requested
    // elements, via the planner's chosen equations.
    let seg = plan_degraded_segment(&layout, start, len, failed);
    let lost: BTreeSet<_> = seg.lost.iter().copied().collect();
    let plan = plan_recovery(&layout, &lost).unwrap();
    apply_plan(&mut broken, &plan);

    for i in start..start + len {
        let cell = layout.logical_to_cell(i);
        assert_eq!(
            broken.block(cell),
            healthy.block(cell),
            "degraded read returned wrong bytes at logical {i}"
        );
    }
    println!(
        "\nD-Code degraded read served correctly: {} lost elements rebuilt from \
         {} extra surviving reads.",
        seg.lost.len(),
        seg.extra_reads.len()
    );
}
