//! A miniature of the paper's Section IV study: run the three workload
//! classes over every evaluated code at one prime and print the
//! load-balancing factor and I/O cost side by side.
//!
//! ```sh
//! cargo run --release --example io_load_study          # p = 11
//! cargo run --release --example io_load_study -- 7 42  # prime, seed
//! ```

use dcode::baselines::registry::{build, EVALUATED_CODES};
use dcode::iosim::sim::run_workload;
use dcode::iosim::workload::{generate, WorkloadKind, WorkloadParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(11);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2015);

    for workload in WorkloadKind::ALL {
        println!(
            "\n== {} workload (p = {p}, seed = {seed}) ==",
            workload.name()
        );
        println!("{:<8} {:>8} {:>14}", "code", "LF", "I/O cost");
        for &id in &EVALUATED_CODES {
            let layout = build(id, p).expect("prime supported");
            let ops = generate(workload, layout.data_len(), WorkloadParams::default(), seed);
            let res = run_workload(&layout, &ops);
            let lf = if res.lf().is_finite() {
                format!("{:.2}", res.lf())
            } else {
                "inf".into()
            };
            println!("{:<8} {:>8} {:>14}", id.name(), lf, res.cost());
        }
    }
    println!(
        "\nD-Code keeps LF near 1 (like X-Code/HDP) while matching the low \
         I/O cost of the horizontal codes — the paper's Figures 4 and 5."
    );
}
