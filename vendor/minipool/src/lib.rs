#![warn(missing_docs)]
//! Minimal persistent worker pool.
//!
//! The codec's parallel executors used to pay a thread spawn + join for
//! every call (`crossbeam::thread::scope` per stripe, per dependency
//! level). A full-stripe encode is a few hundred microseconds of XOR;
//! four `pthread_create`s per call is a measurable fraction of that, and
//! it is pure overhead in steady state. This crate replaces per-call
//! spawning with a pool of **parked, reusable worker threads**: submit a
//! batch of jobs, workers wake, run them, and go back to sleep.
//!
//! Design constraints, in order:
//!
//! * **No `unsafe`.** The workspace is `forbid(unsafe_code)`. A safe pool
//!   cannot lend borrowed data to threads that outlive the call, so jobs
//!   are `'static`: callers move owned data in (detached target blocks,
//!   whole stripes) and share read-only state via [`std::sync::Arc`].
//!   Every result is handed back through a typed channel, so the
//!   *happens-before* edge of the last result also proves all job-held
//!   `Arc` clones are dropped — callers can `Arc::get_mut`/`try_unwrap`
//!   right after [`WorkerPool::run`] returns.
//! * **Panic propagation without poisoning.** A panicking job is caught in
//!   the worker (`catch_unwind`), its payload is shipped back, and the
//!   submitting call re-raises it via `resume_unwind` after the batch
//!   drains — the worker thread itself survives and the pool stays
//!   usable. The queue mutex is never held while a job runs, so job
//!   panics cannot poison it.
//! * **Deterministic shutdown.** Dropping a [`WorkerPool`] closes the
//!   queue and joins every worker. The [`global`] pool is never dropped;
//!   its parked workers die with the process.
//!
//! Jobs must not submit to the pool they run on (a worker blocking on its
//! own queue can deadlock once every worker does it). The executors in
//! this workspace only ever submit from non-pool threads.
//!
//! The pool's primitives come from the `minisim` sync facade: in
//! production they delegate straight to `std::sync`, and under
//! `minisim::check` the same code runs against a deterministic scheduler
//! that exhaustively model-checks its interleavings (`dcode-race` is the
//! suite doing so). The named locks also feed minisim's lock-order
//! registry when it is enabled.

use minisim::sync::{mpsc, Arc, Condvar, Mutex};
use minisim::thread::JoinHandle;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// Type-erased unit of work as stored on the queue.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue state shared between the pool handle and its workers.
struct Shared {
    state: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// A pool of parked worker threads executing batches of jobs.
///
/// Workers are spawned lazily: [`WorkerPool::run`] grows the pool to the
/// batch size (capped at [`MAX_WORKERS`]), so a pool sized by its biggest
/// batch is reused by every later call at zero spawn cost.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Hard cap on pool size — a backstop against runaway fan-out requests,
/// far above any sensible XOR parallelism.
pub const MAX_WORKERS: usize = 256;

impl WorkerPool {
    /// An empty pool; workers are added by [`WorkerPool::ensure_workers`]
    /// or on demand by [`WorkerPool::run`].
    pub fn new() -> Self {
        WorkerPool {
            shared: Arc::new(Shared {
                state: Mutex::named(
                    "pool.queue",
                    QueueState {
                        jobs: VecDeque::new(),
                        shutdown: false,
                    },
                ),
                available: Condvar::named("pool.available"),
            }),
            workers: Mutex::named("pool.workers", Vec::new()),
        }
    }

    /// A pool pre-grown to `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        let pool = WorkerPool::new();
        pool.ensure_workers(workers);
        pool
    }

    /// Number of worker threads currently alive.
    pub fn workers(&self) -> usize {
        self.workers.lock().expect("pool worker list").len()
    }

    /// Grow the pool to at least `n` workers (capped at [`MAX_WORKERS`]).
    /// Never shrinks: parked workers cost one blocked OS thread each.
    pub fn ensure_workers(&self, n: usize) {
        let n = n.min(MAX_WORKERS);
        let mut workers = self.workers.lock().expect("pool worker list");
        while workers.len() < n {
            let shared = Arc::clone(&self.shared);
            let handle = minisim::thread::Builder::new()
                .name(format!("minipool-{}", workers.len()))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
            workers.push(handle);
        }
    }

    /// Run a batch of jobs to completion and return their results in
    /// submission order.
    ///
    /// The calling thread blocks until every job has finished. A batch of
    /// one runs inline on the caller (no queue round-trip). If any job
    /// panicked, the panic of the lowest-indexed failing job is re-raised
    /// here — after the whole batch has drained, so the pool is left
    /// clean and reusable.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            let mut jobs = jobs;
            return vec![(jobs.pop().expect("one job"))()];
        }
        self.ensure_workers(n);
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        {
            let mut state = self.shared.state.lock().expect("pool queue");
            for (i, job) in jobs.into_iter().enumerate() {
                let tx = tx.clone();
                state.jobs.push_back(Box::new(move || {
                    // The job (and everything it owns, including Arc
                    // clones of shared state) is consumed and dropped
                    // *before* the send, so receiving the result proves
                    // the job's borrows-via-Arc are gone.
                    let result = catch_unwind(AssertUnwindSafe(job));
                    let _ = tx.send((i, result));
                }));
            }
        }
        self.shared.available.notify_all();
        drop(tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for _ in 0..n {
            let (i, result) = rx.recv().expect("pool worker lost a result");
            match result {
                Ok(value) => out[i] = Some(value),
                Err(payload) => {
                    if first_panic.as_ref().map_or(true, |(j, _)| i < *j) {
                        first_panic = Some((i, payload));
                    }
                }
            }
        }
        if let Some((_, payload)) = first_panic {
            resume_unwind(payload);
        }
        out.into_iter()
            .map(|v| v.expect("every job reported a result"))
            .collect()
    }

    /// Submit one detached job: it runs on a pool worker as soon as one is
    /// free, the call never blocks, and no result comes back. Panics
    /// inside the job are caught by the worker loop, so a misbehaving job
    /// cannot kill its worker. This is the front-end shape a server's
    /// connection handlers want — long-lived jobs that end on their own
    /// schedule, with the pool size acting as the concurrent-connection
    /// cap (excess submissions queue until a worker frees up).
    ///
    /// The pool is grown to at least one worker so a submission can never
    /// be stranded on an empty pool; size the pool for the expected
    /// concurrency with [`WorkerPool::ensure_workers`] up front.
    ///
    /// # Errors
    /// Returns the job back if the pool has started shutting down (its
    /// `Drop` is running or done): a job queued after shutdown would
    /// never run, and before this check a `submit` racing `Drop` could
    /// strand the job on a dead queue. Model-checked by `dcode-race`'s
    /// submit-vs-drop invariant.
    pub fn submit<F>(&self, job: F) -> Result<(), F>
    where
        F: FnOnce() + Send + 'static,
    {
        self.ensure_workers(1);
        {
            let mut state = self.shared.state.lock().expect("pool queue");
            if state.shutdown {
                return Err(job);
            }
            state.jobs.push_back(Box::new(job));
        }
        self.shared.available.notify_one();
        Ok(())
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool queue");
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("pool worker list"));
        for handle in workers {
            // A worker cannot panic outside a job (jobs are caught), so a
            // failed join here means the runtime is already unwinding.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool queue");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.available.wait(state).expect("pool queue");
            }
        };
        // Belt and braces: the submission wrapper already catches panics;
        // this keeps the worker alive even if a wrapper is bypassed.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// The process-wide shared pool used by the codec's parallel executors.
/// Grown on demand by each batch, never dropped.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(WorkerPool::new)
}

/// Number of hardware threads available to this process (cached; 1 if
/// unknown).
pub fn host_parallelism() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED
        .get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Clamp a requested thread count to what the host can actually run in
/// parallel. Fanning CPU-bound XOR out over more workers than cores only
/// adds queueing overhead — on a single-core host this returns 1 and the
/// executors fall back to their sequential paths.
pub fn effective_parallelism(requested: usize) -> usize {
    requested.max(1).min(host_parallelism())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new();
        let jobs: Vec<_> = (0..16u64).map(|i| move || i * i).collect();
        assert_eq!(
            pool.run(jobs),
            (0..16u64).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shared_state_is_released_by_batch_completion() {
        // The documented contract: once run() returns, no worker holds an
        // Arc clone passed into the jobs, so get_mut succeeds.
        let pool = WorkerPool::new();
        let mut data = Arc::new(vec![1u64, 2, 3, 4]);
        let jobs: Vec<_> = (0..4)
            .map(|i| {
                let data = Arc::clone(&data);
                move || data[i] * 10
            })
            .collect();
        assert_eq!(pool.run(jobs), vec![10, 20, 30, 40]);
        assert!(
            Arc::get_mut(&mut data).is_some(),
            "workers released the Arc"
        );
    }

    #[test]
    fn pool_grows_to_batch_size_and_is_reused() {
        let pool = WorkerPool::new();
        assert_eq!(pool.workers(), 0);
        pool.run((0..6).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(pool.workers(), 6);
        pool.run((0..3).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(pool.workers(), 6, "smaller batches do not shrink the pool");
    }

    #[test]
    fn single_job_runs_inline_without_workers() {
        let pool = WorkerPool::new();
        assert_eq!(pool.run(vec![|| 7u32]), vec![7]);
        assert_eq!(pool.workers(), 0);
    }

    #[test]
    fn worker_panic_propagates_to_submitter() {
        let pool = WorkerPool::with_workers(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| 1u32) as Box<dyn FnOnce() -> u32 + Send>,
                Box::new(|| panic!("job exploded")),
            ]);
        }))
        .expect_err("panic must propagate");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload preserved");
        assert_eq!(msg, "job exploded");
    }

    #[test]
    fn panic_does_not_poison_the_pool() {
        let pool = WorkerPool::with_workers(2);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| panic!("first batch dies")) as Box<dyn FnOnce() + Send>,
                Box::new(|| {}),
            ]);
        }));
        // The same workers serve the next batch.
        let jobs: Vec<_> = (0..4u32).map(|i| move || i + 1).collect();
        assert_eq!(pool.run(jobs), vec![1, 2, 3, 4]);
    }

    #[test]
    fn earliest_submitted_panic_wins() {
        let pool = WorkerPool::with_workers(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| panic!("first")) as Box<dyn FnOnce() + Send>,
                Box::new(|| panic!("second")),
            ]);
        }))
        .expect_err("panic must propagate");
        assert_eq!(caught.downcast_ref::<&str>().copied(), Some("first"));
    }

    #[test]
    fn submit_runs_detached_jobs_and_survives_their_panics() {
        let pool = WorkerPool::with_workers(2);
        let (tx, rx) = mpsc::channel();
        let t1 = tx.clone();
        pool.submit(move || {
            t1.send(1u32).unwrap();
        })
        .ok()
        .expect("live pool accepts jobs");
        pool.submit(|| panic!("detached job explodes"))
            .ok()
            .expect("live pool accepts jobs");
        let t2 = tx;
        pool.submit(move || {
            t2.send(2u32).unwrap();
        })
        .ok()
        .expect("live pool accepts jobs");
        let mut got: Vec<u32> = (0..2).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "jobs after a panic still ran");
        // Batch submission still works on the same workers.
        assert_eq!(pool.run(vec![|| 9u32]), vec![9]);
    }

    #[test]
    fn submit_on_an_empty_pool_grows_one_worker() {
        let pool = WorkerPool::new();
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(42u32).unwrap())
            .ok()
            .expect("live pool accepts jobs");
        assert_eq!(rx.recv().unwrap(), 42);
        assert!(pool.workers() >= 1);
    }

    #[test]
    fn drop_joins_every_worker() {
        let pool = WorkerPool::with_workers(4);
        let shared = Arc::downgrade(&pool.shared);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        drop(pool);
        // Every worker held an Arc<Shared>; all joined means all released.
        assert!(shared.upgrade().is_none(), "drop joined all workers");
    }

    #[test]
    fn worker_cap_is_enforced() {
        let pool = WorkerPool::new();
        pool.ensure_workers(MAX_WORKERS + 50);
        assert_eq!(pool.workers(), MAX_WORKERS);
        drop(pool);
    }

    #[test]
    fn effective_parallelism_clamps() {
        assert_eq!(effective_parallelism(0), 1);
        assert!(effective_parallelism(usize::MAX) <= host_parallelism());
        assert_eq!(effective_parallelism(1), 1);
    }
}
