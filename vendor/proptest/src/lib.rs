#![warn(missing_docs)]
//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of proptest its test suites use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * range strategies, [`arbitrary::any`], [`collection::vec`], and
//!   [`sample::select`].
//!
//! Semantics: each test body runs `cases` times with values drawn from a
//! deterministic per-test RNG (seeded from the test name, so failures
//! reproduce run-to-run). There is **no shrinking** — a failing case panics
//! with the assertion message directly. That trades minimal counterexamples
//! for zero dependencies, which is the right trade inside this offline
//! build image.

pub mod test_runner {
    //! Test configuration and the deterministic per-test RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG handed to strategies; seeded from the test name.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Build the RNG for the named test (FNV-1a over the name).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the primitive range strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.0.gen_range(self.clone())
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! [`any`] — "any value of this type" strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_gen {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.0.gen()
                }
            }
        )*};
    }
    impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    /// The strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies ([`vec`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A range of collection sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies ([`select`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy choosing uniformly among a fixed set of values.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.0.gen_range(0..self.0.len())].clone()
        }
    }

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: no options");
        Select(options)
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection`, `prop::sample`).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Run each contained test function over many random strategy draws.
///
/// Supported form (a subset of upstream proptest's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..100, ys in prop::collection::vec(any::<u8>(), 0..32)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            $(let $arg = $strat;)+
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property (panics on failure; no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds; assume skips odd values.
        #[test]
        fn ranges_and_assume(x in 0usize..50, y in 1u64..=9) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x < 50 && x % 2 == 0);
            prop_assert!((1..=9).contains(&y));
        }

        /// Vec strategy respects its size range, select picks members.
        #[test]
        fn vec_and_select(v in prop::collection::vec(any::<u8>(), 3..6),
                          pick in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
            prop_assert!([2usize, 4, 8].contains(&pick));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(crate::arbitrary::any::<u64>(), 4..5);
        let mut r1 = crate::test_runner::TestRng::for_test("deterministic_across_runs");
        let mut r2 = crate::test_runner::TestRng::for_test("deterministic_across_runs");
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
