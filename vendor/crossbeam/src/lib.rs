#![warn(missing_docs)]
//! Offline drop-in subset of the `crossbeam` 0.8 API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the one crossbeam surface it uses: [`thread::scope`]
//! with spawn/join semantics. Since Rust 1.63 the standard library provides
//! scoped threads natively, so this is a thin adapter over
//! [`std::thread::scope`] that restores crossbeam's closure signature
//! (`FnOnce(&Scope) -> T`) and `Result`-returning entry point.
//!
//! One behavioural difference: crossbeam catches child-thread panics and
//! reports them through the returned `Result`, whereas `std::thread::scope`
//! resumes the unwind on the joining thread. Every call site in this
//! workspace treats a panicked worker as fatal (`.expect(..)`), so the
//! difference is unobservable here.

/// Scoped threads (the `crossbeam::thread` module).
pub mod thread {
    /// A scope in which borrowed-data threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish and return its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so workers can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handoff = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handoff)),
            }
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Always `Ok` here (see the crate docs on panics).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(3)
                .map(|part| s.spawn(move |_| part.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        })
        .expect("scope failed");
        assert_eq!(total, 36);
    }

    #[test]
    fn workers_can_spawn_siblings() {
        let n = crate::thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().expect("inner panicked") * 2
            });
            h.join().expect("outer panicked")
        })
        .expect("scope failed");
        assert_eq!(n, 42);
    }

    #[test]
    fn implicit_join_without_handles() {
        let mut results = vec![0usize; 4];
        crate::thread::scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i + 1);
            }
        })
        .expect("scope failed");
        assert_eq!(results, vec![1, 2, 3, 4]);
    }
}
