#![warn(missing_docs)]
//! Offline drop-in subset of the Criterion.rs benchmarking API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the benchmarking surface its `benches/` targets use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up, calibrated to pick an
//! iteration count that fills a fixed per-sample budget, then timed over a
//! configurable number of samples. The **median** per-iteration time is
//! reported (robust to scheduler noise), along with derived throughput when
//! the group declares one. There is no outlier analysis, HTML report, or
//! saved baseline — `cargo bench` prints one line per benchmark.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export of the std
/// hint, which is what upstream criterion uses on recent toolchains).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark: a function name plus an optional
/// parameter rendered with `Display`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id for `function` measured at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id with a parameter only (upstream API parity).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Units processed per iteration, used to derive throughput.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost. This implementation times every
/// routine call individually, so the variants only hint at batch sizing.
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    /// Inputs are small; large batches are fine.
    SmallInput,
    /// Inputs are large; batch conservatively.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Timing harness handed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a SamplingConfig,
    samples_ns: Vec<f64>,
}

#[derive(Clone, Debug)]
struct SamplingConfig {
    sample_count: usize,
    /// Wall-clock budget for one sample (many iterations).
    sample_budget: Duration,
    warm_up: Duration,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            sample_count: 15,
            sample_budget: Duration::from_millis(12),
            warm_up: Duration::from_millis(20),
        }
    }
}

impl Bencher<'_> {
    /// Time `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: how many calls fit in the sample budget?
        let mut calls_per_sample = 1u64;
        let warm_start = Instant::now();
        let mut one = Duration::ZERO;
        let mut warm_calls = 0u32;
        while warm_start.elapsed() < self.cfg.warm_up || warm_calls < 3 {
            let t = Instant::now();
            black_box(routine());
            one = t.elapsed();
            warm_calls += 1;
            if warm_calls >= 1000 {
                break;
            }
        }
        if one > Duration::ZERO {
            let fit = self.cfg.sample_budget.as_nanos() / one.as_nanos().max(1);
            calls_per_sample = fit.clamp(1, 1_000_000) as u64;
        }
        self.samples_ns.clear();
        for _ in 0..self.cfg.sample_count {
            let t = Instant::now();
            for _ in 0..calls_per_sample {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / calls_per_sample as f64);
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up: a few untimed runs.
        for _ in 0..3 {
            let input = setup();
            black_box(routine(input));
        }
        // Each sample times a single routine call (inputs are typically
        // expensive clones here, so per-call timing is the honest choice).
        self.samples_ns.clear();
        let deadline = Instant::now() + self.cfg.sample_budget * self.cfg.sample_count as u32;
        for _ in 0..self.cfg.sample_count.max(10) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn median_ns(&self) -> f64 {
        let mut xs = self.samples_ns.clone();
        if xs.is_empty() {
            return 0.0;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in timings"));
        xs[xs.len() / 2]
    }
}

/// One finished measurement, retained on the [`Criterion`] so callers (and
/// bench binaries that post-process results) can read medians back.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/function/param` label.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Declared throughput units, if any.
    pub throughput: Option<Throughput>,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    cfg: SamplingConfig,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            cfg_override: None,
        }
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of benchmarks sharing a name prefix and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    cfg_override: Option<SamplingConfig>,
}

impl BenchmarkGroup<'_> {
    /// Declare the units processed per iteration of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let mut cfg = self
            .cfg_override
            .clone()
            .unwrap_or_else(|| self.criterion.cfg.clone());
        cfg.sample_count = n.max(3);
        self.cfg_override = Some(cfg);
        self
    }

    /// Measure `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let cfg = self
            .cfg_override
            .clone()
            .unwrap_or_else(|| self.criterion.cfg.clone());
        let mut bencher = Bencher {
            cfg: &cfg,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        self.record(id, &bencher);
        self
    }

    /// Measure `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (upstream API parity; reporting happens per-bench).
    pub fn finish(self) {}

    fn record(&mut self, id: BenchmarkId, bencher: &Bencher) {
        let median = bencher.median_ns();
        let full = format!("{}/{}", self.name, id.label());
        let thrpt = match self.throughput {
            Some(Throughput::Bytes(bytes)) if median > 0.0 => {
                let gib_s = bytes as f64 / median * 1e9 / (1024.0 * 1024.0 * 1024.0);
                format!("  thrpt: {gib_s:8.3} GiB/s")
            }
            Some(Throughput::Elements(n)) if median > 0.0 => {
                let elem_s = n as f64 / median * 1e9;
                format!("  thrpt: {elem_s:12.0} elem/s")
            }
            _ => String::new(),
        };
        println!("{full:<56} time: {:>12} /iter{thrpt}", fmt_ns(median));
        self.criterion.results.push(BenchResult {
            id: full,
            median_ns: median,
            throughput: self.throughput,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundle benchmark functions into a group runner, as upstream criterion
/// does. The optional `config = ..; targets = ..` form is accepted and the
/// config expression ignored (this harness has no per-group config type).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Generate `main` running every listed group. Unrecognized CLI arguments
/// (`--bench`, filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(black_box(i).wrapping_mul(2654435761));
        }
        acc
    }

    #[test]
    fn records_results_with_throughput() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.throughput(Throughput::Bytes(1024));
            g.sample_size(5);
            g.bench_function(BenchmarkId::new("spin", 100), |b| {
                b.iter(|| spin(100));
            });
            g.bench_function("batched", |b| {
                b.iter_batched(
                    || vec![1u8; 64],
                    |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                    BatchSize::LargeInput,
                );
            });
            g.finish();
        }
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "unit/spin/100");
        assert!(c.results()[0].median_ns > 0.0);
        assert_eq!(c.results()[1].id, "unit/batched");
    }
}
