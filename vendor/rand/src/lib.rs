#![warn(missing_docs)]
//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of `rand` it actually uses: the
//! [`RngCore`] / [`SeedableRng`] / [`Rng`] traits and a deterministic
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded via SplitMix64 —
//! statistically solid for simulation workloads, *not* cryptographic, and
//! its stream differs from upstream `rand`'s ChaCha-based `StdRng` (no test
//! in this workspace depends on the exact upstream stream, only on
//! determinism per seed).

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in chunks.by_ref() {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Create a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a generator from a `u64`, expanded via SplitMix64 (the same
    /// convention upstream `rand` documents for this constructor).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in chunks.by_ref() {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = sm.next().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of a supported primitive type.
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types [`Rng::gen`] can produce.
pub trait SampleUniform: Sized {
    /// Draw one uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via Lemire's multiply-shift reduction.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, this workspace's stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1usize..=8);
            assert!((1..=8).contains(&y));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(5);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn uniform_unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
