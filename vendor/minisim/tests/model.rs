//! Model-checker engine tests: the checker must find the classic
//! concurrency bugs (lost update, AB-BA deadlock, lost wakeup, unlooped
//! condvar wait) and must certify their fixed versions across an
//! exhaustively enumerated interleaving space, with every counterexample
//! reproducible from its seed.

use minisim::sync::{mpsc, Arc, Condvar, Mutex};
use minisim::{check, replay, thread, CheckOptions, ViolationKind};
use std::sync::PoisonError;

fn opts() -> CheckOptions {
    CheckOptions::default()
}

#[test]
fn correct_counter_passes_and_explores_many_interleavings() {
    let report = check(&opts(), || {
        let n = Arc::new(Mutex::new(0_u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    *n.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
    assert!(report.complete, "tree should be exhausted");
    assert!(
        report.interleavings >= 4,
        "expected several distinct interleavings, got {}",
        report.interleavings
    );
}

#[test]
fn lost_update_is_found_with_replayable_seed() {
    // Read-modify-write with the lock dropped in the middle: the classic
    // lost update. Some interleaving must make the final count 1.
    let model = || {
        let n = Arc::new(Mutex::new(0_u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let read = *n.lock().unwrap();
                    *n.lock().unwrap() = read + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2, "lost update");
    };
    let report = check(&opts(), model);
    let v = report.violation.expect("checker must find the lost update");
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(v.message.contains("lost update"), "message: {}", v.message);
    assert!(!v.trace.is_empty(), "violation must carry a trace");

    // The seed replays to the same violation.
    let rep = replay(&v.seed, model).expect("seed parses");
    let (kind, msg) = rep.violation.expect("replay reproduces the violation");
    assert_eq!(kind, ViolationKind::Panic);
    assert!(msg.contains("lost update"));
    // Anonymous locks are labeled by a process-global id, which differs
    // between the original run and the replay — compare modulo ids.
    fn strip_ids(trace: &[String]) -> Vec<String> {
        trace
            .iter()
            .map(|line| match line.split_once('#') {
                Some((head, tail)) => {
                    let rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
                    format!("{head}#{rest}")
                }
                None => line.clone(),
            })
            .collect()
    }
    assert_eq!(
        strip_ids(&rep.trace),
        strip_ids(&v.trace),
        "replay trace must match the recorded one"
    );
}

#[test]
fn ab_ba_deadlock_is_detected() {
    let report = check(&opts(), || {
        let a = Arc::new(Mutex::named("test.lock-a", ()));
        let b = Arc::new(Mutex::named("test.lock-b", ()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        let _ = t.join();
    });
    let v = report
        .violation
        .expect("checker must find the AB-BA deadlock");
    assert_eq!(v.kind, ViolationKind::Deadlock, "message: {}", v.message);
    assert!(
        v.message.contains("test.lock") || v.message.contains("waiting for lock"),
        "message should name the blocked threads: {}",
        v.message
    );
}

#[test]
fn lock_ordered_version_of_ab_ba_passes() {
    let report = check(&opts(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        let _ = t.join();
    });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
    assert!(report.complete);
}

#[test]
fn lost_wakeup_is_detected_as_deadlock() {
    // The waiter checks the flag once, *then* waits: if the notifier
    // runs in between, the notification is lost and the waiter blocks
    // forever.
    let report = check(&opts(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (flag, cv) = &*s2;
            let ready = *flag.lock().unwrap();
            if !ready {
                // BUG: the flag may have been set between the check and
                // this wait — and the wait never rechecks.
                let g = flag.lock().unwrap();
                let _g = cv.wait(g).unwrap();
            }
        });
        {
            let (flag, cv) = &*state;
            *flag.lock().unwrap() = true;
            cv.notify_one();
        }
        let _ = t.join();
    });
    let v = report.violation.expect("checker must find the lost wakeup");
    assert_eq!(v.kind, ViolationKind::Deadlock, "message: {}", v.message);
    assert!(v.message.contains("condvar"), "message: {}", v.message);
}

#[test]
fn unlooped_wait_is_broken_by_spurious_wakeup() {
    // A wait whose predicate is not rechecked in a loop: only the
    // injected spurious wakeup can catch this (no real notification is
    // ever lost here).
    let report = check(&opts(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (flag, cv) = &*s2;
            let mut g = flag.lock().unwrap();
            if !*g {
                g = cv.wait(g).unwrap();
            }
            assert!(*g, "woke without the predicate holding");
        });
        {
            let (flag, cv) = &*state;
            let mut g = flag.lock().unwrap();
            *g = true;
            drop(g);
            cv.notify_one();
        }
        let _ = t.join();
    });
    let v = report
        .violation
        .expect("spurious wakeup must break the unlooped wait");
    assert_eq!(v.kind, ViolationKind::Panic, "message: {}", v.message);
    assert!(v.message.contains("predicate"), "message: {}", v.message);
}

#[test]
fn looped_wait_survives_spurious_wakeups() {
    let report = check(&opts(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (flag, cv) = &*s2;
            let mut g = flag.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
            assert!(*g);
        });
        {
            let (flag, cv) = &*state;
            *flag.lock().unwrap() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
    assert!(report.complete);
}

#[test]
fn wait_while_helper_is_spurious_safe() {
    let report = check(&opts(), || {
        let state = Arc::new((Mutex::new(0_u32), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (n, cv) = &*s2;
            let g = cv.wait_while(n.lock().unwrap(), |v| *v < 2).unwrap();
            assert_eq!(*g, 2);
        });
        let (n, cv) = &*state;
        for _ in 0..2 {
            *n.lock().unwrap() += 1;
            cv.notify_all();
        }
        t.join().unwrap();
    });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
}

#[test]
fn mpsc_delivers_in_order_and_reports_disconnect() {
    let report = check(&opts(), || {
        let (tx, rx) = mpsc::channel::<u32>();
        let t = thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        // Sender dropped once the thread finishes.
        t.join().unwrap();
        assert!(rx.recv().is_err(), "disconnected channel must error");
    });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
    assert!(report.interleavings >= 2);
}

#[test]
fn mpsc_send_to_dropped_receiver_fails() {
    let report = check(&opts(), || {
        let (tx, rx) = mpsc::channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(mpsc::SendError(7)));
    });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
}

#[test]
fn panic_in_spawned_thread_is_reported_with_thread_name() {
    let report = check(&opts(), || {
        let t = thread::Builder::new()
            .name("boomer".to_string())
            .spawn(|| panic!("boom"))
            .unwrap();
        let _ = t.join();
    });
    let v = report.violation.expect("panic must be a violation");
    assert_eq!(v.kind, ViolationKind::Panic);
    assert!(v.message.contains("boomer"), "message: {}", v.message);
    assert!(v.message.contains("boom"), "message: {}", v.message);
}

#[test]
fn join_returns_values_and_propagates_panics_sim_and_std() {
    // Managed mode.
    let report = check(&opts(), || {
        let t = thread::spawn(|| 41 + 1);
        assert_eq!(t.join().unwrap(), 42);
    });
    // The model itself is violation-free... except the panic-propagation
    // half below runs unmanaged.
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );

    // Unmanaged mode: plain std behavior, including panic payloads.
    let t = thread::spawn(|| 7_u32);
    assert_eq!(t.join().unwrap(), 7);
    let t = thread::spawn(|| -> u32 { panic!("std path boom") });
    let err = t.join().unwrap_err();
    let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
    assert!(msg.contains("std path boom"));
}

#[test]
fn unmanaged_facade_behaves_like_std_including_poison() {
    let m = Arc::new(Mutex::new(5_u32));
    let m2 = Arc::clone(&m);
    let t = thread::spawn(move || {
        let _g = m2.lock().unwrap();
        panic!("poison it");
    });
    let _ = t.join();
    // Poisoned: Err carries a usable guard, exactly like std.
    let v = *m.lock().unwrap_or_else(PoisonError::into_inner);
    assert_eq!(v, 5);

    // Condvar + channel round-trip off the sim path.
    let (tx, rx) = mpsc::channel::<u32>();
    let t = thread::spawn(move || {
        for i in 0..10 {
            tx.send(i).unwrap();
        }
    });
    let got: Vec<u32> = rx.iter().collect();
    t.join().unwrap();
    assert_eq!(got, (0..10).collect::<Vec<_>>());
}

#[test]
fn preemption_bound_scales_the_explored_tree() {
    let model = || {
        let n = Arc::new(Mutex::new(0_u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    for _ in 0..2 {
                        *n.lock().unwrap() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 4);
    };
    let small = check(
        &CheckOptions {
            preemption_bound: 1,
            ..opts()
        },
        model,
    );
    let large = check(
        &CheckOptions {
            preemption_bound: 3,
            ..opts()
        },
        model,
    );
    assert!(small.violation.is_none() && large.violation.is_none());
    assert!(
        large.interleavings > small.interleavings,
        "pb=3 ({}) must explore more than pb=1 ({})",
        large.interleavings,
        small.interleavings
    );
}

#[test]
fn interleaving_budget_truncates_exploration() {
    let report = check(
        &CheckOptions {
            max_interleavings: 3,
            ..opts()
        },
        || {
            let n = Arc::new(Mutex::new(0_u32));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        *n.lock().unwrap() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        },
    );
    assert!(report.violation.is_none());
    assert!(!report.complete, "budget must truncate the tree");
    assert_eq!(report.interleavings, 3);
}

#[test]
fn bad_seed_is_rejected() {
    assert!(replay("not a seed", || {}).is_err());
    assert!(replay("p2s1", || {}).is_err());
    assert!(replay("px sy:0.1", || {}).is_err());
}
