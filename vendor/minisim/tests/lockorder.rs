//! Lock-order registry tests. The registry is process-global, so every
//! test in this binary funnels through one serializing mutex and resets
//! the registry before use.

use minisim::lockorder;
use minisim::sync::{Arc, Condvar, Mutex};
use minisim::thread;
use std::sync::Mutex as StdMutex;

fn serialized<R>(f: impl FnOnce() -> R) -> R {
    static GATE: StdMutex<()> = StdMutex::new(());
    let _g = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    lockorder::reset();
    lockorder::enable();
    let out = f();
    lockorder::disable();
    lockorder::reset();
    out
}

#[test]
fn consistent_order_yields_edges_and_no_cycles() {
    let report = serialized(|| {
        let a = Mutex::named("lo.alpha", ());
        let b = Mutex::named("lo.beta", ());
        for _ in 0..3 {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        lockorder::snapshot()
    });
    assert!(report.cycles.is_empty(), "cycles: {:?}", report.cycles);
    let edge = report
        .edges
        .iter()
        .find(|(h, a, _)| h == "lo.alpha" && a == "lo.beta")
        .expect("alpha→beta edge recorded");
    assert_eq!(edge.2, 3, "three acquisitions observed");
}

#[test]
fn opposite_orders_form_a_cycle() {
    let report = serialized(|| {
        let a = Mutex::named("lo.first", ());
        let b = Mutex::named("lo.second", ());
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        lockorder::snapshot()
    });
    assert_eq!(report.cycles.len(), 1, "cycles: {:?}", report.cycles);
    let cycle = &report.cycles[0];
    assert!(cycle.contains(&"lo.first".to_string()) && cycle.contains(&"lo.second".to_string()));
}

#[test]
fn same_name_nesting_is_not_a_self_cycle() {
    let report = serialized(|| {
        // Two instances of one role (e.g. two shards' snapshots): a
        // role-level self-edge would be a guaranteed false positive.
        let a = Mutex::named("lo.role", ());
        let b = Mutex::named("lo.role", ());
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
        lockorder::snapshot()
    });
    assert!(report.cycles.is_empty(), "cycles: {:?}", report.cycles);
    assert!(report.edges.is_empty(), "edges: {:?}", report.edges);
}

#[test]
fn condvar_wait_while_holding_other_lock_is_recorded() {
    let report = serialized(|| {
        let outer = Arc::new(Mutex::named("lo.outer", ()));
        let inner = Arc::new(Mutex::named("lo.inner", false));
        let cv = Arc::new(Condvar::named("lo.cv"));
        let (inner2, cv2) = (Arc::clone(&inner), Arc::clone(&cv));
        let t;
        {
            let _go = outer.lock().unwrap();
            let mut g = inner.lock().unwrap();
            // Spawn the notifier only now, while `inner` is held: it
            // cannot set the flag until the wait below releases the
            // lock, so the wait deterministically happens.
            t = thread::spawn(move || {
                *inner2.lock().unwrap() = true;
                cv2.notify_all();
            });
            while !*g {
                // Waiting on lo.cv while still holding lo.outer — the
                // registry must flag this shape.
                g = cv.wait(g).unwrap();
            }
        }
        t.join().unwrap();
        lockorder::snapshot()
    });
    let w = report
        .waits_while_holding
        .iter()
        .find(|w| w.condvar == "lo.cv")
        .expect("wait-while-holding recorded");
    assert_eq!(w.waiting_lock, "lo.inner");
    assert_eq!(w.held, vec!["lo.outer".to_string()]);
}

#[test]
fn hold_times_are_tracked_per_named_lock() {
    let report = serialized(|| {
        let a = Mutex::named("lo.timed", ());
        {
            let _g = a.lock().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        lockorder::snapshot()
    });
    let (_, micros) = report
        .max_hold_micros
        .iter()
        .find(|(n, _)| n == "lo.timed")
        .expect("hold time recorded");
    assert!(*micros >= 1_000, "held ≥1ms, recorded {micros}µs");
}

#[test]
fn disabled_registry_records_nothing() {
    let report = serialized(|| {
        lockorder::disable();
        let a = Mutex::named("lo.quiet-a", ());
        let b = Mutex::named("lo.quiet-b", ());
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
        lockorder::snapshot()
    });
    assert!(report.edges.is_empty());
}

#[test]
fn anonymous_mutexes_stay_out_of_the_registry() {
    let report = serialized(|| {
        let a = Mutex::new(());
        let b = Mutex::named("lo.named-only", ());
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
        lockorder::snapshot()
    });
    assert!(report.edges.is_empty(), "edges: {:?}", report.edges);
}
