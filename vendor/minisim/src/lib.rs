//! # minisim — a deterministic concurrency model checker
//!
//! `minisim` provides `std::sync`-shaped primitives ([`sync::Mutex`],
//! [`sync::Condvar`], [`sync::mpsc`], [`thread::spawn`]) with two
//! personalities behind one API:
//!
//! * **Production**: on an ordinary thread every operation delegates
//!   directly to `std::sync` (one thread-local lookup plus a branch of
//!   overhead), optionally feeding the [`lockorder`] registry when it is
//!   enabled.
//! * **Model checking**: inside [`check`], threads spawned through the
//!   facade are *managed* — exactly one runs at a time, and every
//!   visible operation (lock, unlock, condvar wait/notify, spawn, join)
//!   is a scheduling decision. [`check`] explores the decision tree
//!   depth-first under a bounded-preemption cap, so it *exhaustively
//!   enumerates* the distinct interleavings of the model up to that
//!   bound and deterministically reproduces any failure from a seed.
//!
//! Detected violations: panics (assertion failures in the model),
//! deadlocks and lost wakeups (no runnable thread while some are
//! blocked), condvar waits without a rechecked predicate (surfaced by
//! injecting budgeted spurious wakeups), and runaway interleavings
//! (step-limit).
//!
//! ```
//! use minisim::{check, CheckOptions};
//! use minisim::sync::{Arc, Mutex};
//!
//! let report = check(&CheckOptions::default(), || {
//!     let n = Arc::new(Mutex::new(0_u32));
//!     let m = Arc::clone(&n);
//!     let t = minisim::thread::spawn(move || {
//!         *m.lock().unwrap() += 1;
//!     });
//!     *n.lock().unwrap() += 1;
//!     t.join().unwrap();
//!     assert_eq!(*n.lock().unwrap(), 2);
//! });
//! assert!(report.violation.is_none());
//! ```
//!
//! The checker is *stateless* in the CDSChecker/loom lineage: it reruns
//! the model once per interleaving, replaying a recorded decision prefix
//! and branching at its last unexplored decision. A counterexample seed
//! (`"p2s1:0.1.0..."`) encodes the budgets and the full decision vector,
//! and [`replay`] re-executes exactly that interleaving with tracing on.

pub mod ctx;
mod exec;
pub mod lockorder;
pub mod sync;
pub mod thread;

pub use ctx::in_sim;
pub use exec::ViolationKind;

use exec::{Choice, ExecBudget, Execution};
use std::sync::Arc as StdArc;

/// Budgets for one [`check`] run.
#[derive(Copy, Clone, Debug)]
pub struct CheckOptions {
    /// How many times an interleaving may switch away from a thread that
    /// could have kept running. Most concurrency bugs need ≤ 2
    /// preemptions (the CHESS observation); raising this grows the tree
    /// combinatorially.
    pub preemption_bound: usize,
    /// How many spurious condvar wakeups may be injected per
    /// interleaving. One is enough to catch any wait whose predicate is
    /// not rechecked in a loop.
    pub spurious_wakeups: usize,
    /// Stop exploring after this many interleavings (the report is then
    /// marked incomplete).
    pub max_interleavings: u64,
    /// Per-interleaving scheduling-step budget; exceeding it is reported
    /// as a violation (livelock backstop).
    pub max_steps: u64,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            preemption_bound: 2,
            spurious_wakeups: 1,
            max_interleavings: 50_000,
            max_steps: 100_000,
        }
    }
}

/// A reproducible counterexample.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Human-readable description (panic message, blocked-thread list…).
    pub message: String,
    /// Seed reproducing this exact interleaving via [`replay`].
    pub seed: String,
    /// The interleaving's visible operations, in order.
    pub trace: Vec<String>,
}

/// The outcome of a [`check`] run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Distinct interleavings executed.
    pub interleavings: u64,
    /// True when the decision tree was exhausted (under the preemption
    /// bound) rather than cut off by `max_interleavings`.
    pub complete: bool,
    /// The preemption bound the tree was explored under.
    pub preemption_bound: usize,
    /// The first violation found, if any (exploration stops at it).
    pub violation: Option<Violation>,
}

/// Model-check `model` by exhaustively exploring its interleavings up to
/// the bounds in `opts`. The closure is run once per interleaving; it
/// must be deterministic apart from scheduling (no wall-clock control
/// flow, no unordered iteration) and must create all of its concurrency
/// through the [`sync`] / [`thread`] facades.
///
/// Returns at the first violation with a seed + trace, or after the tree
/// (or the interleaving budget) is exhausted.
///
/// # Panics
/// Panics if the model leaks a managed thread past its own completion in
/// a way that prevents the execution from terminating (the step budget
/// converts runaway *scheduling* into a reported violation, but a
/// compute-only infinite loop cannot be interrupted).
pub fn check<F>(opts: &CheckOptions, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_panic_hook();
    let budget = ExecBudget {
        preemption_bound: opts.preemption_bound,
        spurious_wakeups: opts.spurious_wakeups,
        max_steps: opts.max_steps,
    };
    let model = StdArc::new(model);
    let mut prefix: Vec<Choice> = Vec::new();
    let mut count: u64 = 0;
    loop {
        let (schedule, violation) = run_one(prefix, budget, false, &model);
        count += 1;
        if let Some((kind, message)) = violation {
            let seed = encode_seed(budget, &schedule);
            // Re-run the same schedule with tracing to produce the
            // counterexample listing.
            let trace = {
                let exec = StdArc::new(Execution::new(schedule.clone(), budget, true));
                drive(&exec, &model);
                exec.take_trace()
            };
            return Report {
                interleavings: count,
                complete: false,
                preemption_bound: opts.preemption_bound,
                violation: Some(Violation {
                    kind,
                    message,
                    seed,
                    trace,
                }),
            };
        }
        match next_prefix(schedule) {
            Some(p) => {
                if count >= opts.max_interleavings {
                    return Report {
                        interleavings: count,
                        complete: false,
                        preemption_bound: opts.preemption_bound,
                        violation: None,
                    };
                }
                prefix = p;
            }
            None => {
                return Report {
                    interleavings: count,
                    complete: true,
                    preemption_bound: opts.preemption_bound,
                    violation: None,
                };
            }
        }
    }
}

/// Re-execute the single interleaving encoded by `seed` (from
/// [`Violation::seed`]) with tracing enabled.
///
/// # Errors
/// Returns `Err` when the seed does not parse.
pub fn replay<F>(seed: &str, model: F) -> Result<Replay, String>
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_panic_hook();
    let (budget, schedule) = decode_seed(seed)?;
    let model = StdArc::new(model);
    let exec = StdArc::new(Execution::new(schedule, budget, true));
    drive(&exec, &model);
    Ok(Replay {
        violation: exec.violation(),
        trace: exec.take_trace(),
    })
}

/// The outcome of a [`replay`].
#[derive(Clone, Debug)]
pub struct Replay {
    /// The violation the interleaving reproduces (kind + message), if it
    /// still fails.
    pub violation: Option<(ViolationKind, String)>,
    /// The interleaving's visible operations, in order.
    pub trace: Vec<String>,
}

/// One execution: replay `prefix`, extend with first-option decisions,
/// return the full decision vector and any violation.
fn run_one<F>(
    prefix: Vec<Choice>,
    budget: ExecBudget,
    record_trace: bool,
    model: &StdArc<F>,
) -> (Vec<Choice>, Option<(ViolationKind, String)>)
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = StdArc::new(Execution::new(prefix, budget, record_trace));
    drive(&exec, model);
    (exec.take_schedule(), exec.violation())
}

/// Spawn the root thread of an execution and wait for every managed
/// thread to finish.
fn drive<F>(exec: &StdArc<Execution>, model: &StdArc<F>)
where
    F: Fn() + Send + Sync + 'static,
{
    let root = exec.register_root();
    let exec2 = StdArc::clone(exec);
    let model2 = StdArc::clone(model);
    let handle = std::thread::Builder::new()
        .name("minisim-root".to_string())
        .spawn(move || {
            thread::run_managed(&exec2, root, move || model2());
        })
        .expect("spawn model root thread");
    exec.wait_done();
    // All managed threads have run their finish bookkeeping; the root's
    // OS thread exits immediately after.
    let _ = handle.join();
}

/// DFS advance: keep the longest prefix whose last decision has an
/// unexplored alternative, and take that alternative next.
fn next_prefix(mut schedule: Vec<Choice>) -> Option<Vec<Choice>> {
    while let Some(last) = schedule.last_mut() {
        if last.chosen + 1 < last.options {
            last.chosen += 1;
            return Some(schedule);
        }
        schedule.pop();
    }
    None
}

fn encode_seed(budget: ExecBudget, schedule: &[Choice]) -> String {
    let decisions: Vec<String> = schedule.iter().map(|c| c.chosen.to_string()).collect();
    format!(
        "p{}s{}:{}",
        budget.preemption_bound,
        budget.spurious_wakeups,
        decisions.join(".")
    )
}

fn decode_seed(seed: &str) -> Result<(ExecBudget, Vec<Choice>), String> {
    let (head, tail) = seed
        .split_once(':')
        .ok_or_else(|| format!("seed `{seed}` has no `:` separator"))?;
    let head = head
        .strip_prefix('p')
        .ok_or_else(|| format!("seed header `{head}` missing `p`"))?;
    let (pb, sp) = head
        .split_once('s')
        .ok_or_else(|| format!("seed header `p{head}` missing `s`"))?;
    let preemption_bound: usize = pb
        .parse()
        .map_err(|_| format!("bad preemption bound `{pb}`"))?;
    let spurious_wakeups: usize = sp
        .parse()
        .map_err(|_| format!("bad spurious budget `{sp}`"))?;
    let mut schedule = Vec::new();
    if !tail.is_empty() {
        for part in tail.split('.') {
            let chosen: usize = part
                .parse()
                .map_err(|_| format!("bad decision `{part}` in seed"))?;
            // Replay validates the option count against the model; the
            // encoded vector only needs the chosen branches.
            schedule.push(Choice {
                chosen,
                options: usize::MAX,
            });
        }
    }
    Ok((
        ExecBudget {
            preemption_bound,
            spurious_wakeups,
            max_steps: CheckOptions::default().max_steps,
        },
        schedule,
    ))
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" stderr noise for panics inside managed threads —
/// the checker *expects* panics there (they are violations or SimAbort
/// teardown) and reports them through [`Report`] instead. Panics on
/// unmanaged threads go to the previously installed hook untouched.
fn install_quiet_panic_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !ctx::in_sim() {
                previous(info);
            }
        }));
    });
}

/// Render a panic payload for violation messages.
pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
