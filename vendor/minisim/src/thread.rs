//! Dual-mode `std::thread` facade. Outside [`crate::check`] this is a
//! thin veneer over `std::thread`. Inside a check, spawned threads are
//! registered with the execution, parked until first scheduled, and
//! their panics are routed into the checker's violation machinery
//! instead of tearing down the test harness.

use crate::exec::{Execution, SimAbort, Tid};
use crate::{ctx, payload_message};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Dual-mode replacement for `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    real: std::thread::JoinHandle<T>,
    sim: Option<(Arc<Execution>, Tid)>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish, returning its result (or the
    /// panic payload it died with). In a managed execution the blocking
    /// itself is a visible scheduling operation.
    ///
    /// # Errors
    /// Returns the thread's panic payload if it panicked, like
    /// `std::thread::JoinHandle::join`.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((exec, target)) = self.sim {
            if let Some((_, me)) = ctx::current() {
                exec.join_begin(me, target);
            }
            // The target has finished at the simulation level (or the
            // execution aborted); the real join returns promptly.
            self.real.join()
        } else {
            self.real.join()
        }
    }

    /// Whether the thread has finished (delegates to std; in a managed
    /// execution prefer `join`).
    pub fn is_finished(&self) -> bool {
        self.real.is_finished()
    }
}

/// Dual-mode replacement for `std::thread::Builder`.
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// A builder with no name set.
    pub fn new() -> Builder {
        Builder { name: None }
    }

    /// Name the thread (visible in sim traces and OS thread names).
    #[must_use]
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawn the thread.
    ///
    /// # Errors
    /// Propagates `std::thread::Builder::spawn` errors (OS resource
    /// exhaustion).
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let name = self.name.unwrap_or_else(|| "unnamed".to_string());
        if let Some((exec, me)) = ctx::current() {
            let tid = exec.register_child(me, &name);
            let exec_child = Arc::clone(&exec);
            let real = std::thread::Builder::new()
                .name(name)
                .spawn(move || run_managed_value(&exec_child, tid, f))?;
            // Offer a switch point: the scheduler may run the child
            // before the parent's next visible op.
            exec.after_spawn(me);
            Ok(JoinHandle {
                real,
                sim: Some((exec, tid)),
            })
        } else {
            let real = std::thread::Builder::new().name(name).spawn(f)?;
            Ok(JoinHandle { real, sim: None })
        }
    }
}

/// Dual-mode replacement for `std::thread::spawn`.
///
/// # Panics
/// Panics if the OS refuses to spawn a thread, like `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// Body of a managed child thread: bind the context, park until first
/// scheduled, run the user closure, and report the outcome to the
/// execution. Used by the driver for the root thread too.
pub(crate) fn run_managed<F>(exec: &Arc<Execution>, tid: Tid, f: F)
where
    F: FnOnce() + Send + 'static,
{
    run_managed_value(exec, tid, f);
}

fn run_managed_value<F, T>(exec: &Arc<Execution>, tid: Tid, f: F) -> T
where
    F: FnOnce() -> T,
{
    ctx::set(Arc::clone(exec), tid);
    let result = catch_unwind(AssertUnwindSafe(|| {
        exec.first_grant(tid);
        f()
    }));
    let panicked = match &result {
        Ok(_) => None,
        Err(payload) => {
            if payload.is::<SimAbort>() {
                // Abort-protocol teardown, not a model failure.
                None
            } else {
                Some(payload_message(payload.as_ref()))
            }
        }
    };
    exec.finish(tid, panicked);
    ctx::clear();
    match result {
        Ok(v) => v,
        // Re-raise so the payload reaches a facade `join` (the quiet
        // panic hook keeps this silent, and resume_unwind skips hooks
        // anyway).
        Err(payload) => resume_unwind(payload),
    }
}
