//! Thread-local binding between an OS thread and the [`Execution`] it is
//! acting in. This is the dual-mode switch: facade primitives consult
//! [`current`] and either route through the deterministic scheduler (the
//! thread is sim-managed) or delegate straight to `std::sync` (it is
//! not). Production code pays one TLS lookup and a branch.

use crate::exec::{Execution, Tid};
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, Tid)>> = const { RefCell::new(None) };
}

/// The execution this thread acts in, if any.
pub(crate) fn current() -> Option<(Arc<Execution>, Tid)> {
    CTX.with(|c| c.borrow().clone())
}

/// True when the calling thread is managed by a model-check execution.
pub fn in_sim() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

pub(crate) fn set(exec: Arc<Execution>, tid: Tid) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

pub(crate) fn clear() {
    CTX.with(|c| *c.borrow_mut() = None);
}
