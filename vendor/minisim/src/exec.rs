//! The deterministic execution engine behind [`crate::check`].
//!
//! One [`Execution`] is one interleaving: real OS threads run the model,
//! but at every *visible operation* (lock, unlock, condvar wait/notify,
//! spawn, join, finish) the acting thread stops and a scheduling decision
//! picks which thread performs the next visible op. Exactly one managed
//! thread is unparked at any instant, so the whole execution is a
//! deterministic function of the decision vector — which is what makes
//! counterexamples replayable from a seed.
//!
//! Decisions are recorded as [`Choice`]s; the driver in `lib.rs` explores
//! the decision tree depth-first with a preemption bound (alternatives
//! that switch away from a still-runnable thread are only enumerated
//! while the path's preemption budget lasts — the CHESS insight that most
//! concurrency bugs need very few preemptions).

use std::collections::BTreeMap;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex};

/// Index of a managed thread within one execution.
pub(crate) type Tid = usize;

/// The panic payload used to tear threads out of an aborted execution.
/// Not a user-visible panic: the thread wrapper recognizes and swallows
/// it.
pub(crate) struct SimAbort;

/// One recorded scheduling decision: which of `options` alternatives was
/// taken. Only branching points (`options >= 2`) are recorded.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct Choice {
    pub chosen: usize,
    pub options: usize,
}

/// Why an execution failed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A managed thread panicked (assertion failure in the model or in
    /// the code under check).
    Panic,
    /// No thread was runnable but some were still blocked — a deadlock
    /// or a lost wakeup.
    Deadlock,
    /// The execution exceeded the per-interleaving step budget.
    StepLimit,
    /// A replayed schedule diverged from the model (the model is
    /// nondeterministic beyond its scheduling — e.g. real-time control
    /// flow or unordered iteration).
    ScheduleDivergence,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ViolationKind::Panic => "panic",
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::StepLimit => "step-limit",
            ViolationKind::ScheduleDivergence => "schedule-divergence",
        })
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedLock(u64),
    BlockedCond(u64),
    BlockedJoin(Tid),
    Finished,
}

struct ThreadRec {
    name: String,
    status: Status,
    joiners: Vec<Tid>,
}

#[derive(Default)]
struct LockState {
    owner: Option<Tid>,
    waiters: Vec<Tid>,
}

pub(crate) struct ExecState {
    threads: Vec<ThreadRec>,
    current: Option<Tid>,
    locks: BTreeMap<u64, LockState>,
    /// Condvar id → waiting (thread, the lock it must re-acquire).
    conds: BTreeMap<u64, Vec<(Tid, u64)>>,
    /// The decision vector: a replayed prefix plus extensions made by
    /// this execution.
    schedule: Vec<Choice>,
    /// Next decision index; below `schedule.len()` we are replaying.
    pos: usize,
    preemptions: usize,
    spurious_left: usize,
    steps: u64,
    live: usize,
    aborted: bool,
    done: bool,
    violation: Option<(ViolationKind, String)>,
    trace: Option<Vec<String>>,
}

/// Budgets for one execution (shared by every execution of a check run).
#[derive(Copy, Clone, Debug)]
pub(crate) struct ExecBudget {
    pub preemption_bound: usize,
    pub spurious_wakeups: usize,
    pub max_steps: u64,
}

/// One interleaving in flight. Shared (via `Arc`) between the driver and
/// every managed thread of the execution.
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    /// Parked managed threads wait here for `current == me || aborted`.
    cv: StdCondvar,
    /// The driver waits here for `live == 0`.
    driver: StdCondvar,
    budget: ExecBudget,
}

fn lock_state(m: &StdMutex<ExecState>) -> std::sync::MutexGuard<'_, ExecState> {
    // The engine never panics while holding its own state lock, but a
    // poisoned guard here must not cascade during teardown.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Execution {
    /// A fresh execution that will replay `prefix` and then extend it
    /// with first-option decisions.
    pub fn new(prefix: Vec<Choice>, budget: ExecBudget, record_trace: bool) -> Execution {
        Execution {
            state: StdMutex::new(ExecState {
                threads: Vec::new(),
                current: None,
                locks: BTreeMap::new(),
                conds: BTreeMap::new(),
                schedule: prefix,
                pos: 0,
                preemptions: 0,
                spurious_left: budget.spurious_wakeups,
                steps: 0,
                live: 0,
                aborted: false,
                done: false,
                violation: None,
                trace: record_trace.then(Vec::new),
            }),
            cv: StdCondvar::new(),
            driver: StdCondvar::new(),
            budget,
        }
    }

    /// Register the root thread (tid 0) and make it current so its first
    /// grant passes immediately.
    pub fn register_root(&self) -> Tid {
        let mut st = lock_state(&self.state);
        assert!(st.threads.is_empty(), "root registered twice");
        st.threads.push(ThreadRec {
            name: "main".to_string(),
            status: Status::Runnable,
            joiners: Vec::new(),
        });
        st.live = 1;
        st.current = Some(0);
        0
    }

    /// Register a child thread spawned by the (currently running)
    /// `parent`. The child starts runnable but not current.
    pub fn register_child(&self, parent: Tid, name: &str) -> Tid {
        let mut st = lock_state(&self.state);
        let tid = st.threads.len();
        st.threads.push(ThreadRec {
            name: name.to_string(),
            status: Status::Runnable,
            joiners: Vec::new(),
        });
        st.live += 1;
        self.trace(&mut st, parent, &format!("spawn t{tid}({name})"));
        tid
    }

    /// Park until this thread is scheduled for the first time.
    pub fn first_grant(&self, me: Tid) {
        let st = lock_state(&self.state);
        self.park(st, me);
    }

    /// The visible-op epilogue after `register_child`: the parent offers
    /// the scheduler a switch point that may run the child immediately.
    pub fn after_spawn(&self, me: Tid) {
        let st = lock_state(&self.state);
        self.schedule_next(st, me, true);
    }

    // ---- mutex ---------------------------------------------------------

    /// Acquire facade lock `id`. Returns once this thread owns it (at the
    /// simulation level; the caller then takes the std lock, which is
    /// uncontended by construction).
    pub fn lock_acquire(&self, me: Tid, id: u64, name: &str) {
        let mut st = lock_state(&self.state);
        if st.aborted {
            Self::raise_abort(st);
            return;
        }
        self.trace(&mut st, me, &format!("lock {name}"));
        let lock = st.locks.entry(id).or_default();
        if lock.owner.is_none() {
            lock.owner = Some(me);
            self.schedule_next(st, me, true);
        } else {
            lock.waiters.push(me);
            st.threads[me].status = Status::BlockedLock(id);
            self.schedule_next(st, me, true);
        }
    }

    /// Release facade lock `id`; if threads are queued on it, a decision
    /// picks which one receives ownership.
    pub fn lock_release(&self, me: Tid, id: u64, name: &str) {
        let mut st = lock_state(&self.state);
        if st.aborted {
            Self::raise_abort(st);
            return;
        }
        self.trace(&mut st, me, &format!("unlock {name}"));
        self.release_lock_inner(&mut st, id);
        self.schedule_next(st, me, true);
    }

    /// Owner-clearing + handoff, shared by unlock and condvar wait.
    fn release_lock_inner(&self, st: &mut ExecState, id: u64) {
        let waiting = st.locks.get(&id).map_or(0, |l| l.waiters.len());
        if waiting == 0 {
            if let Some(l) = st.locks.get_mut(&id) {
                l.owner = None;
            }
            return;
        }
        let pick = self.decide(st, waiting);
        let lock = st.locks.get_mut(&id).expect("lock exists");
        let next = lock.waiters.remove(pick);
        lock.owner = Some(next);
        st.threads[next].status = Status::Runnable;
    }

    /// Queue `tid` for lock `id`, granting immediately if it is free.
    fn enqueue_lock_waiter(st: &mut ExecState, tid: Tid, id: u64) {
        let lock = st.locks.entry(id).or_default();
        if lock.owner.is_none() {
            lock.owner = Some(tid);
            st.threads[tid].status = Status::Runnable;
        } else {
            lock.waiters.push(tid);
            st.threads[tid].status = Status::BlockedLock(id);
        }
    }

    // ---- condvar -------------------------------------------------------

    /// Atomically release `lock_id` and wait on condvar `cv_id`; returns
    /// once re-granted the lock. A decision may deliver a spurious wakeup
    /// (while the execution's budget lasts), modeling the std contract
    /// that `Condvar::wait` can return without a notification.
    pub fn cond_wait(&self, me: Tid, cv_id: u64, cv_name: &str, lock_id: u64) {
        let mut st = lock_state(&self.state);
        if st.aborted {
            Self::raise_abort(st);
            return;
        }
        self.trace(&mut st, me, &format!("wait {cv_name}"));
        self.release_lock_inner(&mut st, lock_id);
        let spurious = st.spurious_left > 0 && self.decide(&mut st, 2) == 1;
        if spurious {
            st.spurious_left -= 1;
            self.trace(&mut st, me, &format!("spurious-wake {cv_name}"));
            Self::enqueue_lock_waiter(&mut st, me, lock_id);
        } else {
            st.conds.entry(cv_id).or_default().push((me, lock_id));
            st.threads[me].status = Status::BlockedCond(cv_id);
        }
        self.schedule_next(st, me, true);
    }

    /// Wake one waiter (a decision picks which); it moves to the lock's
    /// wait queue, exactly like std's contract.
    pub fn cond_notify_one(&self, me: Tid, cv_id: u64, cv_name: &str) {
        let mut st = lock_state(&self.state);
        if st.aborted {
            Self::raise_abort(st);
            return;
        }
        self.trace(&mut st, me, &format!("notify_one {cv_name}"));
        let waiting = st.conds.get(&cv_id).map_or(0, Vec::len);
        if waiting > 0 {
            let pick = self.decide(&mut st, waiting);
            let (tid, lock_id) = st
                .conds
                .get_mut(&cv_id)
                .expect("condvar exists")
                .remove(pick);
            Self::enqueue_lock_waiter(&mut st, tid, lock_id);
        }
        self.schedule_next(st, me, true);
    }

    /// Wake every waiter; all move to their locks' wait queues.
    pub fn cond_notify_all(&self, me: Tid, cv_id: u64, cv_name: &str) {
        let mut st = lock_state(&self.state);
        if st.aborted {
            Self::raise_abort(st);
            return;
        }
        self.trace(&mut st, me, &format!("notify_all {cv_name}"));
        let waiters = st
            .conds
            .get_mut(&cv_id)
            .map(std::mem::take)
            .unwrap_or_default();
        for (tid, lock_id) in waiters {
            Self::enqueue_lock_waiter(&mut st, tid, lock_id);
        }
        self.schedule_next(st, me, true);
    }

    // ---- join / finish -------------------------------------------------

    /// Block until `target` finishes (the real `join` that follows
    /// returns promptly).
    pub fn join_begin(&self, me: Tid, target: Tid) {
        let mut st = lock_state(&self.state);
        if st.aborted {
            Self::raise_abort(st);
            return;
        }
        let target_name = st.threads[target].name.clone();
        self.trace(&mut st, me, &format!("join t{target}({target_name})"));
        if st.threads[target].status != Status::Finished {
            st.threads[target].joiners.push(me);
            st.threads[me].status = Status::BlockedJoin(target);
        }
        self.schedule_next(st, me, true);
    }

    /// Thread `me` is done (its wrapper is about to return). `panicked`
    /// carries the rendered payload of a non-[`SimAbort`] panic, which is
    /// always a violation: the code under check asserted or crashed.
    pub fn finish(&self, me: Tid, panicked: Option<String>) {
        let mut st = lock_state(&self.state);
        st.threads[me].status = Status::Finished;
        st.live -= 1;
        let joiners = std::mem::take(&mut st.threads[me].joiners);
        for j in joiners {
            st.threads[j].status = Status::Runnable;
        }
        self.trace(&mut st, me, "finish");
        if !st.aborted {
            if let Some(msg) = panicked {
                let name = st.threads[me].name.clone();
                self.fail(
                    &mut st,
                    ViolationKind::Panic,
                    format!("t{me}({name}) panicked: {msg}"),
                );
            }
        }
        if st.live == 0 {
            st.done = true;
            self.driver.notify_all();
            self.cv.notify_all();
            return;
        }
        if st.aborted {
            return;
        }
        // `raise_abort = false`: this runs outside the wrapper's
        // catch_unwind, so a violation detected here (e.g. the last
        // finisher leaving others blocked) must report and return, not
        // panic.
        self.schedule_next(st, me, false);
    }

    // ---- scheduling core -----------------------------------------------

    /// Record (or replay) one decision among `options` alternatives.
    fn decide(&self, st: &mut ExecState, options: usize) -> usize {
        if options <= 1 {
            return 0;
        }
        if st.pos < st.schedule.len() {
            let c = st.schedule[st.pos];
            st.pos += 1;
            // Seeds decoded from a string carry `usize::MAX` as a
            // "options unknown" marker — only the chosen branch is
            // validated for those.
            if (c.options != usize::MAX && c.options != options) || c.chosen >= options {
                self.fail(
                    st,
                    ViolationKind::ScheduleDivergence,
                    format!(
                        "decision {} expected {} options, model offered {options}",
                        st.pos - 1,
                        c.options
                    ),
                );
                return 0;
            }
            c.chosen
        } else {
            st.schedule.push(Choice { chosen: 0, options });
            st.pos += 1;
            0
        }
    }

    /// Pick the next thread to run after a visible op by `me`, then park
    /// `me` until it is scheduled again (or the execution aborts).
    ///
    /// With `raise_abort` set, an aborted execution tears `me` out of the
    /// model via [`SimAbort`] instead of returning. Parked threads unwind
    /// from [`Self::park`], but the thread that was *running* when the
    /// violation fired (usually the one that detected it) never parks —
    /// returning it into the model would let a predicate loop like
    /// `while !ready { cv.wait(..) }` spin forever against facade calls
    /// that have become no-ops.
    fn schedule_next(
        &self,
        mut st: std::sync::MutexGuard<'_, ExecState>,
        me: Tid,
        raise_abort: bool,
    ) {
        if st.aborted {
            if raise_abort {
                Self::raise_abort(st);
            }
            return;
        }
        st.steps += 1;
        if st.steps > self.budget.max_steps {
            self.fail(
                &mut st,
                ViolationKind::StepLimit,
                format!(
                    "exceeded {} steps in one interleaving",
                    self.budget.max_steps
                ),
            );
            if raise_abort {
                Self::raise_abort(st);
            }
            return;
        }
        let runnable: Vec<Tid> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        let me_runnable = st.threads[me].status == Status::Runnable;
        let chosen = if me_runnable {
            if st.preemptions >= self.budget.preemption_bound {
                me
            } else {
                // Option 0 continues the current thread; switching away
                // from a runnable thread costs one preemption.
                let mut options: Vec<Tid> = vec![me];
                options.extend(runnable.iter().copied().filter(|&t| t != me));
                let pick = options[self.decide(&mut st, options.len())];
                if st.aborted {
                    if raise_abort {
                        Self::raise_abort(st);
                    }
                    return;
                }
                if pick != me {
                    st.preemptions += 1;
                }
                pick
            }
        } else if runnable.is_empty() {
            // Nothing can run. Either everything finished (handled in
            // `finish`) or the remaining threads are blocked forever.
            let blocked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.status, Status::Finished))
                .map(|(i, t)| format!("t{i}({}) {}", t.name, describe_block(t.status)))
                .collect();
            self.fail(
                &mut st,
                ViolationKind::Deadlock,
                format!("no runnable thread; blocked: [{}]", blocked.join(", ")),
            );
            if raise_abort {
                Self::raise_abort(st);
            }
            return;
        } else {
            let pick = self.decide(&mut st, runnable.len());
            if st.aborted {
                if raise_abort {
                    Self::raise_abort(st);
                }
                return;
            }
            runnable[pick]
        };
        st.current = Some(chosen);
        self.cv.notify_all();
        if chosen != me && st.threads[me].status != Status::Finished {
            self.park(st, me);
        }
    }

    /// Tear the calling thread out of an aborted execution by unwinding
    /// via [`SimAbort`] (swallowed by the thread wrapper). No-op while
    /// the thread is already panicking — a second panic from a guard's
    /// `Drop` during unwind would abort the process.
    fn raise_abort(st: std::sync::MutexGuard<'_, ExecState>) {
        drop(st);
        if !std::thread::panicking() {
            std::panic::panic_any(SimAbort);
        }
    }

    /// Wait until scheduled ( `current == me` ) or aborted.
    fn park(&self, mut st: std::sync::MutexGuard<'_, ExecState>, me: Tid) {
        loop {
            if st.aborted {
                drop(st);
                // During an abort every parked thread unwinds out of the
                // model via SimAbort — unless it is already unwinding, in
                // which case panicking again would abort the process.
                if !std::thread::panicking() {
                    std::panic::panic_any(SimAbort);
                }
                return;
            }
            if st.current == Some(me) {
                return;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Record a violation and abort the execution: wake every parked
    /// thread (they unwind via SimAbort) and the driver.
    fn fail(&self, st: &mut ExecState, kind: ViolationKind, message: String) {
        if st.violation.is_none() {
            st.violation = Some((kind, message));
        }
        st.aborted = true;
        st.current = None;
        self.cv.notify_all();
        self.driver.notify_all();
    }

    fn trace(&self, st: &mut ExecState, me: Tid, what: &str) {
        if st.trace.is_some() {
            let name = st
                .threads
                .get(me)
                .map_or("?", |t| t.name.as_str())
                .to_string();
            if let Some(t) = st.trace.as_mut() {
                t.push(format!("t{me}({name}) {what}"));
            }
        }
    }

    // ---- driver side ---------------------------------------------------

    /// Block until every managed thread has finished (normally or via
    /// abort teardown).
    pub fn wait_done(&self) {
        let mut st = lock_state(&self.state);
        while st.live > 0 {
            st = self
                .driver
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.done = true;
    }

    /// The executed decision vector (replayed prefix + extensions).
    pub fn take_schedule(&self) -> Vec<Choice> {
        std::mem::take(&mut lock_state(&self.state).schedule)
    }

    /// The violation, if the execution failed.
    pub fn violation(&self) -> Option<(ViolationKind, String)> {
        lock_state(&self.state).violation.clone()
    }

    /// The recorded trace (empty unless tracing was requested).
    pub fn take_trace(&self) -> Vec<String> {
        lock_state(&self.state).trace.take().unwrap_or_default()
    }
}

fn describe_block(s: Status) -> String {
    match s {
        Status::Runnable => "runnable".to_string(),
        Status::BlockedLock(id) => format!("waiting for lock #{id}"),
        Status::BlockedCond(id) => format!("waiting on condvar #{id}"),
        Status::BlockedJoin(t) => format!("joining t{t}"),
        Status::Finished => "finished".to_string(),
    }
}
