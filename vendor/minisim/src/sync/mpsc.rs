//! Dual-mode `std::sync::mpsc` replacement, built on the facade
//! [`Mutex`](super::Mutex) and [`Condvar`](super::Condvar) so channel
//! operations are visible to the model checker. Error types are reused
//! from `std::sync::mpsc`, so call sites match on the familiar names.

use super::{Arc, Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::PoisonError;

pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

struct ChanState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Chan<T> {
    state: Mutex<ChanState<T>>,
    ready: Condvar,
}

impl<T> Chan<T> {
    fn lock(&self) -> super::MutexGuard<'_, ChanState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// An unbounded channel, like `std::sync::mpsc::channel`.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(ChanState {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// The sending half; clonable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Queue a value for the receiver.
    ///
    /// # Errors
    /// Returns the value back if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.lock();
        if !st.receiver_alive {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.chan.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.chan.lock().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake the receiver so a blocked recv observes disconnection.
            self.chan.ready.notify_all();
        }
    }
}

/// The receiving half.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Block until a value arrives or every sender is gone.
    ///
    /// # Errors
    /// Returns `RecvError` when the channel is empty and all senders
    /// have been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .chan
                .ready
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    /// `Empty` when no value is queued, `Disconnected` when additionally
    /// every sender is gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.lock();
        if let Some(v) = st.queue.pop_front() {
            return Ok(v);
        }
        if st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Blocking iterator over received values, ending at disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.lock().receiver_alive = false;
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}
