//! Runtime lock-order registry: the fully static second tier of the
//! race analyzer. While [`enable`]d, every *named* facade mutex
//! acquisition on ordinary (non-managed) threads records a directed
//! edge `held → acquired` into a process-wide graph, along with maximum
//! hold times and condvar waits performed while other named locks were
//! held. [`snapshot`] then reports the graph, its cycles (each cycle is
//! a potential deadlock: two threads can take the chain's locks in
//! opposite orders), and the hold-time table.
//!
//! Only the *std* path feeds the registry: model-checked executions
//! deliberately run buggy mutants whose orders must not pollute the
//! discipline evidence. Anonymous mutexes are also excluded — a lock
//! order is a property of lock *roles*, which is what names denote.
//!
//! The registry is process-global; callers that need isolation (tests)
//! should serialize [`reset`] → workload → [`snapshot`] sections.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

#[derive(Default)]
struct Registry {
    /// `(held, acquired) → times observed`.
    edges: BTreeMap<(String, String), u64>,
    /// Longest observed hold, per lock name, in microseconds.
    max_hold_micros: BTreeMap<String, u64>,
    /// Condvar waits entered while *other* named locks were held:
    /// `(condvar, lock released by the wait) → locks still held`.
    waits_while_holding: BTreeMap<(String, String), Vec<String>>,
}

fn registry() -> &'static StdMutex<Registry> {
    static REGISTRY: OnceLock<StdMutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| StdMutex::new(Registry::default()))
}

thread_local! {
    /// Named locks currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Start recording lock events.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stop recording lock events (already-recorded data is kept).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// True when the registry is recording.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Clear all recorded data (does not change the enabled flag).
pub fn reset() {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    *reg = Registry::default();
}

pub(crate) fn on_acquire(name: &'static str) {
    if !is_enabled() {
        return;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        {
            let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
            for &h in held.iter() {
                // Same-name nesting is two instances of one role; a
                // role-level self-edge would be a guaranteed false
                // cycle, so it is skipped.
                if h != name {
                    *reg.edges
                        .entry((h.to_string(), name.to_string()))
                        .or_insert(0) += 1;
                }
            }
        }
        held.push(name);
    });
}

pub(crate) fn on_release(name: &'static str, held_since: Option<Instant>) {
    if !is_enabled() {
        HELD.with(|held| {
            // Keep the stack consistent even across enable/disable
            // boundaries.
            remove_last(&mut held.borrow_mut(), name);
        });
        return;
    }
    HELD.with(|held| remove_last(&mut held.borrow_mut(), name));
    if let Some(since) = held_since {
        let micros = u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        let entry = reg.max_hold_micros.entry(name.to_string()).or_insert(0);
        *entry = (*entry).max(micros);
    }
}

pub(crate) fn on_condvar_wait(lock_name: &'static str, cv_name: Option<&'static str>) {
    if is_enabled() {
        HELD.with(|held| {
            let held = held.borrow();
            let others: Vec<String> = held
                .iter()
                .filter(|&&h| h != lock_name)
                .map(|h| (*h).to_string())
                .collect();
            if !others.is_empty() {
                let cv = cv_name.unwrap_or("<anonymous condvar>").to_string();
                let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
                reg.waits_while_holding
                    .entry((cv, lock_name.to_string()))
                    .or_insert_with(|| others.clone());
            }
        });
    }
    // The wait releases the lock; it leaves the held set either way.
    HELD.with(|held| remove_last(&mut held.borrow_mut(), lock_name));
}

pub(crate) fn on_reacquire_after_wait(lock_name: &'static str) {
    HELD.with(|held| held.borrow_mut().push(lock_name));
}

fn remove_last(held: &mut Vec<&'static str>, name: &str) {
    if let Some(pos) = held.iter().rposition(|&h| h == name) {
        held.remove(pos);
    }
}

/// One recorded condvar-wait-while-holding event.
#[derive(Clone, Debug)]
pub struct WaitWhileHolding {
    /// The condvar waited on.
    pub condvar: String,
    /// The lock the wait released.
    pub waiting_lock: String,
    /// Named locks still held across the wait.
    pub held: Vec<String>,
}

/// A point-in-time view of the registry.
#[derive(Clone, Debug, Default)]
pub struct LockOrderReport {
    /// Observed `held → acquired` edges with occurrence counts.
    pub edges: Vec<(String, String, u64)>,
    /// Cycles in the order graph (each a potential deadlock). The chain
    /// lists the lock names in order; the last implicitly precedes the
    /// first.
    pub cycles: Vec<Vec<String>>,
    /// Condvar waits entered while other named locks were held.
    pub waits_while_holding: Vec<WaitWhileHolding>,
    /// Longest observed hold per lock, in microseconds.
    pub max_hold_micros: Vec<(String, u64)>,
}

/// Snapshot the registry and analyze the graph.
pub fn snapshot() -> LockOrderReport {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let edges: Vec<(String, String, u64)> = reg
        .edges
        .iter()
        .map(|((a, b), n)| (a.clone(), b.clone(), *n))
        .collect();
    let cycles = find_cycles(&reg.edges);
    let waits_while_holding = reg
        .waits_while_holding
        .iter()
        .map(|((cv, lock), held)| WaitWhileHolding {
            condvar: cv.clone(),
            waiting_lock: lock.clone(),
            held: held.clone(),
        })
        .collect();
    let max_hold_micros = reg
        .max_hold_micros
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    LockOrderReport {
        edges,
        cycles,
        waits_while_holding,
        max_hold_micros,
    }
}

/// Find elementary cycles in the name graph by rooted DFS: for each
/// node, search for a path back to it and report the first found. Good
/// enough for lock graphs (a handful of roles); deduplicated by cycle
/// rotation.
fn find_cycles(edges: &BTreeMap<(String, String), u64>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_keys: Vec<Vec<String>> = Vec::new();
    let roots: Vec<&str> = adj.keys().copied().collect();
    for root in roots {
        let mut path: Vec<&str> = vec![root];
        if let Some(cycle) = dfs_back_to_root(root, root, &adj, &mut path) {
            let key = canonical_rotation(&cycle);
            if !seen_keys.contains(&key) {
                seen_keys.push(key);
                cycles.push(cycle);
            }
        }
    }
    cycles
}

fn dfs_back_to_root<'a>(
    root: &'a str,
    at: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
) -> Option<Vec<String>> {
    for &next in adj.get(at).map_or(&[][..], Vec::as_slice) {
        if next == root {
            return Some(path.iter().map(|s| (*s).to_string()).collect());
        }
        if path.contains(&next) {
            continue;
        }
        path.push(next);
        if let Some(c) = dfs_back_to_root(root, next, adj, path) {
            return Some(c);
        }
        path.pop();
    }
    None
}

/// Rotate a cycle so its lexicographically smallest element leads —
/// rotation-invariant identity for dedup.
fn canonical_rotation(cycle: &[String]) -> Vec<String> {
    let min_idx = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.as_str())
        .map_or(0, |(i, _)| i);
    cycle[min_idx..]
        .iter()
        .chain(cycle[..min_idx].iter())
        .cloned()
        .collect()
}
