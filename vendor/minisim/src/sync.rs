//! Dual-mode `std::sync` facade: [`Mutex`] and [`Condvar`] route through
//! the deterministic scheduler when the calling thread is managed by
//! [`crate::check`], and straight through `std::sync` otherwise. The
//! std-path additionally feeds the [`crate::lockorder`] registry when it
//! is enabled, so ordinary test runs double as lock-discipline evidence.
//!
//! Poisoning semantics are inherited from the underlying `std`
//! primitives in both modes: a facade `lock()` returns the same
//! `LockResult` shape as `std::sync::Mutex::lock`.

use crate::exec::{Execution, Tid};
use crate::{ctx, lockorder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LockResult, PoisonError};
use std::time::Instant;

pub mod mpsc;

pub use std::sync::Arc;

/// Process-wide id source for facade mutexes and condvars.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Dual-mode replacement for `std::sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    id: u64,
    /// Stable name for traces and the lock-order registry. Unnamed
    /// mutexes stay out of the registry (their order is per-instance,
    /// not a discipline).
    name: Option<&'static str>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// An anonymous mutex (absent from the lock-order registry).
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            id: fresh_id(),
            name: None,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// A named mutex: the name keys the lock-order registry and appears
    /// in model-checker traces. Use one name per lock *role* (e.g.
    /// `"pool.queue"`), shared by all instances of that role.
    pub fn named(name: &'static str, value: T) -> Mutex<T> {
        Mutex {
            id: fresh_id(),
            name: Some(name),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    ///
    /// # Errors
    /// Returns a `PoisonError` carrying the value if the mutex was
    /// poisoned, like `std::sync::Mutex::into_inner`.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn label(&self) -> String {
        self.name
            .map_or_else(|| format!("lock#{}", self.id), str::to_string)
    }

    /// Acquire the mutex, blocking the calling thread (or, in a managed
    /// execution, yielding a scheduling decision).
    ///
    /// # Errors
    /// Returns a `PoisonError` wrapping the guard if another thread
    /// panicked while holding the lock, like `std::sync::Mutex::lock`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some((exec, me)) = ctx::current() {
            exec.lock_acquire(me, self.id, &self.label());
            // Simulation-level ownership is exclusive, so the std lock
            // is uncontended here (it only blocks briefly during abort
            // teardown while another thread unwinds its guard away).
            let (std_guard, poisoned) = match self.inner.lock() {
                Ok(g) => (g, false),
                Err(p) => (p.into_inner(), true),
            };
            let guard = MutexGuard {
                lock: self,
                std: Some(std_guard),
                sim: Some((exec, me)),
                held_since: None,
                suppress: false,
            };
            if poisoned {
                Err(PoisonError::new(guard))
            } else {
                Ok(guard)
            }
        } else {
            let (std_guard, poisoned) = match self.inner.lock() {
                Ok(g) => (g, false),
                Err(p) => (p.into_inner(), true),
            };
            if let Some(name) = self.name {
                lockorder::on_acquire(name);
            }
            let guard = MutexGuard {
                lock: self,
                std: Some(std_guard),
                sim: None,
                held_since: self.name.map(|_| Instant::now()),
                suppress: false,
            };
            if poisoned {
                Err(PoisonError::new(guard))
            } else {
                Ok(guard)
            }
        }
    }

    /// Mutable access without locking (the exclusive borrow proves no
    /// other thread holds the mutex).
    ///
    /// # Errors
    /// Returns a `PoisonError` if the mutex was poisoned, like
    /// `std::sync::Mutex::get_mut`.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex")
            .field("name", &self.label())
            .finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`]. Releases the lock (and performs
/// the simulation-level handoff / registry bookkeeping) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    std: Option<std::sync::MutexGuard<'a, T>>,
    sim: Option<(Arc<Execution>, Tid)>,
    held_since: Option<Instant>,
    /// Set by [`Condvar::wait`], which takes over the release itself.
    suppress: bool,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std
            .as_ref()
            .expect("guard accessed after wait handoff")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std
            .as_mut()
            .expect("guard accessed after wait handoff")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.suppress {
            return;
        }
        // Release the std lock before the simulation handoff so the next
        // sim owner finds it free.
        self.std = None;
        if let Some((exec, me)) = self.sim.take() {
            exec.lock_release(me, self.lock.id, &self.lock.label());
        } else if let Some(name) = self.lock.name {
            lockorder::on_release(name, self.held_since);
        }
    }
}

/// Dual-mode replacement for `std::sync::Condvar`.
pub struct Condvar {
    id: u64,
    name: Option<&'static str>,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// An anonymous condvar.
    pub fn new() -> Condvar {
        Condvar {
            id: fresh_id(),
            name: None,
            inner: std::sync::Condvar::new(),
        }
    }

    /// A named condvar (the name appears in model-checker traces and
    /// lock-order diagnostics).
    pub fn named(name: &'static str) -> Condvar {
        Condvar {
            id: fresh_id(),
            name: Some(name),
            inner: std::sync::Condvar::new(),
        }
    }

    fn label(&self) -> String {
        self.name
            .map_or_else(|| format!("condvar#{}", self.id), str::to_string)
    }

    /// Release the guard's mutex and wait for a notification (or a
    /// spurious wakeup — the scheduler injects budgeted ones in managed
    /// executions precisely to flush out unlooped waits).
    ///
    /// # Errors
    /// Returns a `PoisonError` wrapping the reacquired guard if the
    /// mutex was poisoned, like `std::sync::Condvar::wait`.
    ///
    /// # Panics
    /// Panics if the guard has already been handed off to another wait
    /// (impossible through the public API).
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        if let Some((exec, me)) = guard.sim.clone() {
            // Drop the std guard, neuter the facade guard, and let the
            // scheduler perform release + block + re-grant atomically.
            guard.std = None;
            guard.suppress = true;
            drop(guard);
            exec.cond_wait(me, self.id, &self.label(), lock.id);
            let (std_guard, poisoned) = match lock.inner.lock() {
                Ok(g) => (g, false),
                Err(p) => (p.into_inner(), true),
            };
            let guard = MutexGuard {
                lock,
                std: Some(std_guard),
                sim: Some((exec, me)),
                held_since: None,
                suppress: false,
            };
            if poisoned {
                Err(PoisonError::new(guard))
            } else {
                Ok(guard)
            }
        } else {
            if let Some(name) = lock.name {
                lockorder::on_condvar_wait(name, self.name);
            }
            let std_guard = guard.std.take().expect("guard accessed after wait handoff");
            guard.suppress = true;
            drop(guard);
            let (std_guard, poisoned) = match self.inner.wait(std_guard) {
                Ok(g) => (g, false),
                Err(p) => (p.into_inner(), true),
            };
            if let Some(name) = lock.name {
                lockorder::on_reacquire_after_wait(name);
            }
            let guard = MutexGuard {
                lock,
                std: Some(std_guard),
                sim: None,
                held_since: lock.name.map(|_| Instant::now()),
                suppress: false,
            };
            if poisoned {
                Err(PoisonError::new(guard))
            } else {
                Ok(guard)
            }
        }
    }

    /// Wait until `condition` holds, re-checking it around every wakeup
    /// (the loop `std` documents as mandatory).
    ///
    /// # Errors
    /// Returns a `PoisonError` wrapping the guard if the mutex was
    /// poisoned.
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> LockResult<MutexGuard<'a, T>>
    where
        F: FnMut(&mut T) -> bool,
    {
        let mut poisoned = false;
        while condition(&mut guard) {
            guard = match self.wait(guard) {
                Ok(g) => g,
                Err(p) => {
                    poisoned = true;
                    p.into_inner()
                }
            };
        }
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    /// Wake one waiter (in a managed execution, *which* one is a
    /// scheduling decision).
    pub fn notify_one(&self) {
        if let Some((exec, me)) = ctx::current() {
            exec.cond_notify_one(me, self.id, &self.label());
        } else {
            self.inner.notify_one();
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        if let Some((exec, me)) = ctx::current() {
            exec.cond_notify_all(me, self.id, &self.label());
        } else {
            self.inner.notify_all();
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar")
            .field("name", &self.label())
            .finish()
    }
}
