//! Mutation self-tests: corrupt a known-good compiled program in specific
//! ways and prove the analyzer flags each corruption. If a mutation class
//! here stops being detected, the lint tier has silently lost teeth.

use dcode_analyze::{analyze_program, encode_xors_per_data_element, program_xor_cost, ClaimCheck};
use dcode_codec::XorProgram;
use dcode_core::dcode::dcode;
use dcode_core::grid::Grid;
use dcode_core::layout::CodeLayout;
use dcode_verify::{DiagKind, Diagnostic};
use std::collections::BTreeSet;

/// The known-good base: D-Code p=7's compiled encode (14 ops, 1 level).
fn base() -> (CodeLayout, XorProgram) {
    let layout = dcode(7).unwrap();
    let program = XorProgram::compile_encode(&layout);
    (layout, program)
}

fn outputs(program: &XorProgram) -> BTreeSet<usize> {
    (0..program.op_count())
        .map(|op| program.op_target(op))
        .collect()
}

fn kinds(diags: &[Diagnostic]) -> Vec<&DiagKind> {
    diags.iter().map(|d| &d.kind).collect()
}

#[test]
fn clean_baseline() {
    let (_, program) = base();
    assert!(analyze_program(&program, &outputs(&program)).is_empty());
}

#[test]
fn mutation_redundant_op_is_flagged() {
    // Append an exact clone of op 0 as a new final level: the analyzer
    // must see both the recomputation (DuplicateExpression) and the
    // shadowed first write (DeadOp).
    let (_, program) = base();
    let expected = outputs(&program);
    let (mut targets, mut src_off, mut sources, mut level_off) = program.raw_parts();
    targets.push(targets[0]);
    let op0: Vec<u32> = sources[src_off[0] as usize..src_off[1] as usize].to_vec();
    sources.extend_from_slice(&op0);
    src_off.push(*src_off.last().unwrap() + op0.len() as u32);
    level_off.push(targets.len() as u32);
    let mutated = XorProgram::from_raw_parts(program.grid(), targets, src_off, sources, level_off);

    let diags = analyze_program(&mutated, &expected);
    let k = kinds(&diags);
    assert!(
        k.iter()
            .any(|k| matches!(k, DiagKind::DuplicateExpression { earlier_op: 0, .. })),
        "{diags:?}"
    );
    assert!(
        k.iter()
            .any(|k| matches!(k, DiagKind::DeadOp { op: 0, .. })),
        "{diags:?}"
    );
}

#[test]
fn mutation_extra_source_is_flagged_and_misses_the_claim() {
    // Pad op 0 with a second copy of its first source. The bytes still
    // come out right (x ^ x = 0 twice over), but the schedule does extra
    // work: the lint fires and the paper's encode claim goes from pass to
    // miss on the mutated artifact.
    let (layout, program) = base();
    let expected = outputs(&program);
    let (targets, mut src_off, mut sources, level_off) = program.raw_parts();
    sources.insert(src_off[1] as usize, sources[src_off[0] as usize]);
    for off in src_off.iter_mut().skip(1) {
        *off += 1;
    }
    let mutated = XorProgram::from_raw_parts(program.grid(), targets, src_off, sources, level_off);

    let diags = analyze_program(&mutated, &expected);
    assert!(
        kinds(&diags)
            .iter()
            .any(|k| matches!(k, DiagKind::DuplicateSource { op: 0, .. })),
        "{diags:?}"
    );
    assert_eq!(program_xor_cost(&mutated), program_xor_cost(&program) + 1);
    let claim = ClaimCheck::check(
        "encode XORs per data element",
        "2 - 2/(p-2)",
        1.6,
        encode_xors_per_data_element(&layout, &mutated),
    );
    assert!(!claim.pass, "{claim}");
}

#[test]
fn mutation_serialized_level_is_flagged() {
    // Split D-Code's single level in two. Every op in the new second
    // level could have run in the first — the analyzer must call each one
    // hoistable, and the critical-path bound must degrade.
    let (_, program) = base();
    let expected = outputs(&program);
    let (targets, src_off, sources, _) = program.raw_parts();
    let n = targets.len() as u32;
    let mutated =
        XorProgram::from_raw_parts(program.grid(), targets, src_off, sources, vec![0, n / 2, n]);

    let diags = analyze_program(&mutated, &expected);
    let hoistable = kinds(&diags)
        .iter()
        .filter(|k| matches!(k, DiagKind::HoistableOp { level: 1, .. }))
        .count();
    assert_eq!(hoistable, (n - n / 2) as usize, "{diags:?}");
    let orig = dcode_analyze::critical_path(&program);
    let worse = dcode_analyze::critical_path(&mutated);
    assert!(worse.speedup_bound < orig.speedup_bound);
}

#[test]
fn mutation_dead_scratch_write_is_flagged() {
    // Append an op computing into a block nothing reads and no output
    // needs: a dead scratch write (UnreadResult).
    let (_, program) = base();
    let expected = outputs(&program);
    let grid = program.grid();
    let scratch = (0..grid.len() as u32)
        .find(|b| !expected.contains(&(*b as usize)))
        .unwrap();
    let (mut targets, mut src_off, mut sources, mut level_off) = program.raw_parts();
    let new_op = targets.len();
    targets.push(scratch);
    sources.extend_from_slice(&[0, 1]);
    src_off.push(*src_off.last().unwrap() + 2);
    level_off.push(targets.len() as u32);
    let mutated = XorProgram::from_raw_parts(grid, targets, src_off, sources, level_off);

    let diags = analyze_program(&mutated, &expected);
    assert!(
        kinds(&diags).iter().any(|k| matches!(
            k,
            DiagKind::UnreadResult { op, .. } if *op == new_op
        )),
        "{diags:?}"
    );
}

#[test]
fn mutation_whole_stripe_gather_is_flagged() {
    // Flatten the schedule into one op gathering 300 blocks: the
    // per-level working-set estimate must exceed the budget.
    let grid = Grid::new(18, 18);
    let sources: Vec<u32> = (0..300u32).collect();
    let mutated = XorProgram::from_raw_parts(grid, vec![323], vec![0, 300], sources, vec![0, 1]);
    let diags = analyze_program(&mutated, &BTreeSet::from([323]));
    assert!(
        kinds(&diags)
            .iter()
            .any(|k| matches!(k, DiagKind::OversizedWorkingSet { level: 0, .. })),
        "{diags:?}"
    );
}
