//! Mutation self-tests for the optimizer tier: every peephole finding the
//! analyzer can report is *fixed* by the pass that owns it. Each test
//! plants one defect in a known-good compiled program, proves the lint
//! fires, runs exactly the owning pass, and proves (a) the lint is silent
//! afterwards and (b) the rewrite is output-equivalent by the independent
//! symbolic pair check. If a pass stops curing its lint, this file is the
//! tripwire.

use dcode_analyze::analyze_program;
use dcode_codec::opt::{optimize, CostSummary, OptConfig, OptPass};
use dcode_codec::XorProgram;
use dcode_core::dcode::dcode;
use dcode_core::grid::Grid;
use dcode_verify::{verify_optimized_pair, DiagKind};
use std::collections::BTreeSet;

/// The known-good base: D-Code p=7's compiled encode (14 ops, 1 level).
fn base() -> XorProgram {
    XorProgram::compile_encode(&dcode(7).unwrap())
}

fn outputs(program: &XorProgram) -> BTreeSet<usize> {
    (0..program.op_count())
        .map(|op| program.op_target(op))
        .collect()
}

/// First `n` block indices no op of `program` writes (data cells — free
/// to host planted scratch traffic).
fn free_blocks(program: &XorProgram, n: usize) -> Vec<u32> {
    let written = outputs(program);
    (0..program.grid().len() as u32)
        .filter(|&b| !written.contains(&(b as usize)))
        .take(n)
        .collect()
}

/// Append one op as its own new final level.
fn plant(program: &XorProgram, target: u32, srcs: &[u32]) -> XorProgram {
    let (mut targets, mut src_off, mut sources, mut level_off) = program.raw_parts();
    targets.push(target);
    sources.extend_from_slice(srcs);
    src_off.push(*src_off.last().unwrap() + srcs.len() as u32);
    level_off.push(targets.len() as u32);
    XorProgram::from_raw_parts(program.grid(), targets, src_off, sources, level_off)
}

fn has(diags: &[dcode_verify::Diagnostic], pred: impl Fn(&DiagKind) -> bool) -> bool {
    diags.iter().any(|d| pred(&d.kind))
}

#[test]
fn cse_fixes_a_planted_duplicate_expression() {
    let program = base();
    let x = free_blocks(&program, 1)[0];
    // Clone op 0's expression into a fresh block at a later level.
    let op0: Vec<u32> = program.op_sources(0).to_vec();
    let mutant = plant(&program, x, &op0);
    let mut outs = outputs(&program);
    outs.insert(x as usize);

    let pre = analyze_program(&mutant, &outs);
    assert!(
        has(&pre, |k| matches!(
            k,
            DiagKind::DuplicateExpression { earlier_op: 0, .. }
        )),
        "planted duplicate must be flagged: {pre:?}"
    );

    let opt = optimize(
        &mutant,
        Some(&outs),
        &OptConfig::with_passes(vec![OptPass::CommonSubexpression]),
    );
    assert!(opt.certificate.holds());
    assert!(opt.certificate.passes.iter().any(|r| r.changed));
    let post = analyze_program(&opt.program, &outs);
    assert!(
        !has(&post, |k| matches!(k, DiagKind::DuplicateExpression { .. })),
        "CSE must cure its lint: {post:?}"
    );
    assert!(verify_optimized_pair(&mutant, &opt.program, &outs).is_empty());
}

#[test]
fn dead_op_elim_fixes_a_planted_unread_result() {
    let program = base();
    let x = free_blocks(&program, 1)[0];
    // A scratch write nobody reads and nobody wants.
    let mutant = plant(&program, x, &[0, 1]);
    let outs = outputs(&program);

    let pre = analyze_program(&mutant, &outs);
    assert!(
        has(&pre, |k| matches!(k, DiagKind::UnreadResult { .. })),
        "planted unread result must be flagged: {pre:?}"
    );

    let opt = optimize(
        &mutant,
        Some(&outs),
        &OptConfig::with_passes(vec![OptPass::DeadOpElim]),
    );
    assert!(opt.certificate.holds());
    assert_eq!(opt.program.op_count(), program.op_count());
    let post = analyze_program(&opt.program, &outs);
    assert!(
        !has(&post, |k| matches!(k, DiagKind::UnreadResult { .. })),
        "dead-op elimination must cure its lint: {post:?}"
    );
    assert!(verify_optimized_pair(&mutant, &opt.program, &outs).is_empty());
}

#[test]
fn dead_op_elim_fixes_a_planted_shadowed_scratch_write() {
    let program = base();
    let x = free_blocks(&program, 1)[0];
    // Two writes to the same block in successive levels: the first is a
    // dead scratch write (shadowed, never read); the second is wanted.
    let mutant = plant(&plant(&program, x, &[0, 1]), x, &[2, 3]);
    let mut outs = outputs(&program);
    outs.insert(x as usize);

    let pre = analyze_program(&mutant, &outs);
    assert!(
        has(&pre, |k| matches!(k, DiagKind::DeadOp { .. })),
        "planted shadowed write must be flagged: {pre:?}"
    );

    let opt = optimize(
        &mutant,
        Some(&outs),
        &OptConfig::with_passes(vec![OptPass::DeadOpElim]),
    );
    assert!(opt.certificate.holds());
    assert_eq!(opt.program.op_count(), program.op_count() + 1);
    let post = analyze_program(&opt.program, &outs);
    assert!(
        !has(&post, |k| matches!(k, DiagKind::DeadOp { .. })),
        "dead-op elimination must cure its lint: {post:?}"
    );
    assert!(verify_optimized_pair(&mutant, &opt.program, &outs).is_empty());
}

#[test]
fn level_repack_fixes_a_planted_hoistable_op() {
    // The real encode program reads every data block at level 0, so a
    // planted op always has a write-after-read conflict with level 0 and
    // can never reach the lint's RAW-only earliest level. A toy grid
    // with genuinely untouched blocks isolates the defect the pass owns:
    // an op parked two levels past its dependencies.
    let grid = Grid::new(4, 4);
    let program = XorProgram::from_raw_parts(
        grid,
        vec![5, 12],
        vec![0, 2, 4],
        vec![0, 1, 5, 2],
        vec![0, 1, 2],
    );
    // Inputs all initial, target untouched — could run at level 0, sits
    // in its own level 2.
    let mutant = plant(&program, 13, &[3, 4]);
    let outs = BTreeSet::from([12usize, 13]);

    let pre = analyze_program(&mutant, &outs);
    assert!(
        has(&pre, |k| matches!(k, DiagKind::HoistableOp { .. })),
        "planted late op must be flagged hoistable: {pre:?}"
    );

    let opt = optimize(
        &mutant,
        Some(&outs),
        &OptConfig::with_passes(vec![OptPass::LevelRepack]),
    );
    assert!(opt.certificate.holds());
    assert_eq!(opt.program.level_count(), program.level_count());
    let post = analyze_program(&opt.program, &outs);
    assert!(
        !has(&post, |k| matches!(k, DiagKind::HoistableOp { .. })),
        "level repacking must cure its lint: {post:?}"
    );
    assert!(verify_optimized_pair(&mutant, &opt.program, &outs).is_empty());
}

#[test]
fn scratch_coloring_reclaims_a_strictly_separated_slot() {
    // No lint owns slot count, so this one asserts the measured metric
    // directly: two scratch chains with disjoint lifetimes collapse onto
    // one host, proven equivalent by the symbolic pair check.
    let grid = Grid::new(4, 4);
    let toy = XorProgram::from_raw_parts(
        grid,
        vec![5, 12, 6, 13],
        vec![0, 2, 4, 6, 8],
        vec![0, 1, 5, 2, 0, 3, 6, 1],
        vec![0, 1, 2, 3, 4],
    );
    let outs = BTreeSet::from([12usize, 13]);
    let outs32: BTreeSet<u32> = outs.iter().map(|&o| o as u32).collect();
    assert_eq!(CostSummary::measure(&toy, &outs32).scratch_blocks, 2);

    let opt = optimize(
        &toy,
        Some(&outs),
        &OptConfig::with_passes(vec![OptPass::ScratchColor]),
    );
    assert!(opt.certificate.holds());
    assert_eq!(opt.certificate.after.scratch_blocks, 1);
    assert!(verify_optimized_pair(&toy, &opt.program, &outs).is_empty());
}
