//! Differential tests: the analyzer's *static* numbers against the
//! *dynamic* truth.
//!
//! * An instrumented interpreter replays compiled programs byte-for-byte,
//!   counting XOR block-ops as it goes; its count must equal
//!   [`program_xor_cost`] and its bytes must equal the production
//!   executor's, for every registry code, encode and every 2-column
//!   erasure (property-based over code x prime x erasure pair).
//! * The static degraded-read footprint is checked against `dcode-iosim`'s
//!   dynamic accounting.
//! * The static speedup bound is checked against the checked-in
//!   `BENCH_parallel.json` measurements.

use dcode_analyze::{
    critical_path, degraded_read_footprint, parse_parallel_bench, program_xor_cost,
    speedup_cross_check,
};
use dcode_baselines::registry::all_codes;
use dcode_codec::{Stripe, XorProgram};
use dcode_core::decoder::plan_column_recovery;
use dcode_core::layout::CodeLayout;
use proptest::prelude::*;

const PRIMES: [usize; 4] = [5, 7, 11, 13];
const BLOCK: usize = 16;

/// Replay `program` over `stripe` exactly as the executor specifies (copy
/// the first source over the target, XOR in the rest), counting XOR
/// block-ops. This is the analyzer's cost model made executable.
fn interpret_counting(program: &XorProgram, stripe: &mut Stripe) -> usize {
    let grid = stripe.grid();
    let mut xors = 0usize;
    for op in 0..program.op_count() {
        let srcs = program.op_sources(op);
        let mut acc = stripe.snapshot(grid.cell_at(srcs[0] as usize));
        for &s in &srcs[1..] {
            for (a, &b) in acc.iter_mut().zip(stripe.block(grid.cell_at(s as usize))) {
                *a ^= b;
            }
            xors += 1;
        }
        stripe
            .block_mut(grid.cell_at(program.op_target(op)))
            .copy_from_slice(&acc);
    }
    xors
}

fn filled_stripe(layout: &CodeLayout, seed: u8) -> Stripe {
    let data: Vec<u8> = (0..layout.data_len() * BLOCK)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect();
    Stripe::from_data(layout, BLOCK, &data)
}

fn stripes_equal(a: &Stripe, b: &Stripe) -> bool {
    let grid = a.grid();
    (0..grid.len()).all(|i| a.block(grid.cell_at(i)) == b.block(grid.cell_at(i)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(28))]

    /// Encode: interpreter bytes == executor bytes, interpreter XOR count
    /// == static cost, for a random registry code and prime.
    #[test]
    fn static_encode_cost_matches_instrumented_run(
        code_idx in 0usize..7,
        p_idx in 0usize..4,
        seed in 0u8..255,
    ) {
        let layout = all_codes(PRIMES[p_idx]).swap_remove(code_idx);
        let program = XorProgram::compile_encode(&layout);

        let mut by_interp = filled_stripe(&layout, seed);
        let xors = interpret_counting(&program, &mut by_interp);
        prop_assert_eq!(xors, program_xor_cost(&program));

        let mut by_exec = filled_stripe(&layout, seed);
        program.run(&mut by_exec);
        prop_assert!(stripes_equal(&by_interp, &by_exec));
    }

    /// Recovery: same property over a random 2-column erasure, and the
    /// recovered stripe must equal the pre-erasure stripe.
    #[test]
    fn static_recovery_cost_matches_instrumented_run(
        code_idx in 0usize..7,
        p_idx in 0usize..4,
        pair in 0usize..1000,
        seed in 0u8..255,
    ) {
        let layout = all_codes(PRIMES[p_idx]).swap_remove(code_idx);
        let disks = layout.disks();
        let c1 = pair % disks;
        let c2 = (c1 + 1 + (pair / disks) % (disks - 1)) % disks;
        let (c1, c2) = (c1.min(c2), c1.max(c2));
        let plan = plan_column_recovery(&layout, &[c1, c2]).unwrap();
        let program = XorProgram::compile_plan(layout.grid(), &plan);

        let mut pristine = filled_stripe(&layout, seed);
        XorProgram::compile_encode(&layout).run(&mut pristine);

        let mut by_interp = pristine.clone();
        by_interp.erase_columns(&[c1, c2]);
        let xors = interpret_counting(&program, &mut by_interp);
        prop_assert_eq!(xors, program_xor_cost(&program));
        prop_assert_eq!(xors, plan.xor_count());
        prop_assert!(stripes_equal(&by_interp, &pristine));

        let mut by_exec = pristine.clone();
        by_exec.erase_columns(&[c1, c2]);
        program.run(&mut by_exec);
        prop_assert!(stripes_equal(&by_exec, &pristine));
    }
}

/// The static degraded-read footprint against iosim's dynamic accounting.
/// iosim picks, per lost element, whichever parity equation minimises
/// extra reads for the request at hand; the static plan commits to the
/// peel chains the recovery planner chose. So per disk and in total the
/// static footprint dominates (>=), and for D-Code's horizontal-parity
/// peels the full-stripe totals coincide exactly.
#[test]
fn static_degraded_footprint_dominates_iosim() {
    for p in [5usize, 7, 11] {
        for layout in all_codes(p) {
            for failed in 0..layout.disks() {
                let dynamic =
                    dcode_iosim::degraded_read_accesses(&layout, 0, layout.data_len(), failed);
                let fixed = degraded_read_footprint(&layout, failed);
                assert!(
                    fixed.reads.total() >= dynamic.total(),
                    "{} p={p} failed={failed}: static {} < dynamic {}",
                    layout.name(),
                    fixed.reads.total(),
                    dynamic.total()
                );
                assert_eq!(fixed.reads.per_disk[failed], 0);
            }
        }
    }
}

/// The measured thread-scaling speedups in the checked-in bench artifact
/// must respect the static critical-path bound for every code it covers.
#[test]
fn bench_artifact_respects_static_speedup_bounds() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    let text = std::fs::read_to_string(path).expect("BENCH_parallel.json is checked in");
    let bench = parse_parallel_bench(&text).expect("bench artifact parses");
    let checks = speedup_cross_check(&bench, |code| {
        let layout = all_codes(bench.p).into_iter().find(|l| l.name() == code)?;
        Some(critical_path(&XorProgram::compile_encode(&layout)).speedup_bound)
    });
    assert!(!checks.is_empty(), "no parallel/level series recognised");
    for c in &checks {
        assert!(c.pass, "{c}");
        assert!(c.bound >= 1.0);
    }
}
