//! The paper's §III-D closed forms, as machine-checkable claims.
//!
//! Each registry code has exact closed-form complexities in `p` (fitted
//! from the constructions and verified at every prime the CI sweep uses).
//! A [`ClaimCheck`] pairs one closed form with the value measured on the
//! compiled artifact; `--assert-claims` fails on any mismatch, which turns
//! the paper's §III-D table and the balanced-I/O-load headline into CI
//! gates over the *compiled schedules*.

use std::fmt;

/// Which static load-balance property a code claims for a full-stripe
/// encode.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LoadBalance {
    /// Parity writes spread perfectly over all disks (write LF = 1), and
    /// so do reads+writes combined (combined LF = 1) — the paper's
    /// headline property, held by the vertical codes D-Code and X-Code.
    BalancedCombined,
    /// Parity writes spread perfectly (write LF = 1) but reads and writes
    /// combined do not.
    BalancedWrites,
    /// Dedicated parity disks receive all writes while data disks receive
    /// none, so the write LF is unbounded (∞).
    DedicatedParity,
}

/// Closed-form expectations for one code at one prime.
#[derive(Clone, Debug)]
pub struct ClosedForms {
    /// Encode XORs per data element.
    pub encode_per_element: f64,
    /// Symbolic form of [`ClosedForms::encode_per_element`].
    pub encode_formula: &'static str,
    /// Decode XORs per lost element, averaged over all 2-column erasures.
    /// `None` for EVENODD, whose Gaussian `S`-syndrome steps admit no
    /// clean closed form (its plan costs are still cross-checked
    /// structurally).
    pub decode_per_lost: Option<f64>,
    /// Symbolic form of [`ClosedForms::decode_per_lost`].
    pub decode_formula: &'static str,
    /// Average parity elements touched by a one-element update.
    pub update_avg: f64,
    /// Symbolic form of [`ClosedForms::update_avg`].
    pub update_formula: &'static str,
    /// Worst-case parity elements touched by a one-element update.
    pub update_max: usize,
    /// Dependency levels the compiled encode program must have (1 for
    /// independent parity families, 2 where one parity reads another).
    pub encode_levels: usize,
    /// The encode load-balance property.
    pub balance: LoadBalance,
}

/// Closed forms for a registry code, keyed by its display name. `None`
/// for layouts outside the registry (custom specs get structural analysis
/// only, no claim table).
pub fn closed_forms(name: &str, p: usize) -> Option<ClosedForms> {
    let pf = p as f64;
    Some(match name {
        "D-Code" | "X-Code" => ClosedForms {
            // n = p disks for the vertical codes, so the paper's
            // 2 − 2/(n−2) is 2 − 2/(p−2).
            encode_per_element: 2.0 - 2.0 / (pf - 2.0),
            encode_formula: "2 - 2/(p-2)",
            decode_per_lost: Some(pf - 3.0),
            decode_formula: "p - 3",
            update_avg: 2.0,
            update_formula: "2",
            update_max: 2,
            encode_levels: 1,
            balance: LoadBalance::BalancedCombined,
        },
        "RDP" => ClosedForms {
            encode_per_element: 2.0 - 2.0 / (pf - 1.0),
            encode_formula: "2 - 2/(p-1)",
            decode_per_lost: Some(pf - 2.0),
            decode_formula: "p - 2",
            // Diagonal parity covers the row parity, so updates cascade:
            // every data element rewrites its row parity, its diagonal
            // parity, and (unless it sits on the missing diagonal) the
            // diagonal parity of its row parity.
            update_avg: 3.0 - (2.0 * pf - 3.0) / ((pf - 1.0) * (pf - 1.0)),
            update_formula: "3 - (2p-3)/(p-1)^2",
            update_max: 3,
            encode_levels: 2,
            balance: LoadBalance::DedicatedParity,
        },
        "H-Code" => ClosedForms {
            encode_per_element: 2.0 - 2.0 / (pf - 1.0),
            encode_formula: "2 - 2/(p-1)",
            decode_per_lost: Some(pf - 2.0),
            decode_formula: "p - 2",
            update_avg: 2.0,
            update_formula: "2",
            update_max: 2,
            encode_levels: 1,
            balance: LoadBalance::DedicatedParity,
        },
        "HDP" => ClosedForms {
            encode_per_element: 2.0 - 1.0 / (pf - 3.0),
            encode_formula: "2 - 1/(p-3)",
            decode_per_lost: Some((2.0 * pf - 7.0) / 2.0),
            decode_formula: "(2p-7)/2",
            update_avg: 3.0,
            update_formula: "3",
            update_max: 3,
            encode_levels: 2,
            balance: LoadBalance::BalancedWrites,
        },
        "EVENODD" => ClosedForms {
            encode_per_element: 3.0 - 4.0 / pf,
            encode_formula: "3 - 4/p",
            decode_per_lost: None,
            decode_formula: "(no closed form: Gaussian S-syndrome steps)",
            update_avg: 3.0 - 2.0 / pf,
            update_formula: "3 - 2/p",
            update_max: p,
            encode_levels: 1,
            balance: LoadBalance::DedicatedParity,
        },
        "P-Code" => ClosedForms {
            encode_per_element: 2.0 - 2.0 / (pf - 3.0),
            encode_formula: "2 - 2/(p-3)",
            decode_per_lost: Some(pf - 4.0),
            decode_formula: "p - 4",
            update_avg: 2.0,
            update_formula: "2",
            update_max: 2,
            encode_levels: 1,
            balance: LoadBalance::BalancedWrites,
        },
        _ => return None,
    })
}

/// One closed form checked against the value measured on the compiled
/// artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct ClaimCheck {
    /// What is being claimed, e.g. `"encode XORs per data element"`.
    pub name: String,
    /// The symbolic closed form the expectation came from.
    pub formula: String,
    /// The closed form evaluated at this `p` (may be `f64::INFINITY` for
    /// unbounded load-balance factors).
    pub expected: f64,
    /// The value measured on the compiled artifact.
    pub actual: f64,
    /// Whether the claim holds (exact within `1e-9`, or both infinite).
    pub pass: bool,
}

impl ClaimCheck {
    /// Check `actual` against `expected` (tolerance `1e-9`; infinities
    /// must match as infinities).
    pub fn check(name: &str, formula: &str, expected: f64, actual: f64) -> Self {
        let pass = if expected.is_infinite() || actual.is_infinite() {
            expected.is_infinite() && actual.is_infinite() && expected.signum() == actual.signum()
        } else {
            (actual - expected).abs() < 1e-9
        };
        ClaimCheck {
            name: name.to_string(),
            formula: formula.to_string(),
            expected,
            actual,
            pass,
        }
    }
}

impl fmt::Display for ClaimCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} = {} vs measured {} — {}",
            self.name,
            self.formula,
            self.expected,
            self.actual,
            if self.pass { "ok" } else { "MISS" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_tolerance_and_infinities() {
        assert!(ClaimCheck::check("x", "1", 1.0, 1.0 + 1e-12).pass);
        assert!(!ClaimCheck::check("x", "1", 1.0, 1.001).pass);
        assert!(ClaimCheck::check("lf", "inf", f64::INFINITY, f64::INFINITY).pass);
        assert!(!ClaimCheck::check("lf", "inf", f64::INFINITY, 1.0).pass);
        assert!(!ClaimCheck::check("lf", "1", 1.0, f64::INFINITY).pass);
    }

    #[test]
    fn registry_names_have_forms_and_strangers_do_not() {
        for name in [
            "D-Code", "X-Code", "RDP", "H-Code", "HDP", "EVENODD", "P-Code",
        ] {
            assert!(closed_forms(name, 7).is_some(), "{name}");
        }
        assert!(closed_forms("toy", 7).is_none());
    }
}
