//! Critical-path and level-width analysis over dependency levels.
//!
//! A compiled program's levels run sequentially; ops within a level run
//! concurrently. With unlimited workers, a level finishes no sooner than
//! its widest gather, so the schedule's wall-clock floor is the sum of
//! per-level maxima and the best possible parallel speedup is bounded by
//! `total_work / critical_path_work`. Work is measured in source-block
//! gathers (the unit the tiled XOR kernel streams), which makes the bound
//! block-size-independent.

use dcode_codec::XorProgram;

/// Level-structure summary of one compiled program.
#[derive(Clone, Debug, PartialEq)]
pub struct CritPath {
    /// Dependency levels.
    pub levels: usize,
    /// Total work: source-block gathers summed over all ops.
    pub total_work: usize,
    /// Critical path: per-level widest gather, summed over levels — the
    /// wall-clock floor with unlimited workers.
    pub critical_path_work: usize,
    /// Ops in the widest level (the useful worker count).
    pub max_width: usize,
    /// Static upper bound on parallel speedup:
    /// `total_work / critical_path_work`.
    pub speedup_bound: f64,
}

/// Analyze `program`'s level structure.
///
/// # Panics
/// Panics on a zero-op program (no schedule has a critical path).
pub fn critical_path(program: &XorProgram) -> CritPath {
    assert!(program.op_count() > 0, "empty program has no critical path");
    let mut total = 0usize;
    let mut crit = 0usize;
    let mut max_width = 0usize;
    for lv in 0..program.level_count() {
        let ops = program.level_ops(lv);
        max_width = max_width.max(ops.len());
        let mut widest = 0usize;
        for op in ops {
            let gathers = program.op_sources(op).len();
            total += gathers;
            widest = widest.max(gathers);
        }
        crit += widest;
    }
    CritPath {
        levels: program.level_count(),
        total_work: total,
        critical_path_work: crit,
        max_width,
        speedup_bound: total as f64 / crit as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;

    #[test]
    fn single_level_codes_bound_equals_op_parallelism() {
        // D-Code p=7: 14 independent ops of 5 gathers each — the critical
        // path is one op and the bound is the op count.
        let d = dcode_core::dcode::dcode(7).unwrap();
        let cp = critical_path(&XorProgram::compile_encode(&d));
        assert_eq!(cp.levels, 1);
        assert_eq!(cp.total_work, 70);
        assert_eq!(cp.critical_path_work, 5);
        assert!((cp.speedup_bound - 14.0).abs() < 1e-9);
        assert_eq!(cp.max_width, 14);
    }

    #[test]
    fn two_level_codes_pay_for_their_serialization() {
        // RDP serializes diagonal parity behind row parity: two levels,
        // and the bound drops accordingly.
        let rdp = dcode_baselines::rdp::rdp(7).unwrap();
        let cp = critical_path(&XorProgram::compile_encode(&rdp));
        assert_eq!(cp.levels, 2);
        assert!(cp.speedup_bound < cp.total_work as f64 / 6.0);
    }

    #[test]
    fn bound_is_at_least_one_for_every_registry_program() {
        for p in [5usize, 7, 11, 13] {
            for layout in all_codes(p) {
                let cp = critical_path(&XorProgram::compile_encode(&layout));
                assert!(cp.speedup_bound >= 1.0, "{} p={p}", layout.name());
                assert!(cp.critical_path_work <= cp.total_work);
            }
        }
    }
}
