//! Op-count metrics derived from compiled artifacts.
//!
//! `dcode-core`'s [`metrics`](dcode_core::metrics) measures complexity on
//! the *layout* (equation member counts); these functions measure it on
//! the *compiled program* — the thing the hot paths actually execute. A
//! compiler or cache bug that padded an op with an extra source, cloned an
//! op, or dropped one would leave the layout metrics untouched but shift
//! these, which is exactly what the claim checks and the differential
//! tests are for.

use dcode_codec::XorProgram;
use dcode_core::layout::CodeLayout;

/// Total XORs a program executes: `sources − 1` per op. The executor
/// copies the first source over the target and folds every further source
/// in with one XOR, so this is the exact byte-level XOR count per block
/// column, independent of block size.
pub fn program_xor_cost(program: &XorProgram) -> usize {
    (0..program.op_count())
        .map(|op| program.op_sources(op).len().saturating_sub(1))
        .sum()
}

/// XORs per data element of a compiled encode program — the paper's
/// encoding-complexity metric, measured on the artifact.
pub fn encode_xors_per_data_element(layout: &CodeLayout, program: &XorProgram) -> f64 {
    program_xor_cost(program) as f64 / layout.data_len() as f64
}

/// Parity elements touched when one data element is updated
/// `(average, max)` over every data cell — the paper's update-complexity
/// metric. Derived from the layout's update closure (partial-stripe
/// writes are interpreted, not compiled, so the closure *is* the
/// artifact).
pub fn update_parity_touches(layout: &CodeLayout) -> (f64, usize) {
    dcode_core::metrics::update_complexity(layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;

    #[test]
    fn program_cost_matches_layout_cost_for_encode() {
        // Compiled encode ops mirror equations 1:1, so the program-side
        // count must equal the equation-side count.
        for p in [5usize, 7, 11] {
            for layout in all_codes(p) {
                let program = XorProgram::compile_encode(&layout);
                assert_eq!(
                    program_xor_cost(&program),
                    dcode_core::metrics::encode_xor_total(&layout),
                    "{} p={p}",
                    layout.name()
                );
            }
        }
    }

    #[test]
    fn plan_program_cost_matches_plan_xor_count() {
        for layout in all_codes(7) {
            let plan = dcode_core::decoder::plan_column_recovery(&layout, &[0, 2]).unwrap();
            let program = XorProgram::compile_plan(layout.grid(), &plan);
            assert_eq!(program_xor_cost(&program), plan.xor_count());
        }
    }
}
