//! The optimizer's standing regression tripwire: per-scope cost-delta
//! certificates for everything the codec compiles for a layout.
//!
//! The registry codes are compiled *optimally* by construction — their
//! schedule compiler emits no dead ops, no duplicate subexpressions, no
//! slack levels — so the optimizer pipeline must be the **identity** on
//! them: every cost metric's delta must be exactly zero. A nonzero delta
//! on a registry code means one of two bugs: the compiler regressed (it
//! now emits removable work) or an optimizer pass regressed (it claims
//! wins that do not exist). Either way `dcode analyze --opt-delta` turns
//! red. Degraded-read *subprograms* are the exception: their outputs are
//! a strict subset of their targets, so scratch coloring may legitimately
//! tighten them — those entries only require `after ≤ before`.

use crate::claims::closed_forms;
use crate::report::FUSED_ANALYSIS_BATCH;
use dcode_codec::opt::{optimize, CostSummary, OptCertificate, OptConfig};
use dcode_codec::{FusedProgram, XorProgram};
use dcode_core::decoder::plan_column_recovery;
use dcode_core::layout::CodeLayout;
use std::collections::BTreeSet;
use std::fmt;

/// Batch shape for the fused-recovery delta entry (distinct from the
/// encode-side [`FUSED_ANALYSIS_BATCH`] so both shapes get exercised).
pub const FUSED_RECOVERY_BATCH: usize = 3;

/// One scope's cost-delta certificate.
#[derive(Clone, Debug)]
pub struct OptEntry {
    /// What was optimized (e.g. `"encode"`, `"recovery plans (21 pairs)"`).
    pub scope: String,
    /// Aggregate cost before the pipeline (sums across the scope's
    /// programs; levels and scratch blocks sum too — deltas, not shapes,
    /// are what this table tracks).
    pub before: CostSummary,
    /// Aggregate cost after.
    pub after: CostSummary,
    /// Whether every program in the scope passed its equivalence check.
    pub equivalent: bool,
    /// Whether this scope demands delta = 0 (registry codes compile
    /// optimally, so any motion is a regression somewhere).
    pub require_zero: bool,
}

impl OptEntry {
    /// The proof obligation for this scope: equivalence held, no metric
    /// regressed, and — where required — nothing moved at all.
    pub fn holds(&self) -> bool {
        self.equivalent
            && self.after.no_worse_than(&self.before)
            && (!self.require_zero || self.before == self.after)
    }

    fn from_certificate(scope: &str, cert: &OptCertificate, require_zero: bool) -> Self {
        OptEntry {
            scope: scope.to_string(),
            before: cert.before,
            after: cert.after,
            equivalent: cert.equivalent,
            require_zero,
        }
    }
}

/// The per-layout opt-delta table `dcode analyze --opt-delta` renders.
#[derive(Clone, Debug)]
pub struct OptDeltaReport {
    /// Code display name.
    pub code: String,
    /// The construction prime.
    pub p: usize,
    /// Fingerprint of the pipeline the deltas were measured under.
    pub pipeline_fingerprint: u64,
    /// One entry per scope, in compilation order.
    pub entries: Vec<OptEntry>,
}

impl OptDeltaReport {
    /// `true` when every entry's obligation holds — the CI bar.
    pub fn is_clean(&self) -> bool {
        self.entries.iter().all(OptEntry::holds)
    }

    /// Render as a single JSON object (hand-rolled like
    /// [`crate::report::AnalysisReport::to_json`]).
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                format!(
                    concat!(
                        "{{\"scope\": \"{}\", \"before\": {}, \"after\": {}, ",
                        "\"equivalent\": {}, \"require_zero\": {}, \"holds\": {}}}"
                    ),
                    esc(&e.scope),
                    cost_json(&e.before),
                    cost_json(&e.after),
                    e.equivalent,
                    e.require_zero,
                    e.holds(),
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"code\": \"{}\", \"p\": {}, ",
                "\"pipeline_fingerprint\": \"{:#018x}\", ",
                "\"entries\": [{}], \"clean\": {}}}"
            ),
            esc(&self.code),
            self.p,
            self.pipeline_fingerprint,
            entries.join(", "),
            self.is_clean(),
        )
    }
}

fn cost_json(c: &CostSummary) -> String {
    format!(
        concat!(
            "{{\"ops\": {}, \"xors\": {}, \"reads\": {}, ",
            "\"levels\": {}, \"scratch_blocks\": {}}}"
        ),
        c.ops, c.xors, c.reads, c.levels, c.scratch_blocks
    )
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl fmt::Display for OptDeltaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} p={} opt-delta (pipeline {:#018x})",
            self.code, self.p, self.pipeline_fingerprint
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "  {:<38} ops {}->{}, xors {}->{}, reads {}->{}, levels {}->{}, scratch {}->{} {}{}",
                e.scope,
                e.before.ops,
                e.after.ops,
                e.before.xors,
                e.after.xors,
                e.before.reads,
                e.after.reads,
                e.before.levels,
                e.after.levels,
                e.before.scratch_blocks,
                e.after.scratch_blocks,
                if e.require_zero { "[delta must be 0] " } else { "" },
                if e.holds() { "ok" } else { "VIOLATED" },
            )?;
        }
        write!(
            f,
            "  verdict:  {}",
            if self.is_clean() {
                "certified"
            } else {
                "NOT CERTIFIED"
            }
        )
    }
}

fn add(a: CostSummary, b: CostSummary) -> CostSummary {
    CostSummary {
        ops: a.ops + b.ops,
        xors: a.xors + b.xors,
        reads: a.reads + b.reads,
        levels: a.levels + b.levels,
        scratch_blocks: a.scratch_blocks + b.scratch_blocks,
    }
}

const ZERO: CostSummary = CostSummary {
    ops: 0,
    xors: 0,
    reads: 0,
    levels: 0,
    scratch_blocks: 0,
};

/// Build the full opt-delta table for `layout` under the default
/// pipeline: the encode program, every 2-column recovery program
/// (aggregated), a sample of degraded-read subprograms (aggregated,
/// `≤` only), and the two fused shapes the bulk path ships.
///
/// # Panics
/// Like [`crate::analyze_layout`], assumes a verified-MDS layout.
pub fn opt_delta(layout: &CodeLayout) -> OptDeltaReport {
    let grid = layout.grid();
    let config = OptConfig::default();
    let pipeline_fingerprint = config.fingerprint();
    // Registry codes compile optimally; demand exact zero on them. A
    // custom spec outside the registry only has to not regress.
    let require_zero = closed_forms(layout.name(), layout.prime()).is_some();
    let mut entries = Vec::new();

    // Scope 1: the encode program.
    let encode = XorProgram::compile_encode(layout);
    let opt_encode = optimize(&encode, None, &config);
    entries.push(OptEntry::from_certificate(
        "encode",
        &opt_encode.certificate,
        require_zero,
    ));

    // Scope 2: every 2-column recovery program, aggregated.
    let disks = layout.disks();
    let mut rec = OptEntry {
        scope: String::new(),
        before: ZERO,
        after: ZERO,
        equivalent: true,
        require_zero,
    };
    let mut pairs = 0usize;
    let mut first_plan_program = None;
    for c1 in 0..disks {
        for c2 in c1 + 1..disks {
            let plan = plan_column_recovery(layout, &[c1, c2])
                .expect("opt_delta assumes a verified-MDS layout");
            let prog = XorProgram::compile_plan(grid, &plan);
            let outputs: BTreeSet<usize> = plan.erased.iter().map(|&c| grid.index(c)).collect();
            let opt = optimize(&prog, Some(&outputs), &config);
            rec.before = add(rec.before, opt.certificate.before);
            rec.after = add(rec.after, opt.certificate.after);
            rec.equivalent &= opt.certificate.equivalent;
            pairs += 1;
            if first_plan_program.is_none() {
                first_plan_program = Some((prog, plan));
            }
        }
    }
    rec.scope = format!("recovery plans ({pairs} pairs)");
    entries.push(rec);

    // Scope 3: degraded-read subprograms — one wanted column per
    // 2-column erasure involving disk 0, aggregated. Outputs are a
    // strict subset of targets here, so the optimizer may legitimately
    // shrink them: no zero-delta demand, only monotonicity.
    let mut sub = OptEntry {
        scope: String::new(),
        before: ZERO,
        after: ZERO,
        equivalent: true,
        require_zero: false,
    };
    let mut samples = 0usize;
    for partner in 1..disks {
        let plan = plan_column_recovery(layout, &[0, partner])
            .expect("opt_delta assumes a verified-MDS layout");
        let missing: BTreeSet<_> = grid.column(0).collect();
        let subprog = XorProgram::compile_plan(grid, &plan.subplan_for(&missing));
        let outputs: BTreeSet<usize> = missing.iter().map(|&c| grid.index(c)).collect();
        let opt = optimize(&subprog, Some(&outputs), &config);
        sub.before = add(sub.before, opt.certificate.before);
        sub.after = add(sub.after, opt.certificate.after);
        sub.equivalent &= opt.certificate.equivalent;
        samples += 1;
    }
    sub.scope = format!("degraded-read subprograms ({samples} sampled)");
    entries.push(sub);

    // Scopes 4–5: the fused shapes the bulk path ships. Fusion must be
    // *exactly* batch × single — structural equivalence, zero delta —
    // for any layout, registry or not.
    let fused_encode = FusedProgram::fuse(&opt_encode.program, FUSED_ANALYSIS_BATCH);
    entries.push(OptEntry::from_certificate(
        &format!("fused encode (batch {FUSED_ANALYSIS_BATCH})"),
        &OptCertificate::for_fusion(&opt_encode.program, &fused_encode, pipeline_fingerprint),
        true,
    ));
    if let Some((prog, _plan)) = first_plan_program {
        let fused_rec = FusedProgram::fuse(&prog, FUSED_RECOVERY_BATCH);
        entries.push(OptEntry::from_certificate(
            &format!("fused recovery (batch {FUSED_RECOVERY_BATCH})"),
            &OptCertificate::for_fusion(&prog, &fused_rec, pipeline_fingerprint),
            true,
        ));
    }

    OptDeltaReport {
        code: layout.name().to_string(),
        p: layout.prime(),
        pipeline_fingerprint,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;

    #[test]
    fn every_registry_code_certifies_zero_delta_at_every_sweep_prime() {
        // The standing tripwire: registry codes × p ∈ {5,7,11,13,17} must
        // certify delta = 0 on every zero-demand scope. A failure here
        // means either the schedule compiler started emitting removable
        // work or an optimizer pass started claiming phantom wins.
        for p in [5usize, 7, 11, 13, 17] {
            for layout in all_codes(p) {
                let report = opt_delta(&layout);
                assert!(report.is_clean(), "{} p={p}:\n{report}", layout.name());
                assert_eq!(report.entries.len(), 5, "{} p={p}", layout.name());
                for e in &report.entries {
                    assert!(e.equivalent, "{} p={p} {}", layout.name(), e.scope);
                    if e.require_zero {
                        assert_eq!(e.before, e.after, "{} p={p} {}", layout.name(), e.scope);
                    }
                }
            }
        }
    }

    #[test]
    fn json_and_display_are_structurally_sound() {
        let report = opt_delta(&dcode_core::dcode::dcode(7).unwrap());
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"scope\": \"encode\""));
        assert!(json.contains("\"require_zero\": false")); // subprogram scope
        let text = report.to_string();
        assert!(text.contains("opt-delta"));
        assert!(text.ends_with("certified"));
    }

    #[test]
    fn a_planted_regression_is_not_clean() {
        // Flip an entry's `after` upward: the obligation must fail even
        // though equivalence held.
        let mut report = opt_delta(&dcode_core::dcode::dcode(5).unwrap());
        report.entries[0].after.xors += 1;
        assert!(!report.is_clean());
        assert!(report.to_string().contains("VIOLATED"));
    }
}
