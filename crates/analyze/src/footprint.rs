//! Per-disk static read/write footprints of compiled programs.
//!
//! A program's disk traffic is fully determined by its flat arrays: every
//! op writes its target block once, and reads each source block from disk
//! unless an earlier op already produced it in memory (RDP's diagonal
//! parity reads the just-computed row parity, not the platter). Counting
//! distinct blocks per column yields the same per-disk access vectors
//! `dcode-iosim` accumulates dynamically, so both sides feed the paper's
//! load-balancing factor (eq. (8)) through the identical
//! [`load_balancing_factor`](dcode_iosim::load_balancing_factor) function
//! — that is the static-vs-dynamic cross-check.

use dcode_codec::XorProgram;
use dcode_core::grid::Grid;
use dcode_core::layout::CodeLayout;
use dcode_iosim::DiskAccesses;
use std::collections::BTreeSet;

/// Distinct per-disk block reads and writes a program issues.
#[derive(Clone, Debug)]
pub struct StaticFootprint {
    /// Blocks fetched from disk per column (sources no earlier op
    /// produced, counted once).
    pub reads: DiskAccesses,
    /// Blocks written back per column (distinct op targets).
    pub writes: DiskAccesses,
}

impl StaticFootprint {
    /// Reads and writes summed — the combined per-disk load whose LF the
    /// paper's balanced-I/O claim bounds.
    pub fn combined(&self) -> DiskAccesses {
        let mut acc = self.reads.clone();
        acc.add_scaled(&self.writes, 1);
        acc
    }
}

/// Static footprint of any compiled program over `grid`.
pub fn program_footprint(grid: Grid, program: &XorProgram) -> StaticFootprint {
    let mut reads = DiskAccesses::zero(grid.cols);
    let mut writes = DiskAccesses::zero(grid.cols);
    let mut produced: BTreeSet<u32> = BTreeSet::new();
    let mut fetched: BTreeSet<u32> = BTreeSet::new();
    for op in 0..program.op_count() {
        for &s in program.op_sources(op) {
            if !produced.contains(&s) && fetched.insert(s) {
                reads.per_disk[s as usize % grid.cols] += 1;
            }
        }
        let t = program.op_target(op) as u32;
        if produced.insert(t) {
            writes.per_disk[program.op_target(op) % grid.cols] += 1;
        }
    }
    StaticFootprint { reads, writes }
}

/// Static footprint of `layout`'s compiled full-stripe encode.
pub fn encode_footprint(layout: &CodeLayout, program: &XorProgram) -> StaticFootprint {
    program_footprint(layout.grid(), program)
}

/// Static footprint of a full-stripe **degraded read** with one failed
/// column: every surviving data element is read directly, and the lost
/// data elements are reconstructed through the column-recovery plan's
/// peel chains (restricted to data cells), whose surviving sources are
/// read unless the direct reads already fetched them. The failed column
/// contributes zero — compare its LF over *surviving* disks.
pub fn degraded_read_footprint(layout: &CodeLayout, failed_col: usize) -> StaticFootprint {
    let grid = layout.grid();
    let mut reads = DiskAccesses::zero(grid.cols);
    let writes = DiskAccesses::zero(grid.cols);
    let mut direct: BTreeSet<dcode_core::grid::Cell> = BTreeSet::new();
    for &cell in layout.data_cells() {
        if cell.col != failed_col {
            direct.insert(cell);
            reads.per_disk[cell.col] += 1;
        }
    }
    let plan = dcode_core::decoder::plan_column_recovery(layout, &[failed_col])
        .expect("single-column erasures are always recoverable for a RAID-6 code");
    let lost_data: BTreeSet<dcode_core::grid::Cell> = layout
        .data_cells()
        .iter()
        .copied()
        .filter(|c| c.col == failed_col)
        .collect();
    let sub = plan.subplan_for(&lost_data);
    for cell in sub.surviving_reads() {
        if direct.insert(cell) {
            reads.per_disk[cell.col] += 1;
        }
    }
    StaticFootprint { reads, writes }
}

/// The paper's LF over the surviving disks only (the failed column's zero
/// would otherwise force every degraded LF to ∞).
pub fn surviving_lf(acc: &DiskAccesses, failed_col: usize) -> f64 {
    let survivors: Vec<u64> = acc
        .per_disk
        .iter()
        .enumerate()
        .filter(|&(d, _)| d != failed_col)
        .map(|(_, &v)| v)
        .collect();
    dcode_iosim::load_balancing_factor(&DiskAccesses {
        per_disk: survivors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;
    use dcode_core::decoder::plan_column_recovery;

    #[test]
    fn encode_reads_equal_a_full_stripe_normal_read() {
        // The encode program reads exactly the data cells (each once), so
        // its static read footprint must equal iosim's dynamic accounting
        // of a full-stripe normal read.
        for layout in all_codes(7) {
            let program = XorProgram::compile_encode(&layout);
            let fp = encode_footprint(&layout, &program);
            let dynamic = dcode_iosim::normal_read_accesses(&layout, 0, layout.data_len());
            assert_eq!(fp.reads, dynamic, "{}", layout.name());
        }
    }

    #[test]
    fn recovery_footprint_matches_the_symbolic_plan() {
        // Program-derived reads must be the plan's surviving reads, and
        // writes must be exactly the erased cells.
        for layout in all_codes(7) {
            let grid = layout.grid();
            let plan = plan_column_recovery(&layout, &[1, 3]).unwrap();
            let program = XorProgram::compile_plan(grid, &plan);
            let fp = program_footprint(grid, &program);
            let mut plan_reads = DiskAccesses::zero(grid.cols);
            for c in plan.surviving_reads() {
                plan_reads.per_disk[c.col] += 1;
            }
            assert_eq!(fp.reads, plan_reads, "{}", layout.name());
            let mut plan_writes = DiskAccesses::zero(grid.cols);
            for &c in &plan.erased {
                plan_writes.per_disk[c.col] += 1;
            }
            assert_eq!(fp.writes, plan_writes, "{}", layout.name());
        }
    }

    #[test]
    fn in_program_intermediates_are_not_disk_reads() {
        // RDP's diagonal parity reads the row parity it just computed;
        // that must not count as a disk read of the row-parity column.
        let rdp = dcode_baselines::rdp::rdp(7).unwrap();
        let program = XorProgram::compile_encode(&rdp);
        let fp = encode_footprint(&rdp, &program);
        let row_parity_col = rdp.disks() - 2;
        assert_eq!(fp.reads.per_disk[row_parity_col], 0);
        assert!(fp.writes.per_disk[row_parity_col] > 0);
    }
}
