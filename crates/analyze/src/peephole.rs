//! Peephole lints over compiled programs.
//!
//! Builds on `dcode-verify`'s structural passes (hazards, self-references,
//! duplicate/even-multiplicity sources, dead ops, level minimality) and
//! adds the analyses that need output context or a cost model:
//!
//! * **duplicate expressions** — an op recomputing the exact XOR value an
//!   earlier op produced (no shared source rewritten in between), i.e. a
//!   missed common-subexpression elimination;
//! * **unread results** — ops whose value is never read, never
//!   overwritten, and not an expected output block (dead scratch writes
//!   and never-read outputs);
//! * **working-set estimates** — per dependency level, the widest gather
//!   plus its target at one [`TILE_BYTES`] tile each, checked against
//!   [`WORKING_SET_BUDGET_BYTES`].
//!
//! Everything reports through `dcode-verify`'s [`Diagnostic`] vocabulary,
//! so the CLI, CI, and the mutation suite match on structured kinds.

use dcode_codec::xor::TILE_BYTES;
use dcode_codec::XorProgram;
use dcode_verify::{DiagKind, Diagnostic};
use std::collections::{BTreeMap, BTreeSet};

/// Working-set budget for one dependency level: the widest gather's
/// source tiles plus the target tile must fit comfortably in cache. Sized
/// at 256 tiles (4 MiB at the kernel's 16 KiB [`TILE_BYTES`]) — the widest
/// registry gather (EVENODD's p = 17 Gaussian recovery step, 151 sources,
/// ~2.4 MiB) stays inside, while a schedule flattened into whole-stripe
/// gathers trips it.
pub const WORKING_SET_BUDGET_BYTES: usize = 256 * TILE_BYTES;

/// The peephole lints that need output context: duplicate expressions and
/// unread results. `expected_outputs` lists the linear block indices the
/// program exists to produce (parity blocks for an encode, erased blocks
/// for a recovery); a final write to any other block that nothing reads
/// is flagged.
pub fn peephole(program: &XorProgram, expected_outputs: &BTreeSet<usize>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    duplicate_expressions(program, &mut out);
    unread_results(program, expected_outputs, &mut out);
    out
}

/// Flag ops that recompute a value an earlier op already holds: same
/// source multiset, and none of those sources (nor the earlier target)
/// rewritten in between — the later op could copy, or be eliminated.
fn duplicate_expressions(program: &XorProgram, out: &mut Vec<Diagnostic>) {
    // Canonical source key -> op that computed it, invalidated when any
    // key member or the producing target is overwritten.
    let mut live: BTreeMap<Vec<u32>, usize> = BTreeMap::new();
    for op in 0..program.op_count() {
        let mut key: Vec<u32> = program.op_sources(op).to_vec();
        key.sort_unstable();
        if let Some(&earlier_op) = live.get(&key) {
            out.push(Diagnostic::warning(DiagKind::DuplicateExpression {
                op,
                earlier_op,
            }));
        }
        let target = program.op_target(op) as u32;
        live.retain(|k, &mut producer| {
            !k.contains(&target) && program.op_target(producer) as u32 != target
        });
        live.insert(key, op);
    }
}

/// Flag final writes nothing consumes: not read by a later op, not
/// overwritten (that is `DeadOp` territory), and not an expected output.
fn unread_results(
    program: &XorProgram,
    expected_outputs: &BTreeSet<usize>,
    out: &mut Vec<Diagnostic>,
) {
    // Walk backwards: a target is unread if no later op sources it and no
    // later op overwrites it.
    let mut read_later: BTreeSet<usize> = BTreeSet::new();
    let mut written_later: BTreeSet<usize> = BTreeSet::new();
    let mut findings = Vec::new();
    for op in (0..program.op_count()).rev() {
        let target = program.op_target(op);
        if !read_later.contains(&target)
            && !written_later.contains(&target)
            && !expected_outputs.contains(&target)
        {
            findings.push(Diagnostic::warning(DiagKind::UnreadResult {
                op,
                block: target,
            }));
        }
        written_later.insert(target);
        for &s in program.op_sources(op) {
            read_later.insert(s as usize);
        }
    }
    findings.reverse();
    out.extend(findings);
}

/// Per-level working-set estimates vs [`WORKING_SET_BUDGET_BYTES`]: the
/// widest gather of each level, plus its target, at one tile per block.
pub fn working_set_diagnostics(program: &XorProgram) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for lv in 0..program.level_count() {
        let widest = program
            .level_ops(lv)
            .map(|op| program.op_sources(op).len())
            .max()
            .unwrap_or(0);
        let bytes = (widest + 1) * TILE_BYTES;
        if bytes > WORKING_SET_BUDGET_BYTES {
            out.push(Diagnostic::warning(DiagKind::OversizedWorkingSet {
                level: lv,
                bytes,
                budget: WORKING_SET_BUDGET_BYTES,
            }));
        }
    }
    out
}

/// The full program-level lint tier the analyzer runs: `dcode-verify`'s
/// race check and schedule lints, then the peephole passes above.
pub fn analyze_program(
    program: &XorProgram,
    expected_outputs: &BTreeSet<usize>,
) -> Vec<Diagnostic> {
    let mut out = dcode_verify::check_levels(program);
    out.extend(dcode_verify::lint(program));
    out.extend(peephole(program, expected_outputs));
    out.extend(working_set_diagnostics(program));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;
    use dcode_core::grid::Grid;

    fn toy_program(targets: Vec<u32>, srcs: Vec<Vec<u32>>, level_split: Vec<u32>) -> XorProgram {
        let mut src_off = vec![0u32];
        let mut sources = Vec::new();
        for s in srcs {
            sources.extend_from_slice(&s);
            src_off.push(sources.len() as u32);
        }
        XorProgram::from_raw_parts(Grid::new(4, 4), targets, src_off, sources, level_split)
    }

    #[test]
    fn compiled_registry_programs_are_peephole_clean() {
        for p in [5usize, 7, 11] {
            for layout in all_codes(p) {
                let grid = layout.grid();
                let program = XorProgram::compile_encode(&layout);
                let outputs: BTreeSet<usize> = (0..program.op_count())
                    .map(|op| program.op_target(op))
                    .collect();
                let diags = analyze_program(&program, &outputs);
                assert!(diags.is_empty(), "{} p={p}: {diags:?}", layout.name());
                let plan = dcode_core::decoder::plan_column_recovery(&layout, &[0, 1]).unwrap();
                let prog = XorProgram::compile_plan(grid, &plan);
                let outputs: BTreeSet<usize> = plan.erased.iter().map(|&c| grid.index(c)).collect();
                let diags = analyze_program(&prog, &outputs);
                assert!(diags.is_empty(), "{} p={p}: {diags:?}", layout.name());
            }
        }
    }

    #[test]
    fn duplicate_expression_is_flagged_and_invalidation_respected() {
        // op0: b12 = b0^b1; op1: b13 = b0^b1  -> duplicate.
        let prog = toy_program(vec![12, 13], vec![vec![0, 1], vec![1, 0]], vec![0, 2]);
        let diags = peephole(&prog, &BTreeSet::from([12, 13]));
        assert_eq!(
            diags,
            vec![Diagnostic::warning(DiagKind::DuplicateExpression {
                op: 1,
                earlier_op: 0
            })]
        );
        // op0: b12 = b0^b1; op1: b0 = b2^b3; op2: b13 = b0^b1 -> NOT a
        // duplicate (b0 was rewritten in between).
        let prog = toy_program(
            vec![12, 0, 13],
            vec![vec![0, 1], vec![2, 3], vec![0, 1]],
            vec![0, 1, 2, 3],
        );
        assert!(peephole(&prog, &BTreeSet::from([12, 0, 13])).is_empty());
    }

    #[test]
    fn unread_scratch_write_is_flagged_but_outputs_are_not() {
        // op0 writes b5, nothing reads it, and only b12 is an output.
        let prog = toy_program(vec![5, 12], vec![vec![0, 1], vec![2, 3]], vec![0, 2]);
        let diags = peephole(&prog, &BTreeSet::from([12]));
        assert_eq!(
            diags,
            vec![Diagnostic::warning(DiagKind::UnreadResult {
                op: 0,
                block: 5
            })]
        );
        // Same program with b5 declared an output: clean.
        assert!(peephole(&prog, &BTreeSet::from([5, 12])).is_empty());
        // And a scratch write that IS read later: clean.
        let prog = toy_program(vec![5, 12], vec![vec![0, 1], vec![5, 3]], vec![0, 1, 2]);
        assert!(peephole(&prog, &BTreeSet::from([12])).is_empty());
    }

    #[test]
    fn oversized_working_set_is_flagged() {
        // One op gathering 256 sources: (256+1) tiles > the 256-tile
        // budget.
        let grid = Grid::new(17, 17);
        let sources: Vec<u32> = (0..256u32).collect();
        let prog = XorProgram::from_raw_parts(grid, vec![288], vec![0, 256], sources, vec![0, 1]);
        let diags = working_set_diagnostics(&prog);
        assert_eq!(diags.len(), 1);
        assert!(matches!(
            diags[0].kind,
            DiagKind::OversizedWorkingSet { level: 0, .. }
        ));
    }
}
