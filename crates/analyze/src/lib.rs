#![warn(missing_docs)]
//! # dcode-analyze
//!
//! Static analysis over the codec's *compiled* artifacts. `dcode-verify`
//! proves a compiled [`XorProgram`](dcode_codec::XorProgram) computes the
//! right bytes; this crate proves it computes them at the **cost the paper
//! promises** — without executing a single XOR. Five passes:
//!
//! * **Op-count metrics** ([`cost`]) — XORs per data element for the
//!   encode program, XORs per failed element across every compiled
//!   2-column recovery program, and parity touches per single-element
//!   update, asserted against the closed forms of the paper's §III-D
//!   ([`claims`]) for every registry code.
//! * **Static I/O footprints** ([`footprint`]) — per-disk distinct
//!   read/write counts a program issues, for encode, degraded-read
//!   subprograms, and full recovery plans, folded into the paper's
//!   load-balancing factor `LF` via `dcode-iosim`'s metric (so the static
//!   numbers and the dynamic simulation are directly comparable — the
//!   differential tests cross-check them).
//! * **Fused-batch costs** ([`fused`]) — the bulk encoder's fused batch
//!   programs must cost exactly `B ×` the single-stripe closed form (zero
//!   XOR-count regression from fusing) and must not amplify any source
//!   block's read fan-out — the static half of the bulk-throughput story
//!   `BENCH_parallel.json` measures.
//! * **Critical path** ([`critpath`]) — level-width analysis over the
//!   program's dependency levels, giving a static upper bound on parallel
//!   speedup that measured thread-scaling numbers (`BENCH_parallel.json`,
//!   parsed by [`bench`]) must respect.
//! * **Peephole lints** ([`peephole`]) — self-cancelling XOR pairs,
//!   duplicate subexpressions (CSE opportunities), dead scratch writes,
//!   never-read outputs, and per-level working-set estimates against
//!   [`dcode_codec::xor::TILE_BYTES`], all reported through
//!   `dcode-verify`'s machine-readable [`Diagnostic`](dcode_verify::Diagnostic)
//!   vocabulary.
//!
//! [`report::analyze_layout`] drives everything for one layout;
//! `dcode analyze --all --assert-claims` runs it over the whole registry
//! and CI fails on any claim miss or lint finding.
//!
//! ```
//! use dcode_analyze::analyze_layout;
//! use dcode_core::dcode::dcode;
//!
//! let report = analyze_layout(&dcode(7).unwrap());
//! assert!(report.is_clean(), "{report}");
//! // D-Code p=7: 2 − 2/(p−2) = 1.6 XORs per data element, statically.
//! assert!((report.encode.xors_per_data_element - 1.6).abs() < 1e-9);
//! ```

pub mod bench;
pub mod claims;
pub mod cost;
pub mod critpath;
pub mod footprint;
pub mod fused;
pub mod optdelta;
pub mod peephole;
pub mod report;

pub use bench::{
    parse_parallel_bench, speedup_cross_check, BenchRecord, ParallelBench, SpeedupCheck,
};
pub use claims::{closed_forms, ClaimCheck, ClosedForms, LoadBalance};
pub use cost::{encode_xors_per_data_element, program_xor_cost, update_parity_touches};
pub use critpath::{critical_path, CritPath};
pub use footprint::{
    degraded_read_footprint, encode_footprint, program_footprint, StaticFootprint,
};
pub use fused::{analyze_fused_encode, fused_xor_cost, FusedCost};
pub use optdelta::{opt_delta, OptDeltaReport, OptEntry, FUSED_RECOVERY_BATCH};
pub use peephole::{analyze_program, peephole, working_set_diagnostics, WORKING_SET_BUDGET_BYTES};
pub use report::{
    analyze_layout, AnalysisReport, EncodeAnalysis, RecoveryAnalysis, UpdateAnalysis,
    FUSED_ANALYSIS_BATCH,
};
