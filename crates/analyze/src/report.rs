//! The analyzer driver: one [`AnalysisReport`] per layout.
//!
//! [`analyze_layout`] compiles the layout's encode program and every
//! 2-column recovery program, runs the cost / footprint / critical-path /
//! peephole passes over them, and checks the measurements against the
//! paper's closed forms ([`crate::claims`]). The report renders both as
//! human-readable text ([`fmt::Display`]) and as machine-readable JSON
//! ([`AnalysisReport::to_json`]) for the CI artifact.

use crate::claims::{closed_forms, ClaimCheck, LoadBalance};
use crate::cost::{encode_xors_per_data_element, program_xor_cost, update_parity_touches};
use crate::critpath::{critical_path, CritPath};
use crate::footprint::{degraded_read_footprint, encode_footprint, surviving_lf};
use crate::fused::{analyze_fused_encode, FusedCost};
use crate::peephole::analyze_program;
use dcode_codec::{OptConfig, XorProgram};
use dcode_core::decoder::plan_column_recovery;
use dcode_core::layout::CodeLayout;
use dcode_core::Fnv1a;
use dcode_iosim::{lf_display, load_balancing_factor};
use dcode_verify::Diagnostic;
use std::collections::BTreeSet;
use std::fmt;

/// Static analysis of the compiled full-stripe encode program.
#[derive(Clone, Debug)]
pub struct EncodeAnalysis {
    /// Ops in the compiled program.
    pub ops: usize,
    /// Dependency levels.
    pub levels: usize,
    /// XORs per data element (the paper's encoding complexity).
    pub xors_per_data_element: f64,
    /// Load-balancing factor of the parity *writes* (∞ for dedicated
    /// parity disks).
    pub write_lf: f64,
    /// Load-balancing factor of reads + writes combined.
    pub combined_lf: f64,
    /// Level-structure summary and parallel speedup bound.
    pub crit: CritPath,
}

/// Static analysis aggregated over every 2-column recovery program.
#[derive(Clone, Debug)]
pub struct RecoveryAnalysis {
    /// Number of 2-column erasure pairs analyzed (`disks choose 2`).
    pub plans: usize,
    /// XORs per lost element, averaged over all pairs (the paper's
    /// decoding complexity), measured on the compiled programs.
    pub xors_per_lost_element: f64,
    /// Deepest level structure any recovery program needed.
    pub max_levels: usize,
}

/// The paper's update-complexity metric.
#[derive(Clone, Debug)]
pub struct UpdateAnalysis {
    /// Average parity elements touched by a one-element update.
    pub avg: f64,
    /// Worst-case parity elements touched.
    pub max: usize,
}

/// Everything the analyzer derived for one layout.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Code display name.
    pub code: String,
    /// The construction prime.
    pub p: usize,
    /// Array width in disks.
    pub disks: usize,
    /// The compiled encode program's content fingerprint
    /// ([`XorProgram::fingerprint`]: FNV-1a over grid shape + flat
    /// arrays) — ties this report to the exact artifact it analyzed, and
    /// is the same key the schedule cache memoizes fused programs under.
    pub program_fingerprint: u64,
    /// Order-sensitive fingerprint of the optimizer pipeline in effect
    /// (the default [`OptConfig`]) — the same value the schedule cache
    /// keys its compiled artifacts by, so a pipeline change visibly
    /// invalidates both the cache and this report.
    pub pipeline_fingerprint: u64,
    /// The pipeline's passes in run order: (name, per-pass fingerprint).
    /// A pass's fingerprint covers its name *and* implementation
    /// version, so a logic change shows up even when the name does not.
    pub pipeline: Vec<(String, u64)>,
    /// Fingerprint of the whole report's identity: FNV-1a over the
    /// program fingerprint and the pipeline fingerprint. Changing either
    /// the compiled artifact or the optimizer pipeline changes this.
    pub report_fingerprint: u64,
    /// Encode-side analysis.
    pub encode: EncodeAnalysis,
    /// Recovery-side analysis.
    pub recovery: RecoveryAnalysis,
    /// Update-side analysis.
    pub update: UpdateAnalysis,
    /// Fused-batch cost accounting (at [`FUSED_ANALYSIS_BATCH`] stripes).
    pub fused: FusedCost,
    /// Average read LF over surviving disks for a full-stripe degraded
    /// read, averaged over every single failed column.
    pub degraded_avg_lf: f64,
    /// Closed-form claims checked against the measurements (empty for
    /// layouts outside the registry).
    pub claims: Vec<ClaimCheck>,
    /// Lint findings over the encode program and every recovery program.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// `true` when no lint fired and every claim held.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.claims.iter().all(|c| c.pass)
    }

    /// Render as a single JSON object (hand-rolled: the workspace vendors
    /// no JSON library). Infinite load factors serialize as `"inf"`.
    pub fn to_json(&self) -> String {
        let claims: Vec<String> = self
            .claims
            .iter()
            .map(|c| {
                format!(
                    "{{\"name\": \"{}\", \"formula\": \"{}\", \"expected\": {}, \"actual\": {}, \"pass\": {}}}",
                    esc(&c.name),
                    esc(&c.formula),
                    jf(c.expected),
                    jf(c.actual),
                    c.pass
                )
            })
            .collect();
        let diags: Vec<String> = self
            .diagnostics
            .iter()
            .map(|d| format!("\"{}\"", esc(&d.to_string())))
            .collect();
        let pipeline: Vec<String> = self
            .pipeline
            .iter()
            .map(|(name, fp)| {
                format!(
                    "{{\"name\": \"{}\", \"fingerprint\": \"{fp:#018x}\"}}",
                    esc(name)
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"code\": \"{code}\", \"p\": {p}, \"disks\": {disks}, ",
                "\"program_fingerprint\": \"{fp:#018x}\", ",
                "\"pipeline_fingerprint\": \"{plfp:#018x}\", ",
                "\"report_fingerprint\": \"{rfp:#018x}\", ",
                "\"pipeline\": [{pipeline}], ",
                "\"encode\": {{\"ops\": {ops}, \"levels\": {levels}, ",
                "\"xors_per_data_element\": {exde}, \"write_lf\": {wlf}, ",
                "\"combined_lf\": {clf}, \"total_work\": {tw}, ",
                "\"critical_path_work\": {cw}, \"max_width\": {mw}, ",
                "\"speedup_bound\": {sb}}}, ",
                "\"recovery\": {{\"plans\": {plans}, ",
                "\"xors_per_lost_element\": {xle}, \"max_levels\": {ml}}}, ",
                "\"update\": {{\"avg\": {uavg}, \"max\": {umax}}}, ",
                "\"fused\": {{\"batch\": {fbatch}, \"xor_cost\": {fcost}, ",
                "\"single_xor_cost\": {fsingle}, ",
                "\"total_source_reads\": {freads}, ",
                "\"distinct_source_blocks\": {fblocks}, ",
                "\"max_reads_per_block\": {fmax}}}, ",
                "\"degraded_avg_lf\": {dlf}, ",
                "\"claims\": [{claims}], \"diagnostics\": [{diags}], ",
                "\"clean\": {clean}}}"
            ),
            code = esc(&self.code),
            p = self.p,
            disks = self.disks,
            fp = self.program_fingerprint,
            plfp = self.pipeline_fingerprint,
            rfp = self.report_fingerprint,
            pipeline = pipeline.join(", "),
            ops = self.encode.ops,
            levels = self.encode.levels,
            exde = jf(self.encode.xors_per_data_element),
            wlf = jf(self.encode.write_lf),
            clf = jf(self.encode.combined_lf),
            tw = self.encode.crit.total_work,
            cw = self.encode.crit.critical_path_work,
            mw = self.encode.crit.max_width,
            sb = jf(self.encode.crit.speedup_bound),
            plans = self.recovery.plans,
            xle = jf(self.recovery.xors_per_lost_element),
            ml = self.recovery.max_levels,
            uavg = jf(self.update.avg),
            umax = self.update.max,
            fbatch = self.fused.batch,
            fcost = self.fused.xor_cost,
            fsingle = self.fused.single_xor_cost,
            freads = self.fused.total_source_reads,
            fblocks = self.fused.distinct_source_blocks,
            fmax = self.fused.max_reads_per_block,
            dlf = jf(self.degraded_avg_lf),
            claims = claims.join(", "),
            diags = diags.join(", "),
            clean = self.is_clean(),
        )
    }
}

fn jf(v: f64) -> String {
    if v.is_infinite() {
        "\"inf\"".to_string()
    } else {
        format!("{v:.6}")
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} p={} ({} disks), encode program {:#018x}, report {:#018x}",
            self.code, self.p, self.disks, self.program_fingerprint, self.report_fingerprint
        )?;
        writeln!(
            f,
            "  pipeline: {} ({:#018x})",
            if self.pipeline.is_empty() {
                "(no passes)".to_string()
            } else {
                self.pipeline
                    .iter()
                    .map(|(name, _)| name.as_str())
                    .collect::<Vec<_>>()
                    .join(" -> ")
            },
            self.pipeline_fingerprint,
        )?;
        writeln!(
            f,
            "  encode:   {} ops in {} level(s), {:.4} XORs/element, write LF {:.2}, combined LF {:.2}",
            self.encode.ops,
            self.encode.levels,
            self.encode.xors_per_data_element,
            lf_display(self.encode.write_lf),
            lf_display(self.encode.combined_lf),
        )?;
        writeln!(
            f,
            "  parallel: total work {}, critical path {}, width {}, speedup bound x{:.2}",
            self.encode.crit.total_work,
            self.encode.crit.critical_path_work,
            self.encode.crit.max_width,
            self.encode.crit.speedup_bound,
        )?;
        writeln!(
            f,
            "  recovery: {} two-column plans, {:.4} XORs/lost element, deepest {} level(s)",
            self.recovery.plans, self.recovery.xors_per_lost_element, self.recovery.max_levels,
        )?;
        writeln!(
            f,
            "  update:   {:.4} avg / {} max parity touches; degraded-read LF {:.2} (surviving disks)",
            self.update.avg,
            self.update.max,
            lf_display(self.degraded_avg_lf),
        )?;
        writeln!(
            f,
            "  fused:    batch {} -> {} XORs ({} single), {} reads over {} blocks, max {} reads/block",
            self.fused.batch,
            self.fused.xor_cost,
            self.fused.single_xor_cost,
            self.fused.total_source_reads,
            self.fused.distinct_source_blocks,
            self.fused.max_reads_per_block,
        )?;
        for c in &self.claims {
            writeln!(f, "  claim     {c}")?;
        }
        for d in &self.diagnostics {
            writeln!(f, "  lint      {d}")?;
        }
        write!(
            f,
            "  verdict:  {}",
            if self.is_clean() {
                "clean"
            } else {
                "NOT CLEAN"
            }
        )
    }
}

/// Batch shape the report's fused-cost pass uses. Any shape proves the
/// linearity claim (the fuser is shape-uniform; the exhaustive batch grid
/// lives in `crate::fused`'s tests).
pub const FUSED_ANALYSIS_BATCH: usize = 4;

/// Run every static pass over `layout` and check the paper's claims.
///
/// # Panics
/// Panics if some 2-column erasure is unrecoverable — i.e. only call this
/// on layouts that pass MDS verification (every registry code does; run
/// `dcode-verify` first on custom specs).
pub fn analyze_layout(layout: &CodeLayout) -> AnalysisReport {
    let grid = layout.grid();
    let disks = layout.disks();
    let encode_prog = XorProgram::compile_encode(layout);

    // The optimizer pipeline this report is tied to: the default config,
    // the same one the schedule cache runs over everything it compiles.
    let pipeline_cfg = OptConfig::default();
    let pipeline_fingerprint = pipeline_cfg.fingerprint();
    let pipeline: Vec<(String, u64)> = pipeline_cfg
        .passes()
        .iter()
        .map(|pass| (pass.name().to_string(), pass.fingerprint()))
        .collect();
    let report_fingerprint = {
        let mut h = Fnv1a::new();
        h.word(encode_prog.fingerprint());
        h.word(pipeline_fingerprint);
        h.finish()
    };

    // Encode pass.
    let fp = encode_footprint(layout, &encode_prog);
    let write_lf = load_balancing_factor(&fp.writes);
    let combined_lf = load_balancing_factor(&fp.combined());
    let crit = critical_path(&encode_prog);
    let encode = EncodeAnalysis {
        ops: encode_prog.op_count(),
        levels: encode_prog.level_count(),
        xors_per_data_element: encode_xors_per_data_element(layout, &encode_prog),
        write_lf,
        combined_lf,
        crit,
    };
    let encode_outputs: BTreeSet<usize> = (0..encode_prog.op_count())
        .map(|op| encode_prog.op_target(op))
        .collect();
    let mut diagnostics = analyze_program(&encode_prog, &encode_outputs);

    // Recovery pass: every 2-column erasure.
    let mut plans = 0usize;
    let mut total_xors = 0usize;
    let mut total_lost = 0usize;
    let mut max_levels = 0usize;
    for c1 in 0..disks {
        for c2 in c1 + 1..disks {
            let plan = plan_column_recovery(layout, &[c1, c2])
                .expect("analyze_layout assumes a verified-MDS layout");
            let prog = XorProgram::compile_plan(grid, &plan);
            plans += 1;
            total_xors += program_xor_cost(&prog);
            total_lost += plan.erased.len();
            max_levels = max_levels.max(prog.level_count());
            let outputs: BTreeSet<usize> = plan.erased.iter().map(|&c| grid.index(c)).collect();
            diagnostics.extend(analyze_program(&prog, &outputs));
        }
    }
    let recovery = RecoveryAnalysis {
        plans,
        xors_per_lost_element: total_xors as f64 / total_lost as f64,
        max_levels,
    };

    // Update pass.
    let (avg, max) = update_parity_touches(layout);
    let update = UpdateAnalysis { avg, max };

    // Fused-batch pass: the bulk fast path's program must cost exactly
    // batch × the single-stripe program — zero XOR-count regression from
    // fusing — and must not amplify any block's read fan-out.
    let fused = analyze_fused_encode(layout, FUSED_ANALYSIS_BATCH);

    // Degraded-read pass: average surviving-disk read LF over every
    // single failed column.
    let mut lf_sum = 0.0;
    for failed in 0..disks {
        let dfp = degraded_read_footprint(layout, failed);
        lf_sum += surviving_lf(&dfp.reads, failed);
    }
    let degraded_avg_lf = lf_sum / disks as f64;

    // Claim table. The first two are artifact-vs-artifact and hold for
    // any layout; the rest compare against the paper's closed forms.
    let mut claims = Vec::new();
    claims.push(ClaimCheck::check(
        "fused encode XORs (batch x single)",
        "B x single-stripe XORs",
        (fused.batch * fused.single_xor_cost) as f64,
        fused.xor_cost as f64,
    ));
    claims.push(ClaimCheck::check(
        "fused max reads per source block",
        "single-stripe fan-out",
        fused.single_max_reads_per_block as f64,
        fused.max_reads_per_block as f64,
    ));
    if let Some(forms) = closed_forms(layout.name(), layout.prime()) {
        claims.push(ClaimCheck::check(
            "fused encode XORs per data element",
            forms.encode_formula,
            forms.encode_per_element,
            fused.xor_cost as f64 / (fused.batch * layout.data_len()) as f64,
        ));
        claims.push(ClaimCheck::check(
            "encode XORs per data element",
            forms.encode_formula,
            forms.encode_per_element,
            encode.xors_per_data_element,
        ));
        claims.push(ClaimCheck::check(
            "encode dependency levels",
            "levels",
            forms.encode_levels as f64,
            encode.levels as f64,
        ));
        match forms.balance {
            LoadBalance::BalancedCombined => {
                claims.push(ClaimCheck::check("encode write LF", "1", 1.0, write_lf));
                claims.push(ClaimCheck::check(
                    "encode combined LF",
                    "1",
                    1.0,
                    combined_lf,
                ));
            }
            LoadBalance::BalancedWrites => {
                claims.push(ClaimCheck::check("encode write LF", "1", 1.0, write_lf));
            }
            LoadBalance::DedicatedParity => {
                claims.push(ClaimCheck::check(
                    "encode write LF",
                    "inf (dedicated parity disks)",
                    f64::INFINITY,
                    write_lf,
                ));
            }
        }
        if let Some(expected) = forms.decode_per_lost {
            claims.push(ClaimCheck::check(
                "decode XORs per lost element",
                forms.decode_formula,
                expected,
                recovery.xors_per_lost_element,
            ));
        }
        claims.push(ClaimCheck::check(
            "update parity touches (avg)",
            forms.update_formula,
            forms.update_avg,
            update.avg,
        ));
        claims.push(ClaimCheck::check(
            "update parity touches (max)",
            "max",
            forms.update_max as f64,
            update.max as f64,
        ));
    }

    AnalysisReport {
        code: layout.name().to_string(),
        p: layout.prime(),
        disks,
        program_fingerprint: encode_prog.fingerprint(),
        pipeline_fingerprint,
        pipeline,
        report_fingerprint,
        encode,
        recovery,
        update,
        fused,
        degraded_avg_lf,
        claims,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;

    #[test]
    fn every_registry_code_is_clean_at_every_sweep_prime() {
        // The acceptance bar: all 7 codes x p in {5,7,11,13,17} pass every
        // claim with zero lint findings.
        for p in [5usize, 7, 11, 13, 17] {
            for layout in all_codes(p) {
                let report = analyze_layout(&layout);
                assert!(report.is_clean(), "{} p={p}:\n{report}", layout.name());
                assert!(!report.claims.is_empty(), "{} p={p}", layout.name());
            }
        }
    }

    #[test]
    fn dcode_headline_numbers_at_p7() {
        let report = analyze_layout(&dcode_core::dcode::dcode(7).unwrap());
        assert!((report.encode.xors_per_data_element - 1.6).abs() < 1e-9);
        assert!((report.encode.write_lf - 1.0).abs() < 1e-9);
        assert!((report.encode.combined_lf - 1.0).abs() < 1e-9);
        assert!((report.recovery.xors_per_lost_element - 4.0).abs() < 1e-9);
        assert_eq!(report.encode.levels, 1);
    }

    #[test]
    fn fingerprint_is_stable_and_program_dependent() {
        let d7 = analyze_layout(&dcode_core::dcode::dcode(7).unwrap());
        let d7b = analyze_layout(&dcode_core::dcode::dcode(7).unwrap());
        let d11 = analyze_layout(&dcode_core::dcode::dcode(11).unwrap());
        assert_eq!(d7.program_fingerprint, d7b.program_fingerprint);
        assert_ne!(d7.program_fingerprint, d11.program_fingerprint);
        assert_eq!(d7.report_fingerprint, d7b.report_fingerprint);
        assert_ne!(d7.report_fingerprint, d11.report_fingerprint);
    }

    #[test]
    fn report_carries_the_default_pipeline_and_keys_on_it() {
        use dcode_codec::{OptConfig, OptPass};
        let report = analyze_layout(&dcode_core::dcode::dcode(7).unwrap());
        assert_eq!(
            report.pipeline_fingerprint,
            OptConfig::default().fingerprint()
        );
        let names: Vec<&str> = report.pipeline.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            OptPass::ALL.map(OptPass::name).to_vec(),
            "report pipeline must mirror the default pass order"
        );
        for (pass, (_, fp)) in OptPass::ALL.iter().zip(&report.pipeline) {
            assert_eq!(pass.fingerprint(), *fp);
        }
        // The report fingerprint must move when either input moves.
        assert_ne!(report.report_fingerprint, report.program_fingerprint);
        assert_ne!(report.report_fingerprint, report.pipeline_fingerprint);
    }

    #[test]
    fn json_is_structurally_sound() {
        let report = analyze_layout(&dcode_baselines::rdp::rdp(7).unwrap());
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        // RDP has dedicated parity: the write LF serializes as "inf".
        assert!(json.contains("\"write_lf\": \"inf\""));
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"pipeline_fingerprint\": \"0x"));
        assert!(json.contains("\"report_fingerprint\": \"0x"));
        assert!(json.contains("\"name\": \"dead-op-elim\""));
    }
}
