//! Cost accounting for the bulk encoder's fused batch programs.
//!
//! The fused fast path claims two things the paper's complexity story
//! depends on: fusing is *free* in XOR terms (a batch of `B` stripes
//! costs exactly `B ×` the single-stripe closed form — no regression
//! hidden in the interleaving), and it does not amplify per-block memory
//! traffic (each source block is read by exactly as many ops as in the
//! single-stripe program; the tile-major executor then turns those reads
//! into one streaming pass per block per batch). Both are checked
//! statically here, over the artifact the hot path actually replays.

use dcode_codec::{FusedProgram, XorProgram};
use dcode_core::layout::CodeLayout;
use std::collections::BTreeMap;

/// Total XORs a fused program executes: `sources − 1` per op, same
/// accounting as [`crate::cost::program_xor_cost`].
pub fn fused_xor_cost(fused: &FusedProgram) -> usize {
    (0..fused.op_count())
        .map(|op| fused.op_sources(op).len().saturating_sub(1))
        .sum()
}

/// Static source-touch accounting for one fused batch program.
#[derive(Clone, Debug)]
pub struct FusedCost {
    /// Stripes fused into the program.
    pub batch: usize,
    /// XORs the fused program executes.
    pub xor_cost: usize,
    /// XORs the single-stripe program executes (the `×B` baseline).
    pub single_xor_cost: usize,
    /// Source operands across all fused ops (block reads issued).
    pub total_source_reads: usize,
    /// Distinct virtual blocks appearing as sources.
    pub distinct_source_blocks: usize,
    /// Most reads any one virtual block receives — must equal the
    /// single-stripe program's fan-out (fusing must not amplify traffic).
    pub max_reads_per_block: usize,
    /// The single-stripe program's own max reads per block.
    pub single_max_reads_per_block: usize,
}

fn max_multiplicity<I: Iterator<Item = usize>>(sources: I) -> (usize, usize, usize) {
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    let mut total = 0usize;
    for s in sources {
        *counts.entry(s).or_insert(0) += 1;
        total += 1;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    (total, counts.len(), max)
}

/// Fuse `layout`'s compiled encode program at `batch` and account for it.
pub fn analyze_fused_encode(layout: &CodeLayout, batch: usize) -> FusedCost {
    let single = XorProgram::compile_encode(layout);
    let fused = FusedProgram::fuse(&single, batch);
    let (_, _, single_max) = max_multiplicity(
        (0..single.op_count()).flat_map(|op| single.op_sources(op).iter().map(|&s| s as usize)),
    );
    let (total, distinct, max) = max_multiplicity(
        (0..fused.op_count()).flat_map(|op| fused.op_sources(op).iter().map(|&s| s as usize)),
    );
    FusedCost {
        batch,
        xor_cost: fused_xor_cost(&fused),
        single_xor_cost: crate::cost::program_xor_cost(&single),
        total_source_reads: total,
        distinct_source_blocks: distinct,
        max_reads_per_block: max,
        single_max_reads_per_block: single_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;

    #[test]
    fn fused_cost_is_exactly_batch_times_single_for_every_code() {
        for p in [5usize, 7, 11, 13] {
            for layout in all_codes(p) {
                for batch in [1usize, 2, 4, 16] {
                    let c = analyze_fused_encode(&layout, batch);
                    assert_eq!(
                        c.xor_cost,
                        batch * c.single_xor_cost,
                        "{} p={p} batch={batch}",
                        layout.name()
                    );
                    assert_eq!(
                        c.max_reads_per_block,
                        c.single_max_reads_per_block,
                        "{} p={p} batch={batch}: fusing amplified per-block reads",
                        layout.name()
                    );
                }
            }
        }
    }

    #[test]
    fn source_reads_scale_linearly_and_blocks_stay_distinct_per_stripe() {
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let one = analyze_fused_encode(&layout, 1);
        let eight = analyze_fused_encode(&layout, 8);
        assert_eq!(eight.total_source_reads, 8 * one.total_source_reads);
        assert_eq!(eight.distinct_source_blocks, 8 * one.distinct_source_blocks);
    }

    #[test]
    fn dcode_p7_touch_counts_match_the_equations() {
        // D-Code p=7: every data block feeds exactly its anti-diagonal and
        // horse parity — 2 reads per block, batch-independent.
        let c = analyze_fused_encode(&dcode_core::dcode::dcode(7).unwrap(), 5);
        assert_eq!(c.max_reads_per_block, 2);
        assert_eq!(c.single_max_reads_per_block, 2);
    }
}
