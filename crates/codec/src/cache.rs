//! [`ScheduleCache`] — memoized compiled XOR schedules.
//!
//! Compiling an [`XorProgram`] from a layout or a [`RecoveryPlan`] walks
//! `BTreeMap`s, allocates index arrays, and (for recovery) may run the
//! GF(2) planner's Gaussian fallback. None of that belongs on a
//! steady-state path: an array encoding a stream of stripes, or serving
//! degraded reads off the same dead disk ten thousand times, uses the
//! *same* program every time. The cache memoizes:
//!
//! * the full-stripe **encode** program per layout;
//! * the full **column-recovery** program (and its symbolic plan) per
//!   `(layout, erased column set)`;
//! * **subprograms** per `(layout, erased column set, missing cell set)` —
//!   the unit `ResilientArray` replays for partial degraded reads — along
//!   with the sorted list of surviving cells each one reads.
//!
//! Keys use [`CodeLayout::fingerprint`] (a structural hash computed once at
//! build time), so lookups never deep-compare equation lists. Entries live
//! in small linear-scan vectors: with a handful of codes and at most
//! `C(p, 2)` erasure patterns, scanning a short `Vec` beats hashing, and —
//! more importantly — a cache *hit allocates nothing*. Programs and read
//! lists are handed out as [`Arc`]s; two hits for the same key return
//! pointer-identical programs (`Arc::ptr_eq`), which the regression tests
//! use as a deterministic "did not recompile" proof.
//!
//! Compilation happens *outside* the cache lock, so a panic in the
//! compiler (or a poisoned-free miss racing another thread) can never
//! poison the cache; the loser of an insert race simply adopts the
//! winner's entry. Compiled programs still run the compiler's
//! `debug_assertions` hazard check at compile time — caching reuses the
//! checked artifact, it does not bypass the check — and `dcode-verify`
//! proves cached programs equivalent to their generator matrices in CI.
//!
//! Every program the cache emits flows through the verified optimizer
//! pipeline ([`crate::opt`]) on its compile miss and carries the
//! resulting [`OptCertificate`] — the machine-checkable proof that the
//! shipped program is GF(2)-equivalent to the direct compile and no cost
//! metric regressed (delta 0 for the registry codes, which are already
//! at the paper's closed-form optimum). Cache keys include the
//! pipeline's [`OptConfig::fingerprint`], so changing the pass pipeline
//! via [`ScheduleCache::set_pipeline`] invalidates memoized programs:
//! stale entries are not evicted, they simply stop matching — switching
//! back to a previous pipeline re-hits its old entries. The pipeline
//! config lives behind its own named mutex (`codec.cache.optcfg`) that
//! is released before `entries`/`fused` are taken, so the lock-order
//! discipline model-checked by `dcode-race` is unchanged.

use crate::fused::FusedProgram;
use crate::opt::{optimize, OptCertificate, OptConfig};
use crate::schedule::XorProgram;
use dcode_core::decoder::{plan_recovery, RecoveryPlan, Unrecoverable};
use dcode_core::grid::{Cell, Grid};
use dcode_core::layout::CodeLayout;
use minisim::sync::{Mutex, MutexGuard};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Upper bound on distinct missing-cell subprograms cached per erasure
/// pattern. Partial degraded reads generate one subprogram per distinct
/// wanted-cell subset; a pathological access pattern could mint
/// exponentially many, so past the cap the subprogram is compiled and
/// returned uncached (correct, just not memoized).
pub const MAX_SUBPROGRAMS_PER_ERASURE: usize = 64;

/// Upper bound on distinct fused batch shapes cached per underlying
/// program. Bulk encode batches cluster on a handful of sizes (the
/// server's queue-drain batch, the CLI's stripe count, the bench's 16),
/// but a caller feeding arbitrary batch sizes could mint one fused
/// program per size; past the cap the fusion is compiled and returned
/// uncached (correct — fusing is linear in the output — just not
/// memoized), mirroring [`MAX_SUBPROGRAMS_PER_ERASURE`].
pub const MAX_FUSED_SHAPES_PER_PROGRAM: usize = 8;

/// Hit/miss counters for one [`ScheduleCache`]. A "hit" is a lookup served
/// entirely from memoized state; a "miss" compiled something.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Lookups served without compiling.
    pub hits: u64,
    /// Lookups that compiled (and usually inserted) a program.
    pub misses: u64,
}

/// A compiled recovery handed out by the cache: the program to replay, the
/// symbolic plan it was lowered from (for I/O accounting), and the sorted
/// surviving cells the program reads (the disk-read footprint).
#[derive(Clone, Debug)]
pub struct CompiledRecovery {
    /// The lowered XOR program; replay with [`XorProgram::run`] or the
    /// pooled executor.
    pub program: Arc<XorProgram>,
    /// The symbolic plan the program was compiled from.
    pub plan: Arc<RecoveryPlan>,
    /// Surviving cells the program reads, ascending. Equals
    /// `plan.surviving_reads()` without the per-call `BTreeSet`.
    pub reads: Arc<Vec<Cell>>,
    /// Cost-delta certificate from the optimizer pipeline run on the
    /// compile miss that produced `program`.
    pub certificate: Arc<OptCertificate>,
}

/// One cached missing-cell subprogram under an erasure pattern.
struct SubEntry {
    /// The missing cells this subprogram reconstructs, ascending.
    missing: Vec<Cell>,
    compiled: CompiledRecovery,
}

/// Everything cached for one erased-column set of one layout.
struct ErasureEntry {
    /// Erased columns, ascending.
    cols: Vec<usize>,
    /// The full column-recovery plan (all cells of all erased columns).
    plan: Arc<RecoveryPlan>,
    /// The full plan compiled, built on first demand.
    full: Option<CompiledRecovery>,
    subs: Vec<SubEntry>,
}

/// Everything cached for one layout under one optimizer pipeline.
struct LayoutEntry {
    fingerprint: u64,
    grid: Grid,
    /// [`OptConfig::fingerprint`] of the pipeline the entry's programs
    /// went through — part of the key, so a pipeline change invalidates.
    opt_fp: u64,
    encode: Option<(Arc<XorProgram>, Arc<OptCertificate>)>,
    erasures: Vec<ErasureEntry>,
}

/// One memoized fused batch program, keyed by the *program* content
/// fingerprint (not the layout's): `encode_stripes_pooled` receives a bare
/// `Arc<XorProgram>` and must find its fusion without the layout in hand.
struct FusedEntry {
    fingerprint: u64,
    grid: Grid,
    opt_fp: u64,
    batch: usize,
    program: Arc<FusedProgram>,
    certificate: Arc<OptCertificate>,
}

/// Memoized compiled schedules; see the module docs. Cheap to construct —
/// embed one per long-lived object (as `ResilientArray` does) or share the
/// process-wide [`global`] instance.
///
/// The entries mutex is a named `minisim` facade lock: production calls
/// go straight to `std::sync`, while `dcode-race` model-checks the
/// compile-outside-lock race-adopt protocol on the same code.
pub struct ScheduleCache {
    entries: Mutex<Vec<LayoutEntry>>,
    /// Fused batch programs, keyed by `(program fingerprint, grid,
    /// pipeline fingerprint, batch)`. A separate short vector (and lock)
    /// from `entries`: the key space is program identity, not layout
    /// identity, and the bulk path should never contend with
    /// recovery-plan lookups.
    fused: Mutex<Vec<FusedEntry>>,
    /// The optimizer pipeline every compile miss runs. Read (and the
    /// guard dropped) *before* `entries`/`fused` are locked — the three
    /// locks never nest, keeping the race-checked lock discipline flat.
    opt: Mutex<Arc<OptConfig>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ScheduleCache {
    fn default() -> Self {
        ScheduleCache::new()
    }
}

impl ScheduleCache {
    /// An empty cache.
    pub fn new() -> Self {
        ScheduleCache {
            entries: Mutex::named("codec.cache.entries", Vec::new()),
            fused: Mutex::named("codec.cache.fused", Vec::new()),
            opt: Mutex::named("codec.cache.optcfg", Arc::new(OptConfig::default())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The optimizer pipeline currently applied to compile misses.
    pub fn pipeline(&self) -> Arc<OptConfig> {
        match self.opt.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Replace the optimizer pipeline. Memoized programs are keyed by the
    /// pipeline fingerprint, so entries compiled under a different
    /// pipeline stop matching (they are not evicted: switching back to a
    /// previous pipeline re-hits its old entries).
    pub fn set_pipeline(&self, config: OptConfig) {
        let config = Arc::new(config);
        match self.opt.lock() {
            Ok(mut g) => *g = config,
            Err(poisoned) => *poisoned.into_inner() = config,
        }
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Saturating counter bump: a chaos soak (or any process hot enough to
    /// wrap a `u64`) pins the counter at `u64::MAX` instead of silently
    /// restarting the statistics from zero.
    fn bump(counter: &AtomicU64) {
        let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_add(1))
        });
    }

    /// The compiled (and certified-optimized) full-stripe encode program
    /// for `layout`. First call per layout compiles; every later call
    /// returns the same `Arc` (verify with [`Arc::ptr_eq`]).
    pub fn encode_program(&self, layout: &CodeLayout) -> Arc<XorProgram> {
        self.encode_program_certified(layout).0
    }

    /// [`ScheduleCache::encode_program`] together with its cost-delta
    /// certificate.
    pub fn encode_program_certified(
        &self,
        layout: &CodeLayout,
    ) -> (Arc<XorProgram>, Arc<OptCertificate>) {
        let config = self.pipeline();
        let opt_fp = config.fingerprint();
        let (fp, grid) = (layout.fingerprint(), layout.grid());
        {
            let entries = self.lock();
            if let Some(pair) =
                find_layout(&entries, fp, grid, opt_fp).and_then(|e| e.encode.clone())
            {
                Self::bump(&self.hits);
                return pair;
            }
        }
        Self::bump(&self.misses);
        let optimized = optimize(&XorProgram::compile_encode(layout), None, &config);
        let pair = (Arc::new(optimized.program), Arc::new(optimized.certificate));
        let mut entries = self.lock();
        let entry = find_or_insert_layout(&mut entries, fp, grid, opt_fp);
        entry.encode.get_or_insert(pair).clone()
    }

    /// The full column-recovery plan for erasing `cols` (ascending) of
    /// `layout`, memoized. Errors (three or more columns) are not cached.
    pub fn column_plan(
        &self,
        layout: &CodeLayout,
        cols: &[usize],
    ) -> Result<Arc<RecoveryPlan>, Unrecoverable> {
        let opt_fp = self.pipeline().fingerprint();
        self.erasure_plan(layout, cols.iter().copied(), opt_fp)
    }

    /// The compiled full column-recovery program for erasing `cols`
    /// (ascending) of `layout`, with its plan, read footprint, and
    /// cost-delta certificate. All erased cells are outputs, so the
    /// optimizer must certify delta 0 here for registry codes.
    pub fn column_program(
        &self,
        layout: &CodeLayout,
        cols: &[usize],
    ) -> Result<CompiledRecovery, Unrecoverable> {
        let config = self.pipeline();
        let opt_fp = config.fingerprint();
        let (fp, grid) = (layout.fingerprint(), layout.grid());
        let cols_iter = cols.iter().copied();
        {
            let entries = self.lock();
            if let Some(compiled) = find_erasure(&entries, fp, grid, opt_fp, cols_iter.clone())
                .and_then(|e| e.full.clone())
            {
                Self::bump(&self.hits);
                return Ok(compiled);
            }
        }
        let plan = self.erasure_plan(layout, cols_iter.clone(), opt_fp)?;
        Self::bump(&self.misses);
        let compiled = compile_recovery(grid, &plan, None, &config);
        let mut entries = self.lock();
        let entry = find_erasure_mut(&mut entries, fp, grid, opt_fp, cols_iter)
            .expect("erasure_plan inserted the entry");
        Ok(entry.full.get_or_insert(compiled).clone())
    }

    /// The compiled subprogram reconstructing exactly `missing` under the
    /// erasure of `erased_cols` (an ascending iterator of column indices;
    /// pass a slice's `iter().copied()` or iterate a `BTreeSet` directly).
    /// `missing` must be a subset of the erased columns' cells. Steady-state
    /// hits allocate nothing and return pointer-identical programs.
    pub fn recovery_subprogram<I>(
        &self,
        layout: &CodeLayout,
        erased_cols: I,
        missing: &BTreeSet<Cell>,
    ) -> Result<CompiledRecovery, Unrecoverable>
    where
        I: Iterator<Item = usize> + Clone,
    {
        let config = self.pipeline();
        let opt_fp = config.fingerprint();
        let (fp, grid) = (layout.fingerprint(), layout.grid());
        {
            let entries = self.lock();
            if let Some(entry) = find_erasure(&entries, fp, grid, opt_fp, erased_cols.clone()) {
                if let Some(sub) = entry
                    .subs
                    .iter()
                    .find(|s| s.missing.iter().eq(missing.iter()))
                {
                    Self::bump(&self.hits);
                    return Ok(sub.compiled.clone());
                }
            }
        }
        let plan = self.erasure_plan(layout, erased_cols.clone(), opt_fp)?;
        Self::bump(&self.misses);
        // Only the wanted cells are observable outputs of a subprogram:
        // the remaining recovered intermediates are scratch the optimizer
        // may renumber or eliminate.
        let outputs: BTreeSet<usize> = missing.iter().map(|&c| grid.index(c)).collect();
        let compiled = compile_recovery(
            grid,
            &Arc::new(plan.subplan_for(missing)),
            Some(&outputs),
            &config,
        );
        let mut entries = self.lock();
        let entry = find_erasure_mut(&mut entries, fp, grid, opt_fp, erased_cols)
            .expect("erasure_plan inserted the entry");
        if let Some(sub) = entry
            .subs
            .iter()
            .find(|s| s.missing.iter().eq(missing.iter()))
        {
            return Ok(sub.compiled.clone()); // lost an insert race; adopt
        }
        if entry.subs.len() < MAX_SUBPROGRAMS_PER_ERASURE {
            entry.subs.push(SubEntry {
                missing: missing.iter().copied().collect(),
                compiled: compiled.clone(),
            });
        }
        Ok(compiled)
    }

    /// Memoized symbolic plan for an ascending erased-column iterator;
    /// ensures the `ErasureEntry` exists on success.
    fn erasure_plan<I>(
        &self,
        layout: &CodeLayout,
        cols: I,
        opt_fp: u64,
    ) -> Result<Arc<RecoveryPlan>, Unrecoverable>
    where
        I: Iterator<Item = usize> + Clone,
    {
        let (fp, grid) = (layout.fingerprint(), layout.grid());
        {
            let entries = self.lock();
            if let Some(entry) = find_erasure(&entries, fp, grid, opt_fp, cols.clone()) {
                return Ok(entry.plan.clone());
            }
        }
        let col_vec: Vec<usize> = cols.collect();
        debug_assert!(
            col_vec.windows(2).all(|w| w[0] < w[1]),
            "erased columns must be strictly ascending"
        );
        let erased: BTreeSet<Cell> = col_vec.iter().flat_map(|&c| grid.column(c)).collect();
        let plan = Arc::new(plan_recovery(layout, &erased)?);
        let mut entries = self.lock();
        let entry = find_or_insert_layout(&mut entries, fp, grid, opt_fp);
        if let Some(existing) = entry
            .erasures
            .iter()
            .find(|e| e.cols.iter().copied().eq(col_vec.iter().copied()))
        {
            return Ok(existing.plan.clone());
        }
        entry.erasures.push(ErasureEntry {
            cols: col_vec,
            plan: plan.clone(),
            full: None,
            subs: Vec::new(),
        });
        Ok(plan)
    }

    /// The fused batch program replaying `single` over `batch` stripes at
    /// once, memoized by `(program fingerprint, grid, batch)`. Follows the
    /// cache's compile-outside-lock protocol: a miss fuses without holding
    /// the lock and the loser of an insert race adopts the winner's entry,
    /// so steady-state bulk encodes get pointer-identical programs
    /// ([`Arc::ptr_eq`]) and a hit allocates nothing. Past
    /// [`MAX_FUSED_SHAPES_PER_PROGRAM`] distinct batch sizes per program,
    /// the fusion is returned uncached.
    pub fn fused_program(&self, single: &Arc<XorProgram>, batch: usize) -> Arc<FusedProgram> {
        self.fused_program_certified(single, batch).0
    }

    /// [`ScheduleCache::fused_program`] together with its certificate:
    /// `before` is the single-stripe cost × batch, `after` the fused
    /// measurement, and equivalence is discharged structurally (the
    /// fusion must be exactly `batch` shifted copies of `single`).
    pub fn fused_program_certified(
        &self,
        single: &Arc<XorProgram>,
        batch: usize,
    ) -> (Arc<FusedProgram>, Arc<OptCertificate>) {
        let opt_fp = self.pipeline().fingerprint();
        let (fp, grid) = (single.fingerprint(), single.grid());
        {
            let entries = self.lock_fused();
            if let Some(e) = find_fused(&entries, fp, grid, opt_fp, batch) {
                Self::bump(&self.hits);
                return (e.program.clone(), e.certificate.clone());
            }
        }
        Self::bump(&self.misses);
        let fused = FusedProgram::fuse(single, batch);
        let certificate = Arc::new(OptCertificate::for_fusion(single, &fused, opt_fp));
        let compiled = Arc::new(fused);
        let mut entries = self.lock_fused();
        if let Some(e) = find_fused(&entries, fp, grid, opt_fp, batch) {
            return (e.program.clone(), e.certificate.clone()); // lost an insert race; adopt
        }
        let shapes = entries
            .iter()
            .filter(|e| e.fingerprint == fp && e.grid == grid && e.opt_fp == opt_fp)
            .count();
        if shapes < MAX_FUSED_SHAPES_PER_PROGRAM {
            entries.push(FusedEntry {
                fingerprint: fp,
                grid,
                opt_fp,
                batch,
                program: compiled.clone(),
                certificate: certificate.clone(),
            });
        }
        (compiled, certificate)
    }

    /// Convenience: the fused form of `layout`'s encode program for a
    /// `batch`-stripe bulk encode (one lookup for the single program, one
    /// for the fusion — both steady-state hits).
    pub fn fused_encode_program(&self, layout: &CodeLayout, batch: usize) -> Arc<FusedProgram> {
        let single = self.encode_program(layout);
        self.fused_program(&single, batch)
    }

    fn lock(&self) -> MutexGuard<'_, Vec<LayoutEntry>> {
        // The lock is only ever held for lookups and inserts — never across
        // compilation or user code — so a poisoned mutex is unreachable
        // without a panic inside `Vec`/`Arc` themselves. Recover the guard
        // rather than poisoning every future encode on the array.
        match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_fused(&self) -> MutexGuard<'_, Vec<FusedEntry>> {
        // Same reasoning as `lock`: held only for lookups and inserts.
        match self.fused.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Process-wide shared cache: the default for free functions like
/// [`encode`](crate::encode::encode) that have no object to hang a cache
/// off. Never dropped.
pub fn global() -> &'static ScheduleCache {
    static GLOBAL: OnceLock<ScheduleCache> = OnceLock::new();
    GLOBAL.get_or_init(ScheduleCache::new)
}

/// Hit/miss counters of the process-wide [`global`] cache — the number the
/// `dcode status` command surfaces.
pub fn schedule_stats() -> CacheStats {
    global().stats()
}

fn find_fused(
    entries: &[FusedEntry],
    fp: u64,
    grid: Grid,
    opt_fp: u64,
    batch: usize,
) -> Option<&FusedEntry> {
    entries
        .iter()
        .find(|e| e.fingerprint == fp && e.grid == grid && e.opt_fp == opt_fp && e.batch == batch)
}

fn find_layout(entries: &[LayoutEntry], fp: u64, grid: Grid, opt_fp: u64) -> Option<&LayoutEntry> {
    entries
        .iter()
        .find(|e| e.fingerprint == fp && e.grid == grid && e.opt_fp == opt_fp)
}

fn find_or_insert_layout(
    entries: &mut Vec<LayoutEntry>,
    fp: u64,
    grid: Grid,
    opt_fp: u64,
) -> &mut LayoutEntry {
    if let Some(i) = entries
        .iter()
        .position(|e| e.fingerprint == fp && e.grid == grid && e.opt_fp == opt_fp)
    {
        return &mut entries[i];
    }
    entries.push(LayoutEntry {
        fingerprint: fp,
        grid,
        opt_fp,
        encode: None,
        erasures: Vec::new(),
    });
    entries.last_mut().expect("just pushed")
}

fn find_erasure<I>(
    entries: &[LayoutEntry],
    fp: u64,
    grid: Grid,
    opt_fp: u64,
    cols: I,
) -> Option<&ErasureEntry>
where
    I: Iterator<Item = usize> + Clone,
{
    find_layout(entries, fp, grid, opt_fp)?
        .erasures
        .iter()
        .find(|e| e.cols.iter().copied().eq(cols.clone()))
}

fn find_erasure_mut<I>(
    entries: &mut [LayoutEntry],
    fp: u64,
    grid: Grid,
    opt_fp: u64,
    cols: I,
) -> Option<&mut ErasureEntry>
where
    I: Iterator<Item = usize> + Clone,
{
    entries
        .iter_mut()
        .find(|e| e.fingerprint == fp && e.grid == grid && e.opt_fp == opt_fp)?
        .erasures
        .iter_mut()
        .find(|e| e.cols.iter().copied().eq(cols.clone()))
}

/// Lower a plan through the optimizer pipeline and precompute its sorted
/// surviving-read list. `outputs` designates the observable blocks
/// (`None` = every target, the right choice for full column recoveries).
fn compile_recovery(
    grid: Grid,
    plan: &Arc<RecoveryPlan>,
    outputs: Option<&BTreeSet<usize>>,
    config: &OptConfig,
) -> CompiledRecovery {
    let optimized = optimize(&XorProgram::compile_plan(grid, plan), outputs, config);
    let reads: Vec<Cell> = plan.surviving_reads().into_iter().collect();
    CompiledRecovery {
        program: Arc::new(optimized.program),
        plan: plan.clone(),
        reads: Arc::new(reads),
        certificate: Arc::new(optimized.certificate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_naive;
    use crate::stripe::Stripe;
    use dcode_baselines::registry::all_codes;
    use dcode_core::dcode::dcode;

    #[test]
    fn encode_program_is_compiled_once() {
        let cache = ScheduleCache::new();
        let layout = dcode(7).unwrap();
        let a = cache.encode_program(&layout);
        let b = cache.encode_program(&layout);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must not recompile");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // A structurally different layout gets its own program.
        let other = dcode(5).unwrap();
        let c = cache.encode_program(&other);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn rebuilt_equal_layout_shares_the_cached_program() {
        // The fingerprint, not object identity, keys the cache: an
        // independently-built but identical layout hits.
        let cache = ScheduleCache::new();
        let a = cache.encode_program(&dcode(7).unwrap());
        let b = cache.encode_program(&dcode(7).unwrap());
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn column_program_hits_and_matches_direct_compile() {
        let cache = ScheduleCache::new();
        for layout in all_codes(7) {
            let cols = [1usize, 3];
            let first = cache.column_program(&layout, &cols).unwrap();
            let second = cache.column_program(&layout, &cols).unwrap();
            assert!(Arc::ptr_eq(&first.program, &second.program));
            assert!(Arc::ptr_eq(&first.plan, &second.plan));
            // Cached artifacts equal a from-scratch compile.
            let plan = dcode_core::decoder::plan_column_recovery(&layout, &cols).unwrap();
            let direct = XorProgram::compile_plan(layout.grid(), &plan);
            assert_eq!(*first.program, direct, "{}", layout.name());
            let direct_reads: Vec<Cell> = plan.surviving_reads().into_iter().collect();
            assert_eq!(*first.reads, direct_reads, "{}", layout.name());
        }
    }

    #[test]
    fn subprogram_steady_state_is_pointer_identical() {
        let cache = ScheduleCache::new();
        let layout = dcode(7).unwrap();
        let grid = layout.grid();
        let missing: BTreeSet<Cell> = [grid.column(2).next().unwrap()].into_iter().collect();
        let cols = BTreeSet::from([2usize, 4]);
        let a = cache
            .recovery_subprogram(&layout, cols.iter().copied(), &missing)
            .unwrap();
        let hits_before = cache.stats().hits;
        let b = cache
            .recovery_subprogram(&layout, cols.iter().copied(), &missing)
            .unwrap();
        assert!(Arc::ptr_eq(&a.program, &b.program));
        assert!(Arc::ptr_eq(&a.reads, &b.reads));
        assert_eq!(cache.stats().hits, hits_before + 1);
        // The subprogram actually recovers the missing cell.
        let data: Vec<u8> = (0..layout.data_len() * 8).map(|i| (i * 37) as u8).collect();
        let mut stripe = Stripe::from_data(&layout, 8, &data);
        encode_naive(&layout, &mut stripe);
        let golden = stripe.clone();
        stripe.erase_columns(&[2, 4]);
        a.program.run(&mut stripe);
        for &cell in &missing {
            assert_eq!(stripe.snapshot(cell), golden.snapshot(cell));
        }
    }

    #[test]
    fn distinct_missing_sets_get_distinct_subprograms() {
        let cache = ScheduleCache::new();
        let layout = dcode(7).unwrap();
        let grid = layout.grid();
        let cols = [0usize, 1];
        let mut col_cells = grid.column(0);
        let m1: BTreeSet<Cell> = [col_cells.next().unwrap()].into_iter().collect();
        let m2: BTreeSet<Cell> = [col_cells.next().unwrap()].into_iter().collect();
        let a = cache
            .recovery_subprogram(&layout, cols.iter().copied(), &m1)
            .unwrap();
        let b = cache
            .recovery_subprogram(&layout, cols.iter().copied(), &m2)
            .unwrap();
        assert!(!Arc::ptr_eq(&a.program, &b.program));
    }

    #[test]
    fn subprogram_cap_still_returns_correct_programs() {
        let cache = ScheduleCache::new();
        let layout = dcode(13).unwrap();
        let grid = layout.grid();
        let cols = [0usize, 1];
        // Mint more distinct missing sets than the cap by taking every
        // prefix of the erased cells.
        let erased: Vec<Cell> = grid.column(0).chain(grid.column(1)).collect();
        let mut minted = 0usize;
        let mut missing = BTreeSet::new();
        for &cell in &erased {
            missing.insert(cell);
            let compiled = cache
                .recovery_subprogram(&layout, cols.iter().copied(), &missing)
                .unwrap();
            assert!(compiled.program.op_count() >= missing.len());
            minted += 1;
        }
        assert!(minted > 1);
    }

    #[test]
    fn unrecoverable_erasures_error_and_are_not_cached() {
        let cache = ScheduleCache::new();
        let layout = dcode(5).unwrap();
        let cols = [0usize, 1, 2];
        assert!(cache.column_plan(&layout, &cols).is_err());
        assert!(cache.column_program(&layout, &cols).is_err());
        let missing: BTreeSet<Cell> = layout.grid().column(0).collect();
        assert!(cache
            .recovery_subprogram(&layout, cols.iter().copied(), &missing)
            .is_err());
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let cache = ScheduleCache::new();
        let layout = dcode(5).unwrap();
        let _ = cache.encode_program(&layout); // miss
        cache.hits.store(u64::MAX, Ordering::Relaxed);
        let _ = cache.encode_program(&layout); // hit at the ceiling
        let _ = cache.encode_program(&layout); // and again
        assert_eq!(cache.stats().hits, u64::MAX, "hit counter must saturate");
        cache.misses.store(u64::MAX, Ordering::Relaxed);
        let _ = cache.encode_program(&dcode(7).unwrap()); // miss at the ceiling
        assert_eq!(cache.stats().misses, u64::MAX, "miss counter must saturate");
    }

    #[test]
    fn fused_program_steady_state_is_pointer_identical() {
        let cache = ScheduleCache::new();
        let layout = dcode(7).unwrap();
        let a = cache.fused_encode_program(&layout, 4);
        let hits_before = cache.stats().hits;
        let b = cache.fused_encode_program(&layout, 4);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must not re-fuse");
        assert!(cache.stats().hits >= hits_before + 2); // single + fused hit
                                                        // A different batch shape is a different program...
        let c = cache.fused_encode_program(&layout, 8);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.batch(), 8);
        // ...and the cached fusion equals a from-scratch fuse.
        let single = cache.encode_program(&layout);
        assert_eq!(*a, FusedProgram::fuse(&single, 4));
    }

    #[test]
    fn fused_shape_cap_still_returns_correct_programs() {
        let cache = ScheduleCache::new();
        let layout = dcode(5).unwrap();
        let single = cache.encode_program(&layout);
        for batch in 1..=(MAX_FUSED_SHAPES_PER_PROGRAM + 3) {
            let fused = cache.fused_program(&single, batch);
            assert_eq!(fused.batch(), batch);
            assert_eq!(fused.op_count(), single.op_count() * batch);
        }
        // Shapes past the cap are compiled fresh each call (uncached) but
        // stay equal; cached shapes stay pointer-identical.
        let cached = cache.fused_program(&single, 1);
        assert!(Arc::ptr_eq(&cached, &cache.fused_program(&single, 1)));
        let over = MAX_FUSED_SHAPES_PER_PROGRAM + 2;
        let x = cache.fused_program(&single, over);
        let y = cache.fused_program(&single, over);
        assert!(!Arc::ptr_eq(&x, &y), "past the cap nothing is memoized");
        assert_eq!(*x, *y);
    }

    #[test]
    fn global_cache_is_shared() {
        let a = global().encode_program(&dcode(5).unwrap());
        let b = global().encode_program(&dcode(5).unwrap());
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn every_cache_artifact_carries_a_holding_certificate() {
        let cache = ScheduleCache::new();
        for layout in all_codes(7) {
            let (_, cert) = cache.encode_program_certified(&layout);
            assert!(cert.holds(), "{} encode", layout.name());
            assert!(
                cert.zero_delta(),
                "{} encode must be delta 0",
                layout.name()
            );
            let full = cache.column_program(&layout, &[0, 1]).unwrap();
            assert!(full.certificate.holds(), "{} recovery", layout.name());
            assert!(
                full.certificate.zero_delta(),
                "{} recovery must be delta 0",
                layout.name()
            );
            let missing: BTreeSet<Cell> = [layout.grid().column(0).next().unwrap()]
                .into_iter()
                .collect();
            let sub = cache
                .recovery_subprogram(&layout, [0usize, 1].iter().copied(), &missing)
                .unwrap();
            assert!(sub.certificate.holds(), "{} subprogram", layout.name());
            let single = cache.encode_program(&layout);
            let (_, fused_cert) = cache.fused_program_certified(&single, 4);
            assert!(fused_cert.holds(), "{} fused", layout.name());
            assert!(
                fused_cert.zero_delta(),
                "{} fused must be delta 0",
                layout.name()
            );
            assert_eq!(fused_cert.batch, 4);
        }
    }

    #[test]
    fn pipeline_change_invalidates_and_switching_back_rehits() {
        let cache = ScheduleCache::new();
        let layout = dcode(7).unwrap();
        let default_fp = cache.pipeline().fingerprint();
        let (a, cert_a) = cache.encode_program_certified(&layout);
        assert_eq!(cert_a.pipeline_fingerprint, default_fp);
        let full_a = cache.column_program(&layout, &[0, 1]).unwrap();

        // A different pipeline is a different key: both lookups recompile.
        cache.set_pipeline(OptConfig::empty());
        let empty_fp = cache.pipeline().fingerprint();
        assert_ne!(default_fp, empty_fp);
        let (b, cert_b) = cache.encode_program_certified(&layout);
        assert!(!Arc::ptr_eq(&a, &b), "pipeline change must recompile");
        assert_eq!(cert_b.pipeline_fingerprint, empty_fp);
        assert!(
            cert_b.holds(),
            "empty pipeline is a trivially-held identity"
        );
        let full_b = cache.column_program(&layout, &[0, 1]).unwrap();
        assert!(!Arc::ptr_eq(&full_a.program, &full_b.program));

        // Stale entries are not evicted: switching back re-hits them.
        cache.set_pipeline(OptConfig::full());
        let (c, cert_c) = cache.encode_program_certified(&layout);
        assert!(Arc::ptr_eq(&a, &c), "old pipeline entries must survive");
        assert_eq!(cert_c.pipeline_fingerprint, default_fp);
        let full_c = cache.column_program(&layout, &[0, 1]).unwrap();
        assert!(Arc::ptr_eq(&full_a.program, &full_c.program));
    }

    #[test]
    fn subprogram_outputs_free_intermediates_for_the_optimizer() {
        // A single wanted cell under a two-column erasure leaves every
        // other recovered cell as scratch; the certificate must still
        // hold (≤ on every metric) and the subprogram must reproduce the
        // wanted bytes exactly.
        let cache = ScheduleCache::new();
        for layout in all_codes(11) {
            let grid = layout.grid();
            let missing: BTreeSet<Cell> = [grid.column(0).nth(2).unwrap()].into_iter().collect();
            let sub = cache
                .recovery_subprogram(&layout, [0usize, 1].iter().copied(), &missing)
                .unwrap();
            assert!(sub.certificate.holds(), "{}", layout.name());
            let data: Vec<u8> = (0..layout.data_len() * 8)
                .map(|i| (i * 131) as u8)
                .collect();
            let mut stripe = Stripe::from_data(&layout, 8, &data);
            encode_naive(&layout, &mut stripe);
            let golden = stripe.clone();
            stripe.erase_columns(&[0, 1]);
            sub.program.run(&mut stripe);
            for &cell in &missing {
                assert_eq!(
                    stripe.snapshot(cell),
                    golden.snapshot(cell),
                    "{}",
                    layout.name()
                );
            }
        }
    }
}
