//! In-memory stripe storage.
//!
//! A [`Stripe`] holds one stripe's worth of element blocks, indexed by grid
//! position. Blocks are independent heap allocations so encode/decode can
//! hand out disjoint mutable borrows naturally; for the block sizes RAID
//! systems use (4 KiB – 1 MiB) the allocation layout is irrelevant to
//! throughput — the XOR kernels stream whole blocks either way.

use dcode_core::grid::{Cell, Grid};
use dcode_core::layout::CodeLayout;

/// One stripe of element blocks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Stripe {
    grid: Grid,
    block_size: usize,
    blocks: Vec<Box<[u8]>>,
}

impl Stripe {
    /// An all-zero stripe shaped for `layout`.
    pub fn zeroed(layout: &CodeLayout, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let grid = layout.grid();
        Stripe {
            grid,
            block_size,
            blocks: (0..grid.len())
                .map(|_| vec![0u8; block_size].into_boxed_slice())
                .collect(),
        }
    }

    /// Build a stripe from a flat byte payload laid across the layout's
    /// logical data order. `data` must be at most `data_len × block_size`
    /// bytes; the tail is zero-padded. Parity blocks start zeroed — call
    /// [`crate::encode::encode`] to fill them.
    pub fn from_data(layout: &CodeLayout, block_size: usize, data: &[u8]) -> Self {
        let capacity = layout.data_len() * block_size;
        assert!(
            data.len() <= capacity,
            "payload of {} bytes exceeds stripe capacity {capacity}",
            data.len()
        );
        let mut stripe = Stripe::zeroed(layout, block_size);
        for (i, chunk) in data.chunks(block_size).enumerate() {
            let cell = layout.logical_to_cell(i);
            stripe.block_mut(cell)[..chunk.len()].copy_from_slice(chunk);
        }
        stripe
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Grid shape this stripe was built for.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Immutable view of one element block.
    pub fn block(&self, cell: Cell) -> &[u8] {
        &self.blocks[self.grid.index(cell)]
    }

    /// Mutable view of one element block.
    pub fn block_mut(&mut self, cell: Cell) -> &mut [u8] {
        &mut self.blocks[self.grid.index(cell)]
    }

    /// Extract the stripe's data payload in logical order.
    pub fn data_bytes(&self, layout: &CodeLayout) -> Vec<u8> {
        let mut out = Vec::with_capacity(layout.data_len() * self.block_size);
        for &cell in layout.data_cells() {
            out.extend_from_slice(self.block(cell));
        }
        out
    }

    /// Overwrite every block of the given columns with zeros, simulating
    /// disk failures. (Zeros rather than garbage so that forgotten decode
    /// steps surface as deterministic test failures.)
    pub fn erase_columns(&mut self, cols: &[usize]) {
        for &col in cols {
            assert!(col < self.grid.cols, "column {col} out of range");
            for r in 0..self.grid.rows {
                self.block_mut(Cell::new(r, col)).fill(0);
            }
        }
    }

    /// Overwrite the blocks of the given cells with zeros.
    pub fn erase_cells(&mut self, cells: &[Cell]) {
        for &cell in cells {
            self.block_mut(cell).fill(0);
        }
    }

    /// Take a snapshot of one block (owned copy).
    pub fn snapshot(&self, cell: Cell) -> Vec<u8> {
        self.block(cell).to_vec()
    }

    /// Immutable view of one block by linear grid index
    /// (`grid.index(cell)`, row-major). The schedule executor addresses
    /// blocks this way so compiled programs never touch `Cell` math.
    pub(crate) fn block_at(&self, index: usize) -> &[u8] {
        &self.blocks[index]
    }

    /// Detach one block, leaving an empty placeholder behind. Together with
    /// [`Stripe::put_block_at`] this lets an executor hold a mutable target
    /// block while reading source blocks through `&self`. This is entirely
    /// safe code: `std::mem::take` swaps in `Box::<[u8]>::default()`, and a
    /// zero-length boxed slice is a dangling-but-valid pointer the allocator
    /// is never asked for, so detaching allocates nothing and copies
    /// nothing. A schedule that mistakenly reads a detached block trips the
    /// XOR kernels' length asserts rather than observing stale data.
    pub(crate) fn take_block_at(&mut self, index: usize) -> Box<[u8]> {
        std::mem::take(&mut self.blocks[index])
    }

    /// Return a block detached by [`Stripe::take_block_at`].
    pub(crate) fn put_block_at(&mut self, index: usize, block: Box<[u8]>) {
        debug_assert_eq!(block.len(), self.block_size);
        debug_assert!(self.blocks[index].is_empty(), "slot already occupied");
        self.blocks[index] = block;
    }

    /// Detach the stripe's entire block vector, leaving it empty. The pooled
    /// executor moves the storage into an `Arc` so `'static` worker jobs can
    /// read source blocks, then puts it back with
    /// [`Stripe::restore_storage`] — ownership round-trips, nothing is
    /// copied or reallocated. A stripe with detached storage trips the
    /// length asserts in every accessor rather than reading stale data.
    pub(crate) fn take_storage(&mut self) -> Vec<Box<[u8]>> {
        std::mem::take(&mut self.blocks)
    }

    /// Reinstall storage detached by [`Stripe::take_storage`].
    pub(crate) fn restore_storage(&mut self, blocks: Vec<Box<[u8]>>) {
        debug_assert!(self.blocks.is_empty(), "storage already present");
        debug_assert_eq!(blocks.len(), self.grid.len());
        self.blocks = blocks;
    }

    /// Whether the stripe's block storage is attached (false for a
    /// [`Stripe::placeholder`] or while [`Stripe::take_storage`] holds the
    /// blocks). The bulk encoder's fused-path eligibility check uses this
    /// instead of letting a detached stripe trip kernel length asserts
    /// deep inside a worker job.
    pub(crate) fn has_storage(&self) -> bool {
        self.blocks.len() == self.grid.len()
    }

    /// A shape-compatible stripe with zero-length storage — the
    /// allocation-free placeholder `encode_stripes` swaps in while a
    /// stripe's real storage is owned by a worker job.
    pub(crate) fn placeholder(grid: Grid, block_size: usize) -> Self {
        Stripe {
            grid,
            block_size,
            blocks: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::dcode;

    #[test]
    fn from_data_roundtrips() {
        let l = dcode(5).unwrap();
        let payload: Vec<u8> = (0..l.data_len() * 8).map(|i| (i * 37) as u8).collect();
        let s = Stripe::from_data(&l, 8, &payload);
        assert_eq!(s.data_bytes(&l), payload);
    }

    #[test]
    fn short_payload_zero_padded() {
        let l = dcode(5).unwrap();
        let s = Stripe::from_data(&l, 8, &[0xFF; 4]);
        let data = s.data_bytes(&l);
        assert_eq!(&data[..4], &[0xFF; 4]);
        assert!(data[4..].iter().all(|&b| b == 0));
    }

    #[test]
    fn erase_columns_zeroes_blocks() {
        let l = dcode(5).unwrap();
        let payload: Vec<u8> = (1..=l.data_len() as u32 * 8).map(|i| i as u8).collect();
        let mut s = Stripe::from_data(&l, 8, &payload);
        s.erase_columns(&[2]);
        for r in 0..5 {
            assert!(s.block(Cell::new(r, 2)).iter().all(|&b| b == 0));
        }
        assert!(s.block(Cell::new(0, 0)).iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic]
    fn oversized_payload_rejected() {
        let l = dcode(5).unwrap();
        let _ = Stripe::from_data(&l, 4, &vec![0u8; l.data_len() * 4 + 1]);
    }
}
