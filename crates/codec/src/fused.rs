//! Fused multi-stripe encode programs.
//!
//! [`bulk::encode_stripes`](crate::bulk::encode_stripes) used to replay
//! one [`XorProgram`] N independent times — op-major within each stripe.
//! On a machine whose last-level cache cannot hold a stripe, op-major
//! order streams every data block from DRAM once *per parity equation
//! that reads it* (≈2× for every RAID-6 code), which is exactly the
//! bulk/level throughput gap BENCH_parallel.json measured.
//!
//! A [`FusedProgram`] compiles a batch of `B` stripes into **one**
//! program over a *virtual block space* of `B × grid.len()` indices
//! (stripe `s`'s block `i` lives at `s * grid.len() + i`), and its
//! executor replays that program **tile-major**: for each stripe, for
//! each tile-sized byte range, it runs *every* op of *every* dependency
//! level over just that range before advancing. A tile of every block in
//! the stripe fits in cache simultaneously (grid.len() × tile bytes — a
//! few MiB at p=13 / 16 KiB), so each source byte is pulled from DRAM
//! exactly once per batch no matter how many equations read it.
//!
//! Why the reordering is legal: XOR is elementwise — byte `k` of a target
//! depends only on byte `k` of its sources — so restricting every op to
//! one byte range and running all levels over that range preserves the
//! program's data dependencies exactly (level `l+1` ops read level-`l`
//! targets only within the already-written range). Stripes occupy
//! disjoint virtual index ranges, so per-stripe execution order is free.
//! `dcode-verify` proves each fused program GF(2)-equivalent to `B`
//! copies of the single-stripe generator, and `dcode-analyze` asserts
//! its op count is exactly `B ×` the single-stripe closed form.
//!
//! The interleaving scheme is **stripe-major within each level**: fused
//! level `l` lists stripe 0's level-`l` ops, then stripe 1's, and so on.
//! That keeps every per-stripe op range contiguous (the executor and the
//! pooled partitioner slice it with arithmetic, no search) while
//! preserving the invariant that a level is hazard-free — distinct
//! stripes cannot alias, and each stripe's slice is hazard-free because
//! the single-stripe level was.

use crate::schedule::XorProgram;
use crate::stripe::Stripe;
use crate::tile::fused_tile_bytes;
use crate::xor::xor_tile;
use dcode_core::grid::Grid;

/// One compiled program encoding a whole batch of stripes; see the module
/// docs for the virtual index space and interleaving scheme. Pure data
/// (`Send + Sync + Clone`), produced by [`FusedProgram::fuse`] and
/// memoized by the [`ScheduleCache`](crate::cache::ScheduleCache) under
/// `(program fingerprint, batch)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusedProgram {
    batch: usize,
    grid: Grid,
    targets: Vec<u32>,
    src_off: Vec<u32>,
    sources: Vec<u32>,
    level_off: Vec<u32>,
}

impl FusedProgram {
    /// Fuse `batch` replays of `single` into one interleaved program.
    /// Linear in the output size; the cache makes even that a one-time
    /// cost per `(program, batch)` shape.
    pub fn fuse(single: &XorProgram, batch: usize) -> Self {
        assert!(batch > 0, "cannot fuse an empty batch");
        let grid = single.grid();
        let stride = grid.len() as u32;
        let ops = single.op_count();
        let mut targets = Vec::with_capacity(ops * batch);
        let mut src_off = Vec::with_capacity(ops * batch + 1);
        let mut sources = Vec::with_capacity(single.source_count() * batch);
        let mut level_off = Vec::with_capacity(single.level_count() + 1);
        src_off.push(0);
        level_off.push(0);
        for lv in 0..single.level_count() {
            for s in 0..batch {
                let base = s as u32 * stride;
                for op in single.level_ops(lv) {
                    targets.push(single.op_target(op) as u32 + base);
                    sources.extend(single.op_sources(op).iter().map(|&src| src + base));
                    src_off.push(sources.len() as u32);
                }
            }
            level_off.push(targets.len() as u32);
        }
        FusedProgram {
            batch,
            grid,
            targets,
            src_off,
            sources,
            level_off,
        }
    }

    /// Stripes per batch this program was fused for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Grid shape of each stripe in the batch.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Total ops across the batch (`batch ×` the single-stripe count).
    pub fn op_count(&self) -> usize {
        self.targets.len()
    }

    /// Total source-block reads across the batch.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of dependency levels (equal to the single program's).
    pub fn level_count(&self) -> usize {
        self.level_off.len() - 1
    }

    /// Virtual block index op `op` writes (`stripe * grid.len() + block`).
    pub fn op_target(&self, op: usize) -> usize {
        self.targets[op] as usize
    }

    /// Virtual block indices op `op` reads, in XOR order.
    pub fn op_sources(&self, op: usize) -> &[u32] {
        &self.sources[self.src_off[op] as usize..self.src_off[op + 1] as usize]
    }

    /// The ops of dependency level `level`, as a range of op indices.
    pub fn level_ops(&self, level: usize) -> std::ops::Range<usize> {
        self.level_off[level] as usize..self.level_off[level + 1] as usize
    }

    /// Rebuild a fused program from its flat arrays. As with
    /// [`XorProgram::from_raw_parts`], only *structural* shape is asserted;
    /// semantic invariants (in-range indices, stripe-major interleaving)
    /// are deliberately not enforced so `dcode-verify`'s mutation
    /// self-tests can construct known-bad fusions — e.g. a cross-stripe
    /// source swap — and prove the symbolic checker rejects them.
    pub fn from_raw_parts(
        batch: usize,
        grid: Grid,
        targets: Vec<u32>,
        src_off: Vec<u32>,
        sources: Vec<u32>,
        level_off: Vec<u32>,
    ) -> Self {
        assert!(batch > 0, "fused batch must be non-empty");
        assert_eq!(src_off.len(), targets.len() + 1, "src_off must cover ops");
        assert!(
            src_off.windows(2).all(|w| w[0] <= w[1])
                && src_off.first() == Some(&0)
                && *src_off.last().expect("non-empty") as usize == sources.len(),
            "src_off must be monotone over sources"
        );
        assert!(
            level_off.len() >= 2
                && level_off.windows(2).all(|w| w[0] <= w[1])
                && level_off.first() == Some(&0)
                && *level_off.last().expect("non-empty") as usize == targets.len(),
            "level_off must be monotone over ops"
        );
        assert!(
            level_off
                .windows(2)
                .all(|w| (w[1] - w[0]) as usize % batch == 0),
            "each fused level must hold a whole number of per-stripe groups"
        );
        FusedProgram {
            batch,
            grid,
            targets,
            src_off,
            sources,
            level_off,
        }
    }

    /// The flat arrays `(targets, src_off, sources, level_off)`, cloned
    /// out. Inverse of [`FusedProgram::from_raw_parts`]; used by the
    /// verify/analyze tooling to inspect and mutate fused programs.
    pub fn raw_parts(&self) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
        (
            self.targets.clone(),
            self.src_off.clone(),
            self.sources.clone(),
            self.level_off.clone(),
        )
    }

    /// Replay the fused program over `stripes` (which must hold exactly
    /// [`FusedProgram::batch`] stripes of this grid, storage attached)
    /// with the process's calibrated tile size. Byte-identical to running
    /// the single-stripe program over each stripe in turn.
    pub fn run(&self, stripes: &mut [Stripe]) {
        self.run_with_tile(stripes, fused_tile_bytes());
    }

    /// [`FusedProgram::run`] with an explicit tile size (bench sweeps and
    /// the differential proptests pin it; production goes through `run`).
    pub fn run_with_tile(&self, stripes: &mut [Stripe], tile_bytes: usize) {
        assert_eq!(
            stripes.len(),
            self.batch,
            "stripe count does not match the fused batch"
        );
        self.run_range_with_tile(stripes, 0, tile_bytes);
    }

    /// Replay the sub-batch `stripes`, whose first element is batch index
    /// `first` — the pooled executor's entry point: each worker job owns a
    /// contiguous stripe range and replays only that range's ops. Stripes
    /// occupy disjoint virtual index ranges, so ranges compose to exactly
    /// [`FusedProgram::run`].
    pub(crate) fn run_range_with_tile(
        &self,
        stripes: &mut [Stripe],
        first: usize,
        tile_bytes: usize,
    ) {
        assert!(
            first + stripes.len() <= self.batch,
            "stripe range exceeds the fused batch"
        );
        for (j, stripe) in stripes.iter_mut().enumerate() {
            self.run_stripe(first + j, stripe, tile_bytes);
        }
    }

    /// Tile-major replay of one stripe's slice of the fused program: for
    /// each tile range, every level's ops for this stripe run before the
    /// range advances, so each source block's tile is read while still
    /// cache-resident from its first touch.
    fn run_stripe(&self, s: usize, stripe: &mut Stripe, tile_bytes: usize) {
        assert_eq!(
            stripe.grid(),
            self.grid,
            "stripe shape does not match the fused program"
        );
        let base = (s * self.grid.len()) as u32;
        let len = stripe.block_size();
        let tile = tile_bytes.max(8);
        let mut start = 0;
        loop {
            let end = (start + tile).min(len);
            for lv in 0..self.level_count() {
                let ops = self.level_ops(lv);
                let per_stripe = ops.len() / self.batch;
                let lo = ops.start + s * per_stripe;
                for op in lo..lo + per_stripe {
                    let target = (self.targets[op] - base) as usize;
                    let mut out = stripe.take_block_at(target);
                    let (slo, shi) = (self.src_off[op] as usize, self.src_off[op + 1] as usize);
                    xor_tile(
                        &mut out[start..end],
                        &self.sources[slo..shi],
                        (start, end),
                        &|i: u32| stripe.block_at((i - base) as usize),
                    );
                    stripe.put_block_at(target, out);
                }
            }
            if end >= len {
                break;
            }
            start = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::verify_parities;
    use dcode_baselines::registry::all_codes;

    fn payload(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 55) as u8
            })
            .collect()
    }

    fn batch_of(layout: &dcode_core::layout::CodeLayout, bs: usize, n: usize) -> Vec<Stripe> {
        (0..n)
            .map(|k| {
                Stripe::from_data(
                    layout,
                    bs,
                    &payload(layout.data_len() * bs, (k as u64 + 1) * 77),
                )
            })
            .collect()
    }

    #[test]
    fn fused_matches_sequential_replay_for_every_code() {
        for p in [5usize, 7] {
            for layout in all_codes(p) {
                let single = XorProgram::compile_encode(&layout);
                for batch in [1usize, 2, 5] {
                    let mut expect = batch_of(&layout, 48, batch);
                    for s in &mut expect {
                        single.run(s);
                    }
                    let fused = FusedProgram::fuse(&single, batch);
                    assert_eq!(fused.op_count(), single.op_count() * batch);
                    assert_eq!(fused.source_count(), single.source_count() * batch);
                    assert_eq!(fused.level_count(), single.level_count());
                    let mut got = batch_of(&layout, 48, batch);
                    fused.run(&mut got);
                    assert_eq!(got, expect, "{} p={p} batch={batch}", layout.name());
                    assert!(got.iter().all(|s| verify_parities(&layout, s)));
                }
            }
        }
    }

    #[test]
    fn tile_size_never_changes_bytes() {
        // Odd block sizes against tiles smaller, equal, and larger than the
        // block, including non-multiples — the tile loop's boundary math.
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let single = XorProgram::compile_encode(&layout);
        let fused = FusedProgram::fuse(&single, 3);
        let bs = 1037; // odd: wide groups + u64 + scalar tails all hit
        let mut expect = batch_of(&layout, bs, 3);
        for s in &mut expect {
            single.run(s);
        }
        for tile in [1usize, 8, 100, 1024, 1037, 4096] {
            let mut got = batch_of(&layout, bs, 3);
            fused.run_with_tile(&mut got, tile);
            assert_eq!(got, expect, "tile={tile}");
        }
    }

    #[test]
    fn multi_level_codes_respect_dependencies_across_tiles() {
        // RDP's diagonal parity reads row parity (≥2 levels): tile-major
        // execution must still feed level 1 the level-0 bytes of the same
        // tile range, not stale ones.
        let layout = dcode_baselines::rdp::rdp(11).unwrap();
        let single = XorProgram::compile_encode(&layout);
        assert!(single.level_count() >= 2);
        let fused = FusedProgram::fuse(&single, 4);
        let bs = 600; // several tiles at tile=128
        let mut expect = batch_of(&layout, bs, 4);
        for s in &mut expect {
            single.run(s);
        }
        let mut got = batch_of(&layout, bs, 4);
        fused.run_with_tile(&mut got, 128);
        assert_eq!(got, expect);
    }

    #[test]
    fn run_range_composes_to_the_full_batch() {
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let single = XorProgram::compile_encode(&layout);
        let fused = FusedProgram::fuse(&single, 6);
        let mut expect = batch_of(&layout, 32, 6);
        for s in &mut expect {
            single.run(s);
        }
        let mut got = batch_of(&layout, 32, 6);
        let (a, rest) = got.split_at_mut(2);
        let (b, c) = rest.split_at_mut(3);
        fused.run_range_with_tile(b, 2, 64);
        fused.run_range_with_tile(c, 5, 64);
        fused.run_range_with_tile(a, 0, 64);
        assert_eq!(got, expect);
    }

    #[test]
    fn heterogeneous_block_sizes_within_a_batch_still_encode() {
        // The executor reads each stripe's own block size; a batch mixing
        // sizes (as an object store's tail stripe can) must stay correct.
        let layout = dcode_core::dcode::dcode(5).unwrap();
        let single = XorProgram::compile_encode(&layout);
        let fused = FusedProgram::fuse(&single, 2);
        let mut a = Stripe::from_data(&layout, 64, &payload(layout.data_len() * 64, 1));
        let mut b = Stripe::from_data(&layout, 48, &payload(layout.data_len() * 48, 2));
        let mut batch = vec![a.clone(), b.clone()];
        fused.run(&mut batch);
        single.run(&mut a);
        single.run(&mut b);
        assert_eq!(batch, vec![a, b]);
    }

    #[test]
    fn raw_parts_roundtrip() {
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let fused = FusedProgram::fuse(&XorProgram::compile_encode(&layout), 3);
        let (t, so, s, lo) = fused.raw_parts();
        let rebuilt = FusedProgram::from_raw_parts(3, fused.grid(), t, so, s, lo);
        assert_eq!(rebuilt, fused);
    }

    #[test]
    #[should_panic]
    fn wrong_batch_size_is_rejected() {
        let layout = dcode_core::dcode::dcode(5).unwrap();
        let fused = FusedProgram::fuse(&XorProgram::compile_encode(&layout), 3);
        let mut two = batch_of(&layout, 16, 2);
        fused.run(&mut two);
    }

    #[test]
    #[should_panic]
    fn ragged_level_rejected_by_raw_parts() {
        // A level whose op count is not a multiple of the batch cannot be
        // stripe-major; from_raw_parts must refuse it structurally.
        let layout = dcode_core::dcode::dcode(5).unwrap();
        let fused = FusedProgram::fuse(&XorProgram::compile_encode(&layout), 2);
        let (t, so, s, _lo) = fused.raw_parts();
        let mid = t.len() as u32 / 2 + 1; // off by one: ragged split
        let lo = vec![0, mid, t.len() as u32];
        let _ = FusedProgram::from_raw_parts(2, fused.grid(), t, so, s, lo);
    }
}
