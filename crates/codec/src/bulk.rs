//! Bulk payload encoding: split a large payload into stripes and encode
//! them through one fused, tile-major program over the persistent worker
//! pool.
//!
//! Stripes are independent, so this is embarrassingly parallel — each
//! worker job owns a disjoint chunk of the stripe vector (data-race
//! freedom by construction, per the Rayon-style idiom the HPC guides
//! recommend).
//!
//! **Pitfalls (and why this module looks the way it does):**
//!
//! * Earlier revisions spawned a fresh set of scoped threads *inside every
//!   call* — thread creation plus join cost on the order of the work
//!   itself for small batches (see `BENCH_encode.json` history). Jobs go
//!   to the parked workers of [`minipool::global`]; stripes move into
//!   jobs by ownership (a `mem::replace` with an allocation-free
//!   placeholder) rather than by copy.
//! * Replaying the per-stripe program N independent times streams every
//!   source block from DRAM once per parity equation (~2× per block),
//!   which capped bulk encode at roughly half of single-stripe level
//!   throughput (BENCH_parallel.json history). Uniform batches now
//!   compile to one [`FusedProgram`] — memoized by the
//!   [`ScheduleCache`](crate::cache::ScheduleCache) under
//!   `(program fingerprint, batch)` — and replay tile-major, touching
//!   each source block once per batch.
//! * The per-call `Vec` churn of the take/restore storage dance is gone:
//!   job buffers come from a reusable [`EncodeArena`] (thread-local for
//!   the convenience entry points; long-lived owners like
//!   `ResilientArray` and the server shard workers hold their own), so
//!   steady-state bulk encode does not allocate stripe buffers.

use crate::cache;
use crate::fused::FusedProgram;
use crate::schedule::XorProgram;
use crate::stripe::Stripe;
use crate::tile::fused_tile_bytes;
use dcode_core::decoder::Unrecoverable;
use dcode_core::layout::CodeLayout;
use minipool::WorkerPool;
use std::cell::RefCell;
use std::sync::Arc;

/// Reusable scratch for the bulk encoder: the per-job `Vec<Stripe>`
/// buffers stripes are moved into while worker jobs own them. Checking a
/// buffer out pops a recycled vector (empty, capacity intact); every
/// buffer is recycled on the way out — including across a panicking
/// replay — so a steady-state encode loop reuses the same allocations on
/// every wakeup. Cheap to construct; embed one per long-lived object (as
/// `ResilientArray` and the server shard workers do) or let the
/// convenience entry points use the thread-local instance.
#[derive(Default)]
pub struct EncodeArena {
    bufs: Vec<Vec<Stripe>>,
}

impl EncodeArena {
    /// An empty arena (no buffers until the first encode recycles some).
    pub fn new() -> Self {
        EncodeArena::default()
    }

    fn checkout(&mut self) -> Vec<Stripe> {
        self.bufs.pop().unwrap_or_default()
    }

    fn recycle(&mut self, mut buf: Vec<Stripe>) {
        buf.clear();
        self.bufs.push(buf);
    }
}

thread_local! {
    /// Arena behind the signature-stable entry points; callers that want
    /// buffer reuse across threads own an [`EncodeArena`] and call
    /// [`encode_stripes_arena`].
    static THREAD_ARENA: RefCell<EncodeArena> = RefCell::new(EncodeArena::new());
}

/// Split `payload` into as many stripes as needed (tail zero-padded) and
/// encode each. `threads = 1` runs inline; more fan out over the
/// persistent pool, clamped to the host's available parallelism.
pub fn encode_payload(
    layout: &CodeLayout,
    block_size: usize,
    payload: &[u8],
    threads: usize,
) -> Vec<Stripe> {
    let per_stripe = layout.data_len() * block_size;
    let n_stripes = payload.len().div_ceil(per_stripe).max(1);
    let mut stripes: Vec<Stripe> = (0..n_stripes)
        .map(|k| {
            let lo = k * per_stripe;
            let hi = ((k + 1) * per_stripe).min(payload.len());
            let chunk = if lo < payload.len() {
                &payload[lo..hi]
            } else {
                &[]
            };
            Stripe::from_data(layout, block_size, chunk)
        })
        .collect();
    encode_stripes(layout, &mut stripes, threads);
    stripes
}

/// Encode a slice of stripes in place, in parallel. The compiled
/// programs (single and fused) come from the global schedule cache (no
/// per-call compile) and jobs run on the global persistent pool (no
/// per-call spawns). The requested `threads` is clamped to the host's
/// available parallelism — see [`encode_stripes_pooled`] for the
/// unclamped, explicit-pool form.
pub fn encode_stripes(layout: &CodeLayout, stripes: &mut [Stripe], threads: usize) {
    let program = cache::global().encode_program(layout);
    let threads = minipool::effective_parallelism(threads);
    encode_stripes_pooled(&program, stripes, minipool::global(), threads);
}

/// Recover the same erased columns across a batch of stripes, in
/// parallel, through the fused tile-major path. The compiled (and
/// certified-optimized) column-recovery program comes from the global
/// schedule cache, and — because [`FusedProgram`] is layout-agnostic —
/// an N-stripe recovery batch fuses and executes exactly like a bulk
/// encode: one stripe-major interleaved program, each surviving block
/// streamed through cache once per batch. This is the entry point the
/// rebuild scheduler's many-stripe decode batches use.
///
/// Every stripe must have storage attached with the erased columns'
/// blocks present (their contents are ignored: recovery ops overwrite
/// first), exactly as [`crate::decode::recover_columns`] expects.
pub fn recover_stripes(
    layout: &CodeLayout,
    cols: &[usize],
    stripes: &mut [Stripe],
    threads: usize,
) -> Result<(), Unrecoverable> {
    let compiled = cache::global().column_program(layout, cols)?;
    let threads = minipool::effective_parallelism(threads);
    encode_stripes_pooled(&compiled.program, stripes, minipool::global(), threads);
    Ok(())
}

/// [`encode_stripes_arena`] with the calling thread's thread-local arena —
/// the signature-stable form for callers without a long-lived arena.
pub fn encode_stripes_pooled(
    program: &Arc<XorProgram>,
    stripes: &mut [Stripe],
    pool: &WorkerPool,
    threads: usize,
) {
    THREAD_ARENA.with(|a| {
        encode_stripes_arena(program, stripes, pool, threads, &mut a.borrow_mut());
    });
}

/// Encode stripes with an explicit program, pool, fan-out, and scratch
/// arena (fan-out not clamped to host parallelism — tests drive real pool
/// fan-out with it).
///
/// **Fused fast path:** when every stripe matches the program's grid with
/// storage attached (block sizes may differ — the tile loop reads each
/// stripe's own), the batch replays through one cached [`FusedProgram`],
/// tile-major, so each source block streams through cache exactly once
/// per batch. Anything else — a mixed-shape batch, a degraded placeholder
/// — falls back to the original per-stripe replay, preserving its exact
/// semantics (including where it panics).
///
/// **Panic safety:** a panicking replay (a malformed stripe, a corrupted
/// schedule) is caught *inside* the job so the job still hands its chunk
/// back; every chunk — encoded, partially encoded, or untouched — is
/// restored into the caller's slice (and its buffer recycled into the
/// arena) before the first panic is re-raised. Earlier revisions
/// propagated the panic straight through the pool, leaving the whole
/// slice holding the zero-length placeholder stripes from the ownership
/// swap: a caller catching the unwind (a long-lived server, a test
/// harness) would observe silent data loss. Now the slice never holds a
/// placeholder after this returns or unwinds; stripes of the panicking
/// chunk may be partially encoded, which the re-raised panic reports.
pub fn encode_stripes_arena(
    program: &Arc<XorProgram>,
    stripes: &mut [Stripe],
    pool: &WorkerPool,
    threads: usize,
    arena: &mut EncodeArena,
) {
    if stripes.is_empty() {
        return;
    }
    let threads = threads.max(1);
    let uniform = stripes
        .iter()
        .all(|s| s.grid() == program.grid() && s.has_storage());
    if uniform {
        let fused = cache::global().fused_program(program, stripes.len());
        let tile = fused_tile_bytes();
        if threads == 1 || stripes.len() == 1 {
            fused.run_with_tile(stripes, tile);
            return;
        }
        let workers = threads.min(stripes.len());
        run_chunked(
            BatchProgram::Fused(fused, tile),
            stripes,
            pool,
            workers,
            arena,
        );
        return;
    }
    if threads == 1 || stripes.len() <= 1 {
        for s in stripes.iter_mut() {
            program.run(s);
        }
        return;
    }
    let workers = threads.min(stripes.len());
    run_chunked(
        BatchProgram::PerStripe(Arc::clone(program)),
        stripes,
        pool,
        workers,
        arena,
    );
}

/// What a worker job replays over its owned chunk.
#[derive(Clone)]
enum BatchProgram {
    /// Tile-major fused replay; the chunk is the batch range starting at
    /// the job's first stripe index.
    Fused(Arc<FusedProgram>, usize),
    /// The original per-stripe replay (mixed-shape fallback).
    PerStripe(Arc<XorProgram>),
}

/// Chunk `stripes` across `workers` pool jobs by ownership and replay
/// `prog` over each chunk, with the panic-restore contract described on
/// [`encode_stripes_arena`].
fn run_chunked(
    prog: BatchProgram,
    stripes: &mut [Stripe],
    pool: &WorkerPool,
    workers: usize,
    arena: &mut EncodeArena,
) {
    let chunk = stripes.len().div_ceil(workers);
    let mut jobs = Vec::with_capacity(workers);
    for (k, part) in stripes.chunks_mut(chunk).enumerate() {
        // Move the chunk's stripes into the job (placeholder swap: no
        // block is copied or reallocated; the Vec itself is a recycled
        // arena buffer); the job returns them encoded.
        let mut owned = arena.checkout();
        owned.extend(
            part.iter_mut()
                .map(|s| std::mem::replace(s, Stripe::placeholder(s.grid(), s.block_size()))),
        );
        let prog = prog.clone();
        let first = k * chunk;
        jobs.push(move || {
            let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &prog {
                BatchProgram::Fused(fused, tile) => {
                    fused.run_range_with_tile(&mut owned, first, *tile);
                }
                BatchProgram::PerStripe(single) => {
                    for s in &mut owned {
                        single.run(s);
                    }
                }
            }))
            .err();
            (owned, panic)
        });
    }
    let done = pool.run(jobs);
    let mut first_panic = None;
    let mut slots = stripes.iter_mut();
    for (mut chunk, panic) in done {
        for encoded in chunk.drain(..) {
            *slots.next().expect("chunks cover the slice") = encoded;
        }
        arena.recycle(chunk);
        if first_panic.is_none() {
            first_panic = panic;
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
}

/// Reassemble the payload from encoded stripes (inverse of
/// [`encode_payload`], minus the padding).
pub fn payload_of(layout: &CodeLayout, stripes: &[Stripe], payload_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload_len);
    for s in stripes {
        out.extend_from_slice(&s.data_bytes(layout));
    }
    out.truncate(payload_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::verify_parities;
    use dcode_baselines::registry::all_codes;
    use dcode_core::dcode::dcode;

    fn payload(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let layout = dcode(7).unwrap();
        let data = payload(layout.data_len() * 64 * 5 + 123); // 5.x stripes
        let seq = encode_payload(&layout, 64, &data, 1);
        for threads in [2usize, 4, 8] {
            let par = encode_payload(&layout, 64, &data, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
        assert_eq!(seq.len(), 6);
        assert!(seq.iter().all(|s| verify_parities(&layout, s)));
        assert_eq!(payload_of(&layout, &seq, data.len()), data);
    }

    #[test]
    fn pooled_fan_out_matches_sequential() {
        // Drive the pool with real multi-worker fan-out regardless of the
        // host's core count (encode_stripes clamps; this entry point does
        // not).
        let layout = dcode(7).unwrap();
        let data = payload(layout.data_len() * 32 * 7 + 5);
        let seq = encode_payload(&layout, 32, &data, 1);
        let pool = minipool::WorkerPool::with_workers(4);
        let program = Arc::new(XorProgram::compile_encode(&layout));
        for threads in [2usize, 4, 16] {
            let mut stripes: Vec<Stripe> = data
                .chunks(layout.data_len() * 32)
                .map(|c| Stripe::from_data(&layout, 32, c))
                .collect();
            encode_stripes_pooled(&program, &mut stripes, &pool, threads);
            assert_eq!(stripes, seq, "threads={threads}");
        }
    }

    #[test]
    fn arena_buffers_are_recycled_across_calls() {
        let layout = dcode(5).unwrap();
        let pool = minipool::WorkerPool::with_workers(4);
        let program = Arc::new(XorProgram::compile_encode(&layout));
        let mut arena = EncodeArena::new();
        let per = layout.data_len() * 16;
        let data = payload(per * 8);
        let encode_once = |arena: &mut EncodeArena| {
            let mut stripes: Vec<Stripe> = data
                .chunks(per)
                .map(|c| Stripe::from_data(&layout, 16, c))
                .collect();
            encode_stripes_arena(&program, &mut stripes, &pool, 4, arena);
            assert!(stripes.iter().all(|s| verify_parities(&layout, s)));
        };
        encode_once(&mut arena);
        let bufs_after_first = arena.bufs.len();
        let caps: Vec<usize> = arena.bufs.iter().map(Vec::capacity).collect();
        assert!(bufs_after_first >= 4, "every job buffer must be recycled");
        encode_once(&mut arena);
        assert_eq!(
            arena.bufs.len(),
            bufs_after_first,
            "steady state must reuse, not mint, buffers"
        );
        let caps_again: Vec<usize> = arena.bufs.iter().map(Vec::capacity).collect();
        assert_eq!(caps, caps_again, "buffer capacities must round-trip");
    }

    #[test]
    fn panicking_job_restores_stripes_instead_of_placeholders() {
        use dcode_core::grid::Cell;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        // Regression: a panic inside a pooled encode job used to propagate
        // before the write-back loop ran, leaving *every* stripe in the
        // caller's slice as the zero-length placeholder from the ownership
        // swap — silent data loss for any caller catching the unwind.
        let layout = dcode(7).unwrap();
        let program = Arc::new(XorProgram::compile_encode(&layout));
        let pool = minipool::WorkerPool::with_workers(4);
        let per = layout.data_len() * 16;
        let data = payload(per * 8);
        let mut stripes: Vec<Stripe> = data
            .chunks(per)
            .map(|c| Stripe::from_data(&layout, 16, c))
            .collect();
        // Poison one stripe with a smaller code's shape: the batch is no
        // longer uniform (no fused path), and the compiled program indexes
        // blocks past the poison stripe's grid and panics mid-chunk.
        let poison = 5;
        let small = dcode(5).unwrap();
        stripes[poison] = Stripe::zeroed(&small, 16);

        let caught = catch_unwind(AssertUnwindSafe(|| {
            encode_stripes_pooled(&program, &mut stripes, &pool, 4);
        }));
        assert!(caught.is_err(), "the poison stripe must panic the replay");

        // Every healthy stripe was restored with its data intact — and
        // since only one job panicked, fully encoded as well.
        for (i, s) in stripes.iter().enumerate() {
            if i == poison {
                continue;
            }
            assert_eq!(
                s.data_bytes(&layout),
                &data[i * per..(i + 1) * per],
                "stripe {i} lost data across the unwind"
            );
            assert!(verify_parities(&layout, s), "stripe {i} not encoded");
        }
        // The poison stripe came back too (its own shape, storage present,
        // possibly partially encoded) — not a zero-length placeholder.
        assert_eq!(stripes[poison].grid(), small.grid());
        assert_eq!(stripes[poison].block_size(), 16);
        let probe = catch_unwind(AssertUnwindSafe(|| {
            stripes[poison].snapshot(Cell::new(0, 0)).len()
        }));
        assert!(probe.is_ok(), "poison stripe left as a placeholder");

        // The pool and the healthy stripes are reusable after the unwind.
        let mut again: Vec<Stripe> = data
            .chunks(per)
            .map(|c| Stripe::from_data(&layout, 16, c))
            .collect();
        encode_stripes_pooled(&program, &mut again, &pool, 4);
        assert!(again.iter().all(|s| verify_parities(&layout, s)));
    }

    #[test]
    fn mixed_shape_batch_takes_the_unfused_path_and_stays_correct() {
        // Two codes' stripes in one slice, encoded with the program of the
        // *shared-prime* layout they all actually match — here, a batch
        // where one stripe's storage is detached (a degraded placeholder):
        // the fused path must be skipped, not panic.
        let layout = dcode(5).unwrap();
        let pool = minipool::WorkerPool::with_workers(2);
        let program = Arc::new(XorProgram::compile_encode(&layout));
        let per = layout.data_len() * 8;
        let data = payload(per * 3);
        let mut stripes: Vec<Stripe> = data
            .chunks(per)
            .map(|c| Stripe::from_data(&layout, 8, c))
            .collect();
        // Encode the healthy batch first for the expectation.
        let mut expect = stripes.clone();
        for s in &mut expect {
            program.run(s);
        }
        // A placeholder in the slice forces the fallback; encoding it
        // panics (no storage), but the healthy stripes still come back.
        stripes.push(Stripe::placeholder(layout.grid(), 8));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            encode_stripes_pooled(&program, &mut stripes, &pool, 2);
        }));
        assert!(caught.is_err(), "placeholder replay must panic");
        assert_eq!(&stripes[..3], &expect[..], "healthy stripes lost");
    }

    #[test]
    fn recover_stripes_matches_per_stripe_recovery() {
        use crate::decode::recover_columns;

        for p in [5usize, 7] {
            for layout in all_codes(p) {
                let cols = [0usize, 2];
                if dcode_core::decoder::plan_column_recovery(&layout, &cols).is_err() {
                    continue;
                }
                let per = layout.data_len() * 8;
                let data = payload(per * 6);
                let mut stripes: Vec<Stripe> = data
                    .chunks(per)
                    .map(|c| Stripe::from_data(&layout, 8, c))
                    .collect();
                encode_stripes(&layout, &mut stripes, 1);
                let golden = stripes.clone();
                // Per-stripe oracle.
                let mut expect = stripes.clone();
                for s in &mut expect {
                    s.erase_columns(&cols);
                    recover_columns(&layout, s, &cols).unwrap();
                }
                // Fused batch recovery.
                for s in &mut stripes {
                    s.erase_columns(&cols);
                }
                recover_stripes(&layout, &cols, &mut stripes, 4).unwrap();
                assert_eq!(stripes, expect, "{} p={p}", layout.name());
                assert_eq!(stripes, golden, "{} p={p} full roundtrip", layout.name());
            }
        }
    }

    #[test]
    fn recover_stripes_rejects_unrecoverable_erasures() {
        let layout = dcode(5).unwrap();
        let mut stripes = vec![Stripe::zeroed(&layout, 8)];
        assert!(recover_stripes(&layout, &[0, 1, 2], &mut stripes, 2).is_err());
    }

    #[test]
    fn empty_payload_yields_one_zero_stripe() {
        let layout = dcode(5).unwrap();
        let stripes = encode_payload(&layout, 16, &[], 4);
        assert_eq!(stripes.len(), 1);
        assert!(verify_parities(&layout, &stripes[0]));
        assert!(payload_of(&layout, &stripes, 0).is_empty());
    }

    #[test]
    fn exact_multiple_has_no_extra_stripe() {
        let layout = dcode(5).unwrap();
        let per = layout.data_len() * 16;
        let stripes = encode_payload(&layout, 16, &payload(per * 3), 2);
        assert_eq!(stripes.len(), 3);
    }
}
