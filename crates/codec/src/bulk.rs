//! Bulk payload encoding: split a large payload into stripes and encode
//! them in parallel over the persistent worker pool.
//!
//! Stripes are independent, so this is embarrassingly parallel — each
//! worker job owns a disjoint chunk of the stripe vector (data-race
//! freedom by construction, per the Rayon-style idiom the HPC guides
//! recommend).
//!
//! **Pitfall (and why this module looks the way it does):** earlier
//! revisions spawned a fresh set of scoped threads *inside every call* —
//! thread creation plus join cost on the order of the work itself for
//! small batches, which made "parallel" encoding measurably *slower* than
//! single-threaded on several codes (see `BENCH_encode.json` history).
//! Steady-state encode loops must never pay per-call spawns: jobs go to
//! the parked workers of [`minipool::global`], the compiled program comes
//! from the [`ScheduleCache`](crate::cache::ScheduleCache), and stripes
//! move into jobs by ownership (a `mem::replace` with an allocation-free
//! placeholder) rather than by copy.

use crate::cache;
use crate::schedule::XorProgram;
use crate::stripe::Stripe;
use dcode_core::layout::CodeLayout;
use minipool::WorkerPool;
use std::sync::Arc;

/// Split `payload` into as many stripes as needed (tail zero-padded) and
/// encode each. `threads = 1` runs inline; more fan out over the
/// persistent pool, clamped to the host's available parallelism.
pub fn encode_payload(
    layout: &CodeLayout,
    block_size: usize,
    payload: &[u8],
    threads: usize,
) -> Vec<Stripe> {
    let per_stripe = layout.data_len() * block_size;
    let n_stripes = payload.len().div_ceil(per_stripe).max(1);
    let mut stripes: Vec<Stripe> = (0..n_stripes)
        .map(|k| {
            let lo = k * per_stripe;
            let hi = ((k + 1) * per_stripe).min(payload.len());
            let chunk = if lo < payload.len() {
                &payload[lo..hi]
            } else {
                &[]
            };
            Stripe::from_data(layout, block_size, chunk)
        })
        .collect();
    encode_stripes(layout, &mut stripes, threads);
    stripes
}

/// Encode a slice of stripes in place, in parallel. The compiled
/// [`XorProgram`] comes from the global schedule cache (no per-call
/// compile) and jobs run on the global persistent pool (no per-call
/// spawns). The requested `threads` is clamped to the host's available
/// parallelism — see [`encode_stripes_pooled`] for the unclamped,
/// explicit-pool form.
pub fn encode_stripes(layout: &CodeLayout, stripes: &mut [Stripe], threads: usize) {
    let program = cache::global().encode_program(layout);
    let threads = minipool::effective_parallelism(threads);
    encode_stripes_pooled(&program, stripes, minipool::global(), threads);
}

/// Encode stripes with an explicit program, pool, and fan-out (not clamped
/// to host parallelism — tests drive real pool fan-out with it). Each job
/// takes ownership of a chunk of stripes via an allocation-free
/// placeholder swap and replays the shared program sequentially over its
/// chunk; stripe *contents* never cross threads by copy.
///
/// **Panic safety:** a panicking program replay (a malformed stripe, a
/// corrupted schedule) is caught *inside* the job so the job still hands
/// its chunk back; every chunk — encoded, partially encoded, or untouched
/// — is restored into the caller's slice before the first panic is
/// re-raised. Earlier revisions propagated the panic straight through the
/// pool, leaving the whole slice holding the zero-length placeholder
/// stripes from the ownership swap: a caller catching the unwind (a
/// long-lived server, a test harness) would observe silent data loss.
/// Now the slice never holds a placeholder after this returns or unwinds;
/// stripes of the panicking chunk may be partially encoded, which the
/// re-raised panic reports.
pub fn encode_stripes_pooled(
    program: &Arc<XorProgram>,
    stripes: &mut [Stripe],
    pool: &WorkerPool,
    threads: usize,
) {
    let threads = threads.max(1);
    if threads == 1 || stripes.len() <= 1 {
        for s in stripes.iter_mut() {
            program.run(s);
        }
        return;
    }
    let workers = threads.min(stripes.len());
    let chunk = stripes.len().div_ceil(workers);
    let mut jobs = Vec::with_capacity(workers);
    for part in stripes.chunks_mut(chunk) {
        // Move the chunk's stripes into the job (placeholder swap: no
        // block is copied or reallocated); the job returns them encoded.
        let mut owned: Vec<Stripe> = part
            .iter_mut()
            .map(|s| std::mem::replace(s, Stripe::placeholder(s.grid(), s.block_size())))
            .collect();
        let prog = Arc::clone(program);
        jobs.push(move || {
            let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for s in &mut owned {
                    prog.run(s);
                }
            }))
            .err();
            (owned, panic)
        });
    }
    let done = pool.run(jobs);
    let mut first_panic = None;
    let mut slots = stripes.iter_mut();
    for (chunk, panic) in done {
        for encoded in chunk {
            *slots.next().expect("chunks cover the slice") = encoded;
        }
        if first_panic.is_none() {
            first_panic = panic;
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
}

/// Reassemble the payload from encoded stripes (inverse of
/// [`encode_payload`], minus the padding).
pub fn payload_of(layout: &CodeLayout, stripes: &[Stripe], payload_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload_len);
    for s in stripes {
        out.extend_from_slice(&s.data_bytes(layout));
    }
    out.truncate(payload_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::verify_parities;
    use dcode_core::dcode::dcode;

    fn payload(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let layout = dcode(7).unwrap();
        let data = payload(layout.data_len() * 64 * 5 + 123); // 5.x stripes
        let seq = encode_payload(&layout, 64, &data, 1);
        for threads in [2usize, 4, 8] {
            let par = encode_payload(&layout, 64, &data, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
        assert_eq!(seq.len(), 6);
        assert!(seq.iter().all(|s| verify_parities(&layout, s)));
        assert_eq!(payload_of(&layout, &seq, data.len()), data);
    }

    #[test]
    fn pooled_fan_out_matches_sequential() {
        // Drive the pool with real multi-worker fan-out regardless of the
        // host's core count (encode_stripes clamps; this entry point does
        // not).
        let layout = dcode(7).unwrap();
        let data = payload(layout.data_len() * 32 * 7 + 5);
        let seq = encode_payload(&layout, 32, &data, 1);
        let pool = minipool::WorkerPool::with_workers(4);
        let program = Arc::new(XorProgram::compile_encode(&layout));
        for threads in [2usize, 4, 16] {
            let mut stripes: Vec<Stripe> = data
                .chunks(layout.data_len() * 32)
                .map(|c| Stripe::from_data(&layout, 32, c))
                .collect();
            encode_stripes_pooled(&program, &mut stripes, &pool, threads);
            assert_eq!(stripes, seq, "threads={threads}");
        }
    }

    #[test]
    fn panicking_job_restores_stripes_instead_of_placeholders() {
        use dcode_core::grid::Cell;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        // Regression: a panic inside a pooled encode job used to propagate
        // before the write-back loop ran, leaving *every* stripe in the
        // caller's slice as the zero-length placeholder from the ownership
        // swap — silent data loss for any caller catching the unwind.
        let layout = dcode(7).unwrap();
        let program = Arc::new(XorProgram::compile_encode(&layout));
        let pool = minipool::WorkerPool::with_workers(4);
        let per = layout.data_len() * 16;
        let data = payload(per * 8);
        let mut stripes: Vec<Stripe> = data
            .chunks(per)
            .map(|c| Stripe::from_data(&layout, 16, c))
            .collect();
        // Poison one stripe with a smaller code's shape: the compiled
        // program indexes blocks past its grid and panics mid-chunk.
        let poison = 5;
        let small = dcode(5).unwrap();
        stripes[poison] = Stripe::zeroed(&small, 16);

        let caught = catch_unwind(AssertUnwindSafe(|| {
            encode_stripes_pooled(&program, &mut stripes, &pool, 4);
        }));
        assert!(caught.is_err(), "the poison stripe must panic the replay");

        // Every healthy stripe was restored with its data intact — and
        // since only one job panicked, fully encoded as well.
        for (i, s) in stripes.iter().enumerate() {
            if i == poison {
                continue;
            }
            assert_eq!(
                s.data_bytes(&layout),
                &data[i * per..(i + 1) * per],
                "stripe {i} lost data across the unwind"
            );
            assert!(verify_parities(&layout, s), "stripe {i} not encoded");
        }
        // The poison stripe came back too (its own shape, storage present,
        // possibly partially encoded) — not a zero-length placeholder.
        assert_eq!(stripes[poison].grid(), small.grid());
        assert_eq!(stripes[poison].block_size(), 16);
        let probe = catch_unwind(AssertUnwindSafe(|| {
            stripes[poison].snapshot(Cell::new(0, 0)).len()
        }));
        assert!(probe.is_ok(), "poison stripe left as a placeholder");

        // The pool and the healthy stripes are reusable after the unwind.
        let mut again: Vec<Stripe> = data
            .chunks(per)
            .map(|c| Stripe::from_data(&layout, 16, c))
            .collect();
        encode_stripes_pooled(&program, &mut again, &pool, 4);
        assert!(again.iter().all(|s| verify_parities(&layout, s)));
    }

    #[test]
    fn empty_payload_yields_one_zero_stripe() {
        let layout = dcode(5).unwrap();
        let stripes = encode_payload(&layout, 16, &[], 4);
        assert_eq!(stripes.len(), 1);
        assert!(verify_parities(&layout, &stripes[0]));
        assert!(payload_of(&layout, &stripes, 0).is_empty());
    }

    #[test]
    fn exact_multiple_has_no_extra_stripe() {
        let layout = dcode(5).unwrap();
        let per = layout.data_len() * 16;
        let stripes = encode_payload(&layout, 16, &payload(per * 3), 2);
        assert_eq!(stripes.len(), 3);
    }
}
