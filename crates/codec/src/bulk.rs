//! Bulk payload encoding: split a large payload into stripes and encode
//! them in parallel with crossbeam scoped threads.
//!
//! Stripes are independent, so this is embarrassingly parallel — each
//! worker owns a disjoint chunk of the stripe vector (data-race freedom by
//! construction, per the Rayon-style idiom the HPC guides recommend).

use crate::schedule::XorProgram;
use crate::stripe::Stripe;
use dcode_core::layout::CodeLayout;

/// Split `payload` into as many stripes as needed (tail zero-padded) and
/// encode each. `threads = 1` runs inline; more fan out with crossbeam.
pub fn encode_payload(
    layout: &CodeLayout,
    block_size: usize,
    payload: &[u8],
    threads: usize,
) -> Vec<Stripe> {
    let per_stripe = layout.data_len() * block_size;
    let n_stripes = payload.len().div_ceil(per_stripe).max(1);
    let mut stripes: Vec<Stripe> = (0..n_stripes)
        .map(|k| {
            let lo = k * per_stripe;
            let hi = ((k + 1) * per_stripe).min(payload.len());
            let chunk = if lo < payload.len() {
                &payload[lo..hi]
            } else {
                &[]
            };
            Stripe::from_data(layout, block_size, chunk)
        })
        .collect();
    encode_stripes(layout, &mut stripes, threads);
    stripes
}

/// Encode a slice of stripes in place, in parallel. The layout is lowered
/// to a compiled [`XorProgram`] once, then every stripe replays the same
/// flat schedule.
pub fn encode_stripes(layout: &CodeLayout, stripes: &mut [Stripe], threads: usize) {
    let threads = threads.max(1);
    let program = XorProgram::compile_encode(layout);
    if threads == 1 || stripes.len() <= 1 {
        for s in stripes.iter_mut() {
            program.run(s);
        }
        return;
    }
    let chunk = stripes.len().div_ceil(threads);
    let program_ref = &program;
    crossbeam::thread::scope(|scope| {
        for part in stripes.chunks_mut(chunk) {
            scope.spawn(move |_| {
                for s in part {
                    program_ref.run(s);
                }
            });
        }
    })
    .expect("bulk encode worker panicked");
}

/// Reassemble the payload from encoded stripes (inverse of
/// [`encode_payload`], minus the padding).
pub fn payload_of(layout: &CodeLayout, stripes: &[Stripe], payload_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload_len);
    for s in stripes {
        out.extend_from_slice(&s.data_bytes(layout));
    }
    out.truncate(payload_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::verify_parities;
    use dcode_core::dcode::dcode;

    fn payload(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let layout = dcode(7).unwrap();
        let data = payload(layout.data_len() * 64 * 5 + 123); // 5.x stripes
        let seq = encode_payload(&layout, 64, &data, 1);
        for threads in [2usize, 4, 8] {
            let par = encode_payload(&layout, 64, &data, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
        assert_eq!(seq.len(), 6);
        assert!(seq.iter().all(|s| verify_parities(&layout, s)));
        assert_eq!(payload_of(&layout, &seq, data.len()), data);
    }

    #[test]
    fn empty_payload_yields_one_zero_stripe() {
        let layout = dcode(5).unwrap();
        let stripes = encode_payload(&layout, 16, &[], 4);
        assert_eq!(stripes.len(), 1);
        assert!(verify_parities(&layout, &stripes[0]));
        assert!(payload_of(&layout, &stripes, 0).is_empty());
    }

    #[test]
    fn exact_multiple_has_no_extra_stripe() {
        let layout = dcode(5).unwrap();
        let per = layout.data_len() * 16;
        let stripes = encode_payload(&layout, 16, &payload(per * 3), 2);
        assert_eq!(stripes.len(), 3);
    }
}
