//! GF(2) bit-matrix backend — the Jerasure-style representation.
//!
//! The paper implements every code on Jerasure 1.2, which encodes via a
//! bit-matrix over GF(2): each parity element is a row whose set bits pick
//! the data elements (in logical order) XORed together. This module derives
//! that matrix from a [`CodeLayout`] by symbolically expanding
//! parity-on-parity references (RDP, HDP) in encode order, giving each
//! parity purely in terms of data elements — and then encodes by
//! matrix-vector product. Agreement with the equation-driven encoder is a
//! strong cross-check of both paths, mirroring how the authors validated
//! their Jerasure ports.

use crate::stripe::Stripe;
use crate::xor::xor_into;
use dcode_core::grid::{Cell, CellKind};
use dcode_core::layout::CodeLayout;

/// A parity-generator matrix over GF(2): `rows × data_len` bits, one row
/// per equation (in the layout's equation order), bit `j` set when data
/// element `j` (logical order) contributes to that parity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Number of parity rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of data columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether data element `col` contributes to parity row `row`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.rows && col < self.cols);
        self.bits[row * self.words_per_row + col / 64] >> (col % 64) & 1 == 1
    }

    fn set(&mut self, row: usize, col: usize) {
        self.bits[row * self.words_per_row + col / 64] |= 1 << (col % 64);
    }

    fn xor_rows(&mut self, dst: usize, src: usize) {
        let w = self.words_per_row;
        let (dst_off, src_off) = (dst * w, src * w);
        for k in 0..w {
            let v = self.bits[src_off + k];
            self.bits[dst_off + k] ^= v;
        }
    }

    /// Number of set bits in a row — the XOR fan-in of that parity when
    /// computed directly from data (Jerasure's per-row cost metric).
    pub fn row_weight(&self, row: usize) -> usize {
        let w = self.words_per_row;
        self.bits[row * w..(row + 1) * w]
            .iter()
            .map(|x| x.count_ones() as usize)
            .sum()
    }
}

/// Derive the data-only generator matrix for a layout.
pub fn generator_matrix(layout: &CodeLayout) -> BitMatrix {
    let rows = layout.equations().len();
    let cols = layout.data_len();
    let words_per_row = cols.div_ceil(64).max(1);
    let mut m = BitMatrix {
        rows,
        cols,
        words_per_row,
        bits: vec![0; rows * words_per_row],
    };

    // Encode order guarantees that any parity member referenced here has
    // already been expanded into data-element form.
    for &eq_idx in layout.encode_order() {
        let eq = layout.equation(eq_idx);
        for &member in &eq.members {
            match layout.kind(member) {
                CellKind::Data => {
                    let j = layout
                        .logical_of(member)
                        .expect("data cell has logical index");
                    // XOR semantics: toggling twice cancels.
                    if m.get(eq_idx, j) {
                        // Clearing requires a toggle; BitMatrix::set only
                        // sets, so do it with a row-local xor.
                        m.bits[eq_idx * m.words_per_row + j / 64] ^= 1 << (j % 64);
                    } else {
                        m.set(eq_idx, j);
                    }
                }
                CellKind::Parity(dep) => m.xor_rows(eq_idx, dep),
            }
        }
    }
    m
}

/// Encode every parity block by matrix-vector product over the data blocks.
/// Byte-identical to [`crate::encode::encode`].
pub fn encode_with_matrix(layout: &CodeLayout, matrix: &BitMatrix, stripe: &mut Stripe) {
    assert_eq!(matrix.rows(), layout.equations().len());
    assert_eq!(matrix.cols(), layout.data_len());
    let data_cells: Vec<Cell> = layout.data_cells().to_vec();
    for (eq_idx, eq) in layout.equations().iter().enumerate() {
        let mut acc = vec![0u8; stripe.block_size()];
        for (j, &cell) in data_cells.iter().enumerate() {
            if matrix.get(eq_idx, j) {
                xor_into(&mut acc, stripe.block(cell));
            }
        }
        stripe.block_mut(eq.parity).copy_from_slice(&acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use dcode_baselines::registry::all_codes;

    fn payload(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 48) as u8
            })
            .collect()
    }

    #[test]
    fn matrix_encode_matches_equation_encode_for_every_code() {
        for p in [5usize, 7, 11] {
            for layout in all_codes(p) {
                let m = generator_matrix(&layout);
                let data = payload(layout.data_len() * 8, p as u64);
                let mut a = Stripe::from_data(&layout, 8, &data);
                let mut b = a.clone();
                encode(&layout, &mut a);
                encode_with_matrix(&layout, &m, &mut b);
                assert_eq!(a, b, "{} p={p}", layout.name());
            }
        }
    }

    #[test]
    fn dcode_rows_have_uniform_weight() {
        // Every D-Code parity is the XOR of exactly n−2 data elements.
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let m = generator_matrix(&layout);
        for r in 0..m.rows() {
            assert_eq!(m.row_weight(r), 5);
        }
    }

    #[test]
    fn rdp_diagonal_rows_expand_row_parities() {
        // After expansion, RDP's diagonal rows have weight > p−1 wherever a
        // row parity was folded in.
        let layout = dcode_baselines::rdp::rdp(7).unwrap();
        let m = generator_matrix(&layout);
        let weights: Vec<usize> = (0..m.rows()).map(|r| m.row_weight(r)).collect();
        assert!(weights.iter().any(|&w| w > 6), "{weights:?}");
    }

    #[test]
    fn evenodd_s_cancellation_in_matrix() {
        // EVENODD's diagonal parity on class p−1 would double-count the S
        // cells; the XOR-toggling expansion must cancel cleanly (every
        // weight stays ≤ 2(p−1)).
        let layout = dcode_baselines::evenodd::evenodd(5).unwrap();
        let m = generator_matrix(&layout);
        for r in 0..m.rows() {
            assert!(m.row_weight(r) <= 8, "row {r} weight {}", m.row_weight(r));
        }
    }
}
