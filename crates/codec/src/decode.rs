//! Plan-driven erasure decoding over real blocks.
//!
//! The symbolic [`RecoveryPlan`] from `dcode-core` is replayed over a
//! [`Stripe`]: each step XORs its source blocks into the target block.
//! Step order guarantees every source is either a surviving block or an
//! already-recovered target.

use crate::cache;
use crate::schedule::XorProgram;
use crate::stripe::Stripe;
use crate::xor::xor_into;
use dcode_core::decoder::{RecoveryPlan, Unrecoverable};
use dcode_core::layout::CodeLayout;

/// Execute a recovery plan: rebuild every erased block in place, by
/// compiling the plan to a flat [`XorProgram`] and replaying it.
///
/// This is the generic entry point for *arbitrary* plans and compiles per
/// call. Steady-state paths keyed by layout + erased columns —
/// [`recover_columns`] here, `ResilientArray`'s degraded reads — go
/// through the [`ScheduleCache`](crate::cache::ScheduleCache) instead and
/// never recompile.
pub fn apply_plan(stripe: &mut Stripe, plan: &RecoveryPlan) {
    XorProgram::compile_plan(stripe.grid(), plan).run(stripe);
}

/// The original step-by-step interpreter for recovery plans. Kept as the
/// differential-test oracle for [`apply_plan`] — outputs are
/// byte-identical.
pub fn apply_plan_naive(stripe: &mut Stripe, plan: &RecoveryPlan) {
    for step in &plan.steps {
        let mut acc = vec![0u8; stripe.block_size()];
        for &src in &step.sources {
            xor_into(&mut acc, stripe.block(src));
        }
        stripe.block_mut(step.target).copy_from_slice(&acc);
    }
}

/// Convenience: erase `failed_cols` in the stripe and rebuild them, using
/// the globally cached compiled recovery program for this
/// `(layout, column set)` — repeated recoveries off the same failure
/// pattern compile nothing.
///
/// Returns the plan used, so callers can inspect the read footprint.
pub fn recover_columns(
    layout: &CodeLayout,
    stripe: &mut Stripe,
    failed_cols: &[usize],
) -> Result<RecoveryPlan, Unrecoverable> {
    for &col in failed_cols {
        assert!(col < layout.disks(), "disk {col} out of range");
    }
    let mut cols = failed_cols.to_vec();
    cols.sort_unstable();
    cols.dedup();
    let compiled = cache::global().column_program(layout, &cols)?;
    stripe.erase_columns(failed_cols);
    compiled.program.run(stripe);
    Ok((*compiled.plan).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode, verify_parities};
    use dcode_baselines::registry::all_codes;

    fn payload(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn every_code_survives_every_double_failure() {
        for p in [5usize, 7] {
            for layout in all_codes(p) {
                let data = payload(layout.data_len() * 8, p as u64);
                let mut stripe = Stripe::from_data(&layout, 8, &data);
                encode(&layout, &mut stripe);
                let golden = stripe.clone();
                for c1 in 0..layout.disks() {
                    for c2 in c1 + 1..layout.disks() {
                        let mut s = golden.clone();
                        recover_columns(&layout, &mut s, &[c1, c2]).unwrap_or_else(|e| {
                            panic!("{} p={p} cols=({c1},{c2}): {e}", layout.name())
                        });
                        assert_eq!(s, golden, "{} p={p} cols=({c1},{c2})", layout.name());
                        assert!(verify_parities(&layout, &s));
                    }
                }
            }
        }
    }

    #[test]
    fn single_failures_recover_too() {
        for layout in all_codes(11) {
            let data = payload(layout.data_len() * 32, 7);
            let mut stripe = Stripe::from_data(&layout, 32, &data);
            encode(&layout, &mut stripe);
            let golden = stripe.clone();
            for c in 0..layout.disks() {
                let mut s = golden.clone();
                recover_columns(&layout, &mut s, &[c]).unwrap();
                assert_eq!(s, golden, "{} col={c}", layout.name());
            }
        }
    }

    #[test]
    fn triple_failure_is_rejected() {
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let mut stripe = Stripe::zeroed(&layout, 8);
        encode(&layout, &mut stripe);
        assert!(recover_columns(&layout, &mut stripe, &[0, 1, 2]).is_err());
    }
}
