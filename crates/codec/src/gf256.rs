//! GF(2⁸) arithmetic — the substrate for the Reed–Solomon RAID-6 baseline.
//!
//! The D-Code paper's whole premise is that XOR-only array codes beat
//! Galois-field codes on computation: Reed–Solomon RAID-6 multiplies every
//! byte by field coefficients, while D-Code only XORs. This module supplies
//! the field (polynomial `x⁸+x⁴+x³+x²+1`, `0x11D`, generator `α = 2` — the
//! classic RAID-6 choice) so the `xor_vs_rs` bench can measure that premise
//! instead of asserting it.

/// The field's reducing polynomial (without the x⁸ term): `0x1D`.
pub const POLY: u16 = 0x11D;

/// Number of non-zero field elements.
pub const ORDER: usize = 255;

/// Precomputed log/antilog tables, built once at first use.
struct Tables {
    log: [u8; 256],
    alog: [u8; 512], // doubled to skip a mod in mul
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut alog = [0u8; 512];
        let mut x: u16 = 1;
        for (i, slot) in alog.iter_mut().enumerate().take(ORDER) {
            *slot = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in ORDER..512 {
            alog[i] = alog[i - ORDER];
        }
        Tables { log, alog }
    })
}

/// Field multiplication.
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.alog[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Field division (`a / b`). Panics on division by zero.
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    let diff = t.log[a as usize] as usize + ORDER - t.log[b as usize] as usize;
    t.alog[diff]
}

/// Multiplicative inverse. Panics on zero.
pub fn inv(a: u8) -> u8 {
    div(1, a)
}

/// `α^e` for the generator α = 2.
pub fn exp(e: usize) -> u8 {
    tables().alog[e % ORDER]
}

/// Discrete log base α. Panics on zero.
pub fn log(a: u8) -> usize {
    assert!(a != 0, "log of zero in GF(256)");
    tables().log[a as usize] as usize
}

/// `dst[i] ^= c · src[i]` over whole buffers, via a per-coefficient
/// 256-entry product table (the standard software RAID-6 Q update).
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        crate::xor::xor_into(dst, src);
        return;
    }
    let mut table = [0u8; 256];
    for (x, slot) in table.iter_mut().enumerate() {
        *slot = mul(c, x as u8);
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= table[s as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // α = 2; α⁸ = 0x1D under 0x11D.
        assert_eq!(exp(0), 1);
        assert_eq!(exp(1), 2);
        assert_eq!(exp(8), 0x1D);
        assert_eq!(mul(2, 0x80), 0x1D);
        assert_eq!(mul(0, 77), 0);
        assert_eq!(mul(1, 77), 77);
    }

    #[test]
    fn field_axioms_exhaustive_light() {
        // Associativity and distributivity over a sampled grid, inverses
        // exhaustively.
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
            assert_eq!(div(a, a), 1);
        }
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                assert_eq!(mul(a, b), mul(b, a));
                for c in (0..=255u8).step_by(31) {
                    assert_eq!(mul(a, mul(b, c)), mul(mul(a, b), c));
                    assert_eq!(mul(a, b ^ c), mul(a, b) ^ mul(a, c));
                }
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        // α generates the multiplicative group: 255 distinct powers.
        let mut seen = [false; 256];
        for e in 0..ORDER {
            let v = exp(e);
            assert!(!seen[v as usize], "α^{e} repeats");
            seen[v as usize] = true;
        }
        assert_eq!(exp(ORDER), 1);
    }

    #[test]
    fn mul_acc_matches_scalar() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 2, 0x1D, 0xFF] {
            let mut dst = vec![0xA5u8; 256];
            let mut expect = dst.clone();
            mul_acc(&mut dst, &src, c);
            for (e, &s) in expect.iter_mut().zip(&src) {
                *e ^= mul(c, s);
            }
            assert_eq!(dst, expect, "c={c}");
        }
    }
}
