//! Reed–Solomon RAID-6 (the P+Q scheme) — the Galois-field baseline the
//! paper's XOR-only design competes with.
//!
//! For `k` data blocks `D₀ … D_{k−1}`:
//!
//! ```text
//! P = D₀ ⊕ D₁ ⊕ … ⊕ D_{k−1}
//! Q = g⁰·D₀ ⊕ g¹·D₁ ⊕ … ⊕ g^{k−1}·D_{k−1}      (g = α over GF(2⁸))
//! ```
//!
//! Any two lost blocks are recoverable by the classic case analysis
//! (one data; data+P; data+Q; P+Q; two data). This is the layout Linux
//! `md` RAID-6 and Reed–Solomon-based systems use; it is *horizontal*
//! (dedicated P and Q disks) and needs field multiplications on Q's hot
//! path — both properties the paper's evaluation argues against. The
//! `xor_vs_rs` bench compares its encode/decode throughput against the
//! array codes'.

use crate::gf256::{div, exp, inv, mul_acc, ORDER};
use crate::xor::xor_into;

/// A P+Q RAID-6 group over `k` equally sized data blocks.
#[derive(Clone, Debug)]
pub struct RsRaid6 {
    k: usize,
    block: usize,
}

/// Which blocks of an [`RsRaid6`] group were lost.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Erasure {
    /// One data block.
    OneData(usize),
    /// One data block and the P block.
    DataAndP(usize),
    /// One data block and the Q block.
    DataAndQ(usize),
    /// Both parity blocks (data intact).
    PAndQ,
    /// Two distinct data blocks.
    TwoData(usize, usize),
}

impl RsRaid6 {
    /// A group of `k` data blocks of `block` bytes (so `k + 2` disks).
    /// `k` must be at most [`ORDER`] (255) for distinct coefficients.
    pub fn new(k: usize, block: usize) -> Self {
        assert!((1..=ORDER).contains(&k), "1 ≤ k ≤ 255 required");
        assert!(block > 0);
        RsRaid6 { k, block }
    }

    /// Number of data blocks.
    pub fn k(&self) -> usize {
        self.k
    }

    fn check(&self, data: &[Vec<u8>]) {
        assert_eq!(data.len(), self.k, "expected {} data blocks", self.k);
        assert!(
            data.iter().all(|d| d.len() == self.block),
            "block size mismatch"
        );
    }

    /// Compute `(P, Q)` from the data blocks.
    pub fn encode(&self, data: &[Vec<u8>]) -> (Vec<u8>, Vec<u8>) {
        self.check(data);
        let mut p = vec![0u8; self.block];
        let mut q = vec![0u8; self.block];
        for (i, d) in data.iter().enumerate() {
            xor_into(&mut p, d);
            mul_acc(&mut q, d, exp(i));
        }
        (p, q)
    }

    /// Recover from an erasure, rewriting the lost blocks in place.
    ///
    /// `data`, `p`, and `q` hold the surviving values; the lost entries'
    /// contents are ignored and overwritten.
    pub fn decode(&self, data: &mut [Vec<u8>], p: &mut Vec<u8>, q: &mut Vec<u8>, e: Erasure) {
        self.check(data);
        match e {
            Erasure::OneData(x) | Erasure::DataAndQ(x) => {
                // D_x from P and the other data.
                assert!(x < self.k);
                let mut acc = p.clone();
                for (i, d) in data.iter().enumerate() {
                    if i != x {
                        xor_into(&mut acc, d);
                    }
                }
                data[x] = acc;
                if matches!(e, Erasure::DataAndQ(_)) {
                    let (_, new_q) = self.encode(data);
                    *q = new_q;
                }
            }
            Erasure::DataAndP(x) => {
                // D_x from Q: D_x = (Q ⊕ Σ_{i≠x} g^i·D_i) / g^x.
                assert!(x < self.k);
                let mut acc = q.clone();
                for (i, d) in data.iter().enumerate() {
                    if i != x {
                        mul_acc(&mut acc, d, exp(i));
                    }
                }
                let gx_inv = inv(exp(x));
                let mut dx = vec![0u8; self.block];
                mul_acc(&mut dx, &acc, gx_inv);
                data[x] = dx;
                let (new_p, _) = self.encode(data);
                *p = new_p;
            }
            Erasure::PAndQ => {
                let (new_p, new_q) = self.encode(data);
                *p = new_p;
                *q = new_q;
            }
            Erasure::TwoData(x, y) => {
                // The classic two-data reconstruction:
                //   Pxy = Σ_{i∉{x,y}} D_i            (P syndrome)
                //   Qxy = Σ_{i∉{x,y}} g^i·D_i        (Q syndrome)
                //   A = (P ⊕ Pxy), B = (Q ⊕ Qxy)
                //   D_x = (g^y·A ⊕ B) / (g^x ⊕ g^y);  D_y = A ⊕ D_x
                assert!(x != y && x < self.k && y < self.k);
                let mut pxy = vec![0u8; self.block];
                let mut qxy = vec![0u8; self.block];
                for (i, d) in data.iter().enumerate() {
                    if i != x && i != y {
                        xor_into(&mut pxy, d);
                        mul_acc(&mut qxy, d, exp(i));
                    }
                }
                let mut a = p.clone();
                xor_into(&mut a, &pxy);
                let mut b = q.clone();
                xor_into(&mut b, &qxy);

                let denom = exp(x) ^ exp(y);
                let coeff_a = div(exp(y), denom);
                let coeff_b = div(1, denom);
                let mut dx = vec![0u8; self.block];
                mul_acc(&mut dx, &a, coeff_a);
                mul_acc(&mut dx, &b, coeff_b);
                let mut dy = a;
                xor_into(&mut dy, &dx);
                data[x] = dx;
                data[y] = dy;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(k: usize, block: usize, seed: u64) -> (RsRaid6, Vec<Vec<u8>>) {
        let rs = RsRaid6::new(k, block);
        let mut x = seed | 1;
        let data: Vec<Vec<u8>> = (0..k)
            .map(|_| {
                (0..block)
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        (x >> 33) as u8
                    })
                    .collect()
            })
            .collect();
        (rs, data)
    }

    #[test]
    fn every_erasure_case_recovers() {
        let (rs, data) = group(8, 64, 42);
        let (p, q) = rs.encode(&data);
        let cases = [
            Erasure::OneData(3),
            Erasure::DataAndP(5),
            Erasure::DataAndQ(0),
            Erasure::PAndQ,
            Erasure::TwoData(1, 6),
            Erasure::TwoData(7, 2),
        ];
        for e in cases {
            let mut d = data.clone();
            let mut pp = p.clone();
            let mut qq = q.clone();
            // Clobber the lost blocks.
            match e {
                Erasure::OneData(x) => d[x].fill(0),
                Erasure::DataAndP(x) => {
                    d[x].fill(0);
                    pp.fill(0);
                }
                Erasure::DataAndQ(x) => {
                    d[x].fill(0);
                    qq.fill(0);
                }
                Erasure::PAndQ => {
                    pp.fill(0);
                    qq.fill(0);
                }
                Erasure::TwoData(x, y) => {
                    d[x].fill(0);
                    d[y].fill(0);
                }
            }
            rs.decode(&mut d, &mut pp, &mut qq, e);
            assert_eq!(d, data, "{e:?}");
            assert_eq!(pp, p, "{e:?}");
            assert_eq!(qq, q, "{e:?}");
        }
    }

    #[test]
    fn all_two_data_pairs_recover() {
        let (rs, data) = group(11, 16, 7);
        let (p, q) = rs.encode(&data);
        for x in 0..11 {
            for y in x + 1..11 {
                let mut d = data.clone();
                d[x].fill(0xEE);
                d[y].fill(0xEE);
                let (mut pp, mut qq) = (p.clone(), q.clone());
                rs.decode(&mut d, &mut pp, &mut qq, Erasure::TwoData(x, y));
                assert_eq!(d, data, "pair ({x},{y})");
            }
        }
    }

    #[test]
    fn q_actually_differs_from_p() {
        let (rs, data) = group(5, 32, 3);
        let (p, q) = rs.encode(&data);
        assert_ne!(p, q);
    }

    #[test]
    #[should_panic]
    fn oversized_k_rejected() {
        let _ = RsRaid6::new(256, 8);
    }
}
