#![warn(missing_docs)]
//! # dcode-codec
//!
//! The byte-level erasure-coding engine of the D-Code reproduction — the
//! workspace's stand-in for the Jerasure 1.2 library the paper builds on.
//! Generic over any [`dcode_core::layout::CodeLayout`]:
//!
//! * [`xor`] — `u64`-lane XOR kernels with set-form (overwrite) and up to
//!   8-wide fold tiers;
//! * [`stripe`] — in-memory stripe storage ([`Stripe`]);
//! * [`mod@encode`] — sequential and pool-parallel full-stripe encoding,
//!   plus the `verify_parities` consistency check;
//! * [`schedule`] — the plan compiler: layouts and recovery plans lower to
//!   flat [`XorProgram`]s (contiguous index arrays, dependency levels, no
//!   per-op allocation) that [`mod@encode`] and [`decode`] replay;
//! * [`fused`] — the batch compiler: a single-stripe [`XorProgram`] and a
//!   batch size fuse into one [`FusedProgram`] over the batch's virtual
//!   block space, replayed tile-major so each source block streams
//!   through cache once per batch (the bulk-encode fast path);
//! * [`tile`] — runtime tile-size selection for the fused executor
//!   (`DCODE_TILE_BYTES` override or a one-shot calibration probe);
//! * [`cache`] — the [`ScheduleCache`]: memoized compiled programs,
//!   recovery subprograms, and fused batch programs keyed by layout /
//!   program fingerprint, so steady-state encode/recover paths never
//!   recompile;
//! * [`decode`] — replay of symbolic [`dcode_core::decoder::RecoveryPlan`]s
//!   over real blocks;
//! * [`update`] — read-modify-write partial-stripe writes with cascading
//!   delta propagation (the I/O behaviour Figures 4–5 measure);
//! * [`bitmatrix`] — the Jerasure-style GF(2) generator-matrix backend,
//!   cross-checked against the equation-driven encoder;
//! * [`gf256`] / [`rs`] — a GF(2⁸) field and the classic Reed–Solomon P+Q
//!   RAID-6, the Galois-field baseline the paper's XOR-only design
//!   competes with (see the `xor_vs_rs` bench).
//!
//! ## Quick example
//!
//! ```
//! use dcode_core::dcode::dcode;
//! use dcode_codec::{Stripe, encode::encode, decode::recover_columns};
//!
//! let code = dcode(7).unwrap();
//! let payload: Vec<u8> = (0..code.data_len() * 16).map(|i| i as u8).collect();
//! let mut stripe = Stripe::from_data(&code, 16, &payload);
//! encode(&code, &mut stripe);
//!
//! // Lose two disks, rebuild, and the payload is intact.
//! recover_columns(&code, &mut stripe, &[2, 3]).unwrap();
//! assert_eq!(stripe.data_bytes(&code), payload);
//! ```

pub mod bitmatrix;
pub mod bulk;
pub mod cache;
pub mod decode;
pub mod encode;
pub mod fused;
pub mod gf256;
pub mod opt;
pub mod rs;
pub mod schedule;
pub mod stripe;
pub mod tile;
pub mod update;
pub mod xor;

pub use bitmatrix::{encode_with_matrix, generator_matrix, BitMatrix};
pub use bulk::{
    encode_payload, encode_stripes, encode_stripes_arena, encode_stripes_pooled, payload_of,
    recover_stripes, EncodeArena,
};
pub use cache::{schedule_stats, CacheStats, CompiledRecovery, ScheduleCache};
pub use decode::{apply_plan, apply_plan_naive, recover_columns};
pub use encode::{encode, encode_naive, encode_parallel, verify_parities};
pub use fused::FusedProgram;
pub use opt::{optimize, CostSummary, OptCertificate, OptConfig, OptPass, Optimized, PassRun};
pub use schedule::XorProgram;
pub use stripe::Stripe;
pub use tile::fused_tile_bytes;
pub use update::{reconstruct_write_ios, write_logical, write_logical_reconstruct, WriteReceipt};
