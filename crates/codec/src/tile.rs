//! Runtime tile-size selection for the fused bulk executor.
//!
//! [`TILE_BYTES`](crate::xor::TILE_BYTES) is a compile-time default tuned
//! on one machine's L1d. The fused batch path keeps a whole stripe's
//! working set (every block's current tile) resident at once, so its sweet
//! spot depends on the host cache hierarchy and the stripe shape — the
//! `xor_kernel` bench's tile sweep (EXPERIMENTS.md) shows a flat-topped
//! curve across 4–32 KiB with cliffs on either side. Rather than bake in
//! one point, [`fused_tile_bytes`] runs a **one-shot calibration probe**
//! over that sweep's candidate set the first time a fused encode happens,
//! caches the winner for the process lifetime, and honors a
//! `DCODE_TILE_BYTES` environment override for benchmarking and for hosts
//! where the probe's few milliseconds matter (the override is also how the
//! bench suite pins tile size when regenerating its sweep).

use crate::xor::{xor_many_into_tiled, TILE_BYTES};
use std::sync::OnceLock;
use std::time::Instant;

/// Candidate tile sizes, from the `xor_kernel` bench's tile sweep: the
/// measured throughput curve is flat between 4 KiB and 32 KiB and falls
/// off outside, so the probe only has to pick within the plateau.
pub const TILE_CANDIDATES: [usize; 4] = [4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024];

/// Shape of the calibration workload: eight source streams (a D-Code
/// parity at p = 13 reads 11 members; eight is the widest kernel fold) of
/// one representative block each.
const PROBE_SOURCES: usize = 8;
const PROBE_BLOCK: usize = 64 * 1024;
const PROBE_REPS: u32 = 5;

/// The tile size the fused bulk executor should use, decided once per
/// process: the `DCODE_TILE_BYTES` override if set (clamped to ≥ 8),
/// otherwise the calibration probe's winner, otherwise the compile-time
/// [`TILE_BYTES`] default (the probe cannot fail, but an override of `0`
/// or garbage falls back rather than panicking a server).
pub fn fused_tile_bytes() -> usize {
    static CHOSEN: OnceLock<usize> = OnceLock::new();
    *CHOSEN.get_or_init(|| {
        if let Ok(raw) = std::env::var("DCODE_TILE_BYTES") {
            if let Ok(bytes) = raw.trim().parse::<usize>() {
                if bytes >= 8 {
                    return bytes;
                }
            }
            return TILE_BYTES;
        }
        calibrate()
    })
}

/// Time one multi-source XOR pass per candidate and return the fastest.
/// Each candidate gets [`PROBE_REPS`] passes over [`PROBE_SOURCES`]
/// sources of [`PROBE_BLOCK`] bytes (a few MiB of traffic total — a
/// handful of milliseconds, paid once); the minimum rep time per candidate
/// is compared so a scheduler hiccup cannot crown the wrong tile.
fn calibrate() -> usize {
    let srcs: Vec<Vec<u8>> = (0..PROBE_SOURCES)
        .map(|k| {
            (0..PROBE_BLOCK as u32)
                .map(|i| (i.wrapping_mul(k as u32 * 2 + 7) >> 3) as u8)
                .collect()
        })
        .collect();
    let refs: Vec<&[u8]> = srcs.iter().map(Vec::as_slice).collect();
    let mut dst = vec![0u8; PROBE_BLOCK];
    // Warm the buffers (first touch / page faults) outside the timing.
    xor_many_into_tiled(&mut dst, &refs, TILE_BYTES);
    let mut best = (TILE_BYTES, u128::MAX);
    for &tile in &TILE_CANDIDATES {
        let mut fastest = u128::MAX;
        for _ in 0..PROBE_REPS {
            let t0 = Instant::now();
            xor_many_into_tiled(&mut dst, &refs, tile);
            fastest = fastest.min(t0.elapsed().as_nanos());
        }
        if fastest < best.1 {
            best = (tile, fastest);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_picks_a_candidate() {
        let tile = calibrate();
        assert!(
            TILE_CANDIDATES.contains(&tile) || tile == TILE_BYTES,
            "probe returned {tile}, not a candidate"
        );
    }

    #[test]
    fn chosen_tile_is_stable_and_sane() {
        let a = fused_tile_bytes();
        let b = fused_tile_bytes();
        assert_eq!(a, b, "tile choice must be decided once per process");
        assert!(a >= 8, "tile must satisfy the kernel's minimum");
    }
}
