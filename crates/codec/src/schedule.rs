//! Compiled XOR schedules — the plan compiler.
//!
//! [`encode`](crate::encode::encode) and
//! [`apply_plan`](crate::decode::apply_plan) are *interpreters*: every
//! equation walk re-resolves `Cell`s through the layout's maps and
//! allocates a fresh accumulator. This module lowers a layout's encode
//! order — or any symbolic [`RecoveryPlan`] — once, into a flat
//! [`XorProgram`]: contiguous `u32` arrays of block indices grouped into
//! dependency levels. Replaying the program touches no `BTreeMap`, builds
//! no per-equation `Vec`, and allocates nothing per operation: the target
//! block itself is detached from the stripe (`std::mem::take` on a
//! `Box<[u8]>` is allocation-free) and used as the accumulator, while
//! sources are gathered straight out of the stripe through the tiled
//! multi-source kernel in [`crate::xor`].
//!
//! Programs are pure data (`Send + Sync + Clone`), so one compiled
//! schedule can drive any number of stripes or threads.

use crate::stripe::Stripe;
use crate::xor::xor_gather_into;
use dcode_core::decoder::RecoveryPlan;
use dcode_core::grid::Grid;
use dcode_core::layout::CodeLayout;
use dcode_core::Fnv1a;
use minipool::WorkerPool;
use std::sync::Arc;

/// A compiled XOR program: `ops[k]` writes block `targets[k]` with the XOR
/// of blocks `sources[src_off[k]..src_off[k+1]]` (all linear grid
/// indices). Ops are grouped into dependency levels — `level_off`
/// delimits op ranges, and every op within a level reads only blocks no
/// op of the same level writes — so a level's ops may run concurrently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XorProgram {
    grid: Grid,
    targets: Vec<u32>,
    /// `ops + 1` entries; op `k`'s sources live at `src_off[k]..src_off[k+1]`.
    src_off: Vec<u32>,
    sources: Vec<u32>,
    /// `levels + 1` entries; level `l` covers ops `level_off[l]..level_off[l+1]`.
    level_off: Vec<u32>,
    /// FNV-1a over the grid shape and flat arrays, computed once at
    /// construction. Deterministic in the content, so the derived equality
    /// stays consistent; used by the fused-program cache to key batches by
    /// program identity without holding the originating layout.
    fingerprint: u64,
}

/// Length-prefixed FNV-1a over the grid dimensions and flat arrays
/// (prefixing keeps adjacent arrays from aliasing into the same stream).
fn content_fingerprint(
    grid: Grid,
    targets: &[u32],
    src_off: &[u32],
    sources: &[u32],
    level_off: &[u32],
) -> u64 {
    let mut fp = Fnv1a::new();
    fp.word(grid.rows as u64);
    fp.word(grid.cols as u64);
    for arr in [targets, src_off, sources, level_off] {
        fp.word(arr.len() as u64);
        for &w in arr {
            fp.word(u64::from(w));
        }
    }
    fp.finish()
}

impl XorProgram {
    /// Lower `layout`'s full-stripe encode into a program: one op per
    /// parity equation, grouped by [`CodeLayout::dependency_levels`].
    pub fn compile_encode(layout: &CodeLayout) -> Self {
        let grid = layout.grid();
        let mut b = ProgramBuilder::new(grid);
        for level in layout.dependency_levels() {
            for eq_idx in level {
                let eq = layout.equation(eq_idx);
                b.op(
                    grid.index(eq.parity),
                    eq.members.iter().map(|&m| grid.index(m)),
                );
            }
            b.end_level();
        }
        let prog = b.finish();
        #[cfg(debug_assertions)]
        {
            prog.debug_assert_hazard_free();
            prog.debug_assert_peephole_clean();
            prog.debug_assert_optimizer_certificate();
        }
        prog
    }

    /// Lower a symbolic recovery plan into a program: one op per
    /// [`RecoveryStep`](dcode_core::decoder::RecoveryStep). Steps are
    /// re-grouped into dependency levels (a step whose sources include an
    /// earlier step's target lands one level past its deepest producer),
    /// so independent repairs replay concurrently under
    /// [`XorProgram::run_parallel`] while sequential replay stays
    /// byte-identical to [`crate::decode::apply_plan`].
    pub fn compile_plan(grid: Grid, plan: &RecoveryPlan) -> Self {
        // Depth of the producing step for each recovered cell; surviving
        // sources have no producer and anchor at level 0.
        let mut produced_at: Vec<Option<u32>> = vec![None; grid.len()];
        let mut levels: Vec<Vec<usize>> = Vec::new();
        for (i, step) in plan.steps.iter().enumerate() {
            let lv = step
                .sources
                .iter()
                .filter_map(|&s| produced_at[grid.index(s)])
                .max()
                .map_or(0, |deepest| deepest as usize + 1);
            if levels.len() <= lv {
                levels.resize_with(lv + 1, Vec::new);
            }
            levels[lv].push(i);
            produced_at[grid.index(step.target)] = Some(lv as u32);
        }
        let mut b = ProgramBuilder::new(grid);
        for level in levels {
            for si in level {
                let step = &plan.steps[si];
                b.op(
                    grid.index(step.target),
                    step.sources.iter().map(|&s| grid.index(s)),
                );
            }
            b.end_level();
        }
        let prog = b.finish();
        #[cfg(debug_assertions)]
        {
            prog.debug_assert_hazard_free();
            prog.debug_assert_peephole_clean();
            prog.debug_assert_optimizer_certificate();
        }
        prog
    }

    /// Grid shape this program was compiled for.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Content fingerprint (FNV-1a over the grid shape and flat arrays),
    /// computed at construction. Equal programs have equal fingerprints;
    /// the [`ScheduleCache`](crate::cache::ScheduleCache) keys fused batch
    /// programs by `(fingerprint, batch)`.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Linear grid index of the block op `op` writes.
    pub fn op_target(&self, op: usize) -> usize {
        self.targets[op] as usize
    }

    /// Linear grid indices of the blocks op `op` reads, in XOR order.
    pub fn op_sources(&self, op: usize) -> &[u32] {
        &self.sources[self.src_off[op] as usize..self.src_off[op + 1] as usize]
    }

    /// The ops of dependency level `level`, as a range into op indices.
    pub fn level_ops(&self, level: usize) -> std::ops::Range<usize> {
        self.level_off[level] as usize..self.level_off[level + 1] as usize
    }

    /// Rebuild a program from its flat arrays. Only *structural* shape is
    /// asserted (monotone offsets covering every op); the semantic
    /// invariants — hazard-free levels, in-range indices — are deliberately
    /// *not* enforced, so verification tooling (`dcode-verify`) can
    /// construct known-bad programs and prove its own checks reject them.
    pub fn from_raw_parts(
        grid: Grid,
        targets: Vec<u32>,
        src_off: Vec<u32>,
        sources: Vec<u32>,
        level_off: Vec<u32>,
    ) -> Self {
        assert_eq!(src_off.len(), targets.len() + 1, "src_off must cover ops");
        assert!(
            src_off.windows(2).all(|w| w[0] <= w[1])
                && src_off.first() == Some(&0)
                && *src_off.last().expect("non-empty") as usize == sources.len(),
            "src_off must be monotone over sources"
        );
        assert!(
            level_off.len() >= 2
                && level_off.windows(2).all(|w| w[0] <= w[1])
                && level_off.first() == Some(&0)
                && *level_off.last().expect("non-empty") as usize == targets.len(),
            "level_off must be monotone over ops"
        );
        let fingerprint = content_fingerprint(grid, &targets, &src_off, &sources, &level_off);
        XorProgram {
            grid,
            targets,
            src_off,
            sources,
            level_off,
            fingerprint,
        }
    }

    /// The program's flat arrays `(targets, src_off, sources, level_off)`,
    /// cloned out. Inverse of [`XorProgram::from_raw_parts`]; used by
    /// verification tooling to derive mutated copies.
    pub fn raw_parts(&self) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
        (
            self.targets.clone(),
            self.src_off.clone(),
            self.sources.clone(),
            self.level_off.clone(),
        )
    }

    /// Debug-build guard run by the compilers: every level must be
    /// hazard-free (no op reads or writes another same-level op's target)
    /// and every index in range, i.e. exactly the property that makes
    /// [`XorProgram::run_parallel`] safe. The full symbolic equivalence
    /// proof lives in the `dcode-verify` crate; this cheap structural
    /// check catches level-grouping bugs at the moment a program is built.
    #[cfg(debug_assertions)]
    pub(crate) fn debug_assert_hazard_free(&self) {
        let n = self.grid.len() as u32;
        for lv in 0..self.level_count() {
            let ops = self.level_ops(lv);
            let written: std::collections::BTreeSet<u32> =
                ops.clone().map(|op| self.targets[op]).collect();
            assert_eq!(
                written.len(),
                ops.len(),
                "level {lv} writes a block twice (write/write hazard)"
            );
            for op in ops {
                assert!(self.targets[op] < n, "op {op} target out of range");
                for &s in self.op_sources(op) {
                    assert!(s < n, "op {op} source out of range");
                    assert!(
                        !written.contains(&s),
                        "level {lv} op {op} reads block {s} written by the same level"
                    );
                }
            }
        }
    }

    /// Debug-build guard run by the compilers alongside the hazard check:
    /// no compiled op may be empty, list a source twice, or clone an
    /// earlier op (same target, same source set). These are exactly the
    /// cheap structural facets of the peephole lints in `dcode-analyze`;
    /// the full pass (dead writes, CSE across targets, working-set
    /// estimates) runs there, where layout context is available.
    #[cfg(debug_assertions)]
    pub(crate) fn debug_assert_peephole_clean(&self) {
        let mut seen: std::collections::BTreeSet<(u32, Vec<u32>)> =
            std::collections::BTreeSet::new();
        for op in 0..self.op_count() {
            let sources = self.op_sources(op);
            assert!(!sources.is_empty(), "op {op} has no sources");
            let mut sorted = sources.to_vec();
            sorted.sort_unstable();
            assert!(
                sorted.windows(2).all(|w| w[0] != w[1]),
                "op {op} lists a source block twice"
            );
            assert!(
                seen.insert((self.targets[op], sorted)),
                "op {op} is a clone of an earlier op (redundant work)"
            );
        }
    }

    /// Debug-build recheck run by the compilers after the structural
    /// guards: the default optimizer pipeline must emit a *holding*
    /// cost-delta certificate for every freshly compiled program —
    /// symbolic GF(2) equivalence on all written blocks and no cost
    /// metric regressed. Compiled programs are lint-clean, so the
    /// pipeline is also expected to be the identity on them; `holds()`
    /// is the contract this assert enforces.
    #[cfg(debug_assertions)]
    fn debug_assert_optimizer_certificate(&self) {
        let opt = crate::opt::optimize(self, None, &crate::opt::OptConfig::default());
        assert!(
            opt.certificate.holds(),
            "freshly compiled program failed its optimizer certificate"
        );
    }

    /// Number of XOR operations (target blocks written).
    pub fn op_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of dependency levels.
    pub fn level_count(&self) -> usize {
        self.level_off.len() - 1
    }

    /// Total source-block reads across all ops.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Replay the program over `stripe` sequentially.
    pub fn run(&self, stripe: &mut Stripe) {
        self.check(stripe);
        for op in 0..self.targets.len() {
            self.exec_op(op, stripe);
        }
    }

    /// Replay the program with up to `threads` worker threads from the
    /// process-wide [`minipool::global`] pool. Byte-identical to
    /// [`XorProgram::run`]. Convenience wrapper over
    /// [`XorProgram::run_pooled`] for programs not already held in an
    /// `Arc`; it clones the program once per call, so steady-state callers
    /// (the schedule cache, `encode_parallel`) hold `Arc<XorProgram>` and
    /// call `run_pooled` directly.
    pub fn run_parallel(&self, stripe: &mut Stripe, threads: usize) {
        let threads = threads.max(1);
        if threads == 1 {
            return self.run(stripe);
        }
        let this = Arc::new(self.clone());
        Self::run_pooled(&this, stripe, minipool::global(), threads);
    }

    /// Replay the program with up to `threads` workers of `pool`: within
    /// each dependency level, target blocks are detached from the stripe
    /// and ops fan out as jobs over the persistent pool, reading the
    /// remaining blocks through a shared [`Arc`]. Byte-identical to
    /// [`XorProgram::run`].
    ///
    /// No threads are spawned per call (the pool's workers are parked
    /// between calls) and nothing per-op is allocated: the stripe's block
    /// vector is moved — not copied — into an `Arc` for the duration of
    /// the call, and every worker job proves it dropped its clone before
    /// its result is received, so the storage moves back out without ever
    /// being reallocated.
    ///
    /// `threads` is the requested fan-out and is honored as given (capped
    /// at the level's op count); callers that want to avoid oversubscribing
    /// the host clamp with [`minipool::effective_parallelism`] first, as
    /// [`encode_parallel`](crate::encode::encode_parallel) does.
    pub fn run_pooled(this: &Arc<Self>, stripe: &mut Stripe, pool: &WorkerPool, threads: usize) {
        let threads = threads.max(1);
        if threads == 1 {
            return this.run(stripe);
        }
        this.check(stripe);
        // Move the stripe's storage into an Arc once; workers share it
        // read-only, and between levels (all clones provably dropped)
        // `Arc::get_mut` hands back exclusive access for detach/reattach.
        let mut storage: Arc<Vec<Box<[u8]>>> = Arc::new(stripe.take_storage());
        for lv in 0..this.level_count() {
            let (lo, hi) = (this.level_off[lv] as usize, this.level_off[lv + 1] as usize);
            let n_ops = hi - lo;
            let blocks = Arc::get_mut(&mut storage).expect("workers dropped their storage clones");
            if n_ops <= 1 {
                for op in lo..hi {
                    let target = this.targets[op] as usize;
                    let mut out = std::mem::take(&mut blocks[target]);
                    this.gather_in(op, &mut out, blocks);
                    blocks[target] = out;
                }
                continue;
            }
            // Detach every target of this level, then fan chunks of
            // (op, target block) out as owned jobs against the shared
            // read-only storage.
            let mut taken: Vec<(usize, Box<[u8]>)> = (lo..hi)
                .map(|op| (op, std::mem::take(&mut blocks[this.targets[op] as usize])))
                .collect();
            let workers = threads.min(n_ops);
            let chunk = n_ops.div_ceil(workers);
            let mut jobs = Vec::with_capacity(workers);
            while !taken.is_empty() {
                let mut part: Vec<(usize, Box<[u8]>)> =
                    taken.drain(..chunk.min(taken.len())).collect();
                let prog = Arc::clone(this);
                let store = Arc::clone(&storage);
                jobs.push(move || {
                    for (op, out) in &mut part {
                        prog.gather_in(*op, out, &store);
                    }
                    part
                });
            }
            let done = pool.run(jobs);
            let blocks = Arc::get_mut(&mut storage).expect("workers dropped their storage clones");
            for part in done {
                for (op, out) in part {
                    let target = this.targets[op] as usize;
                    debug_assert!(blocks[target].is_empty(), "target reattached twice");
                    blocks[target] = out;
                }
            }
        }
        stripe.restore_storage(
            Arc::try_unwrap(storage).expect("workers dropped their storage clones"),
        );
    }

    fn exec_op(&self, op: usize, stripe: &mut Stripe) {
        let target = self.targets[op] as usize;
        let mut out = stripe.take_block_at(target);
        self.gather(op, &mut out, stripe);
        stripe.put_block_at(target, out);
    }

    fn gather(&self, op: usize, out: &mut [u8], stripe: &Stripe) {
        let (lo, hi) = (self.src_off[op] as usize, self.src_off[op + 1] as usize);
        xor_gather_into(out, &self.sources[lo..hi], |i| stripe.block_at(i as usize));
    }

    /// [`XorProgram::gather`] against a bare block vector (linear grid
    /// index order) instead of a [`Stripe`] — the pooled executor's form.
    fn gather_in(&self, op: usize, out: &mut [u8], blocks: &[Box<[u8]>]) {
        let (lo, hi) = (self.src_off[op] as usize, self.src_off[op + 1] as usize);
        xor_gather_into(out, &self.sources[lo..hi], |i| &*blocks[i as usize]);
    }

    fn check(&self, stripe: &Stripe) {
        assert_eq!(
            stripe.grid(),
            self.grid,
            "stripe shape does not match the compiled program"
        );
    }
}

/// Accumulates ops and level boundaries into the flat arrays.
struct ProgramBuilder {
    grid: Grid,
    targets: Vec<u32>,
    src_off: Vec<u32>,
    sources: Vec<u32>,
    level_off: Vec<u32>,
}

impl ProgramBuilder {
    fn new(grid: Grid) -> Self {
        ProgramBuilder {
            grid,
            targets: Vec::new(),
            src_off: vec![0],
            sources: Vec::new(),
            level_off: vec![0],
        }
    }

    fn op(&mut self, target: usize, sources: impl Iterator<Item = usize>) {
        self.targets.push(target as u32);
        for s in sources {
            debug_assert_ne!(s, target, "op target among its own sources");
            self.sources.push(s as u32);
        }
        self.src_off.push(self.sources.len() as u32);
    }

    fn end_level(&mut self) {
        // Empty levels carry no information; skip them so level_count
        // reflects real dependency depth.
        if *self.level_off.last().expect("seeded with 0") != self.targets.len() as u32 {
            self.level_off.push(self.targets.len() as u32);
        }
    }

    fn finish(mut self) -> XorProgram {
        self.end_level();
        if self.level_off.len() == 1 {
            // Zero-op program still needs a valid (empty) level table.
            self.level_off.push(0);
        }
        let fingerprint = content_fingerprint(
            self.grid,
            &self.targets,
            &self.src_off,
            &self.sources,
            &self.level_off,
        );
        XorProgram {
            grid: self.grid,
            targets: self.targets,
            src_off: self.src_off,
            sources: self.sources,
            level_off: self.level_off,
            fingerprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::apply_plan_naive;
    use crate::encode::{encode_naive, verify_parities};
    use dcode_baselines::registry::all_codes;
    use dcode_core::decoder::plan_column_recovery;

    fn payload(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 55) as u8
            })
            .collect()
    }

    #[test]
    fn compiled_encode_matches_naive_for_every_code() {
        for p in [5usize, 7] {
            for layout in all_codes(p) {
                let data = payload(layout.data_len() * 24, p as u64);
                let mut naive = Stripe::from_data(&layout, 24, &data);
                let mut compiled = naive.clone();
                encode_naive(&layout, &mut naive);
                let program = XorProgram::compile_encode(&layout);
                program.run(&mut compiled);
                assert_eq!(compiled, naive, "{} p={p}", layout.name());
                assert!(verify_parities(&layout, &compiled));
            }
        }
    }

    #[test]
    fn parallel_replay_matches_sequential() {
        for layout in all_codes(7) {
            let data = payload(layout.data_len() * 32, 99);
            let mut seq = Stripe::from_data(&layout, 32, &data);
            let program = XorProgram::compile_encode(&layout);
            program.run(&mut seq);
            for threads in [2usize, 3, 8] {
                let mut par = Stripe::from_data(&layout, 32, &data);
                program.run_parallel(&mut par, threads);
                assert_eq!(par, seq, "{} threads={threads}", layout.name());
            }
        }
    }

    #[test]
    fn compiled_plan_matches_naive_replay() {
        for layout in all_codes(5) {
            let data = payload(layout.data_len() * 16, 3);
            let mut golden = Stripe::from_data(&layout, 16, &data);
            encode_naive(&layout, &mut golden);
            for c1 in 0..layout.disks() {
                for c2 in c1 + 1..layout.disks() {
                    let plan = plan_column_recovery(&layout, &[c1, c2]).unwrap();
                    let program = XorProgram::compile_plan(layout.grid(), &plan);
                    assert_eq!(program.op_count(), plan.steps.len());

                    let mut naive = golden.clone();
                    naive.erase_columns(&[c1, c2]);
                    apply_plan_naive(&mut naive, &plan);

                    let mut compiled = golden.clone();
                    compiled.erase_columns(&[c1, c2]);
                    program.run(&mut compiled);
                    assert_eq!(compiled, naive, "{} cols=({c1},{c2})", layout.name());
                    assert_eq!(compiled, golden, "{} cols=({c1},{c2})", layout.name());

                    let mut par = golden.clone();
                    par.erase_columns(&[c1, c2]);
                    program.run_parallel(&mut par, 4);
                    assert_eq!(par, golden, "{} cols=({c1},{c2}) parallel", layout.name());
                }
            }
        }
    }

    #[test]
    fn program_shape_reflects_dependency_depth() {
        // D-Code's two parity families are independent: one level.
        let d = dcode_core::dcode::dcode(7).unwrap();
        let prog = XorProgram::compile_encode(&d);
        assert_eq!(prog.level_count(), 1);
        assert_eq!(prog.op_count(), d.equations().len());
        // RDP's diagonal parity reads row parity: at least two levels.
        let rdp = dcode_baselines::rdp::rdp(7).unwrap();
        assert!(XorProgram::compile_encode(&rdp).level_count() >= 2);
    }

    #[test]
    fn parallel_replay_with_more_threads_than_ops() {
        // A level with fewer ops than worker threads must still replay
        // correctly (each worker gets a ≥1-op chunk; the surplus threads
        // are simply never spawned).
        for layout in all_codes(5) {
            let data = payload(layout.data_len() * 16, 11);
            let mut seq = Stripe::from_data(&layout, 16, &data);
            let program = XorProgram::compile_encode(&layout);
            program.run(&mut seq);
            let max_level_ops = (0..program.level_count())
                .map(|lv| program.level_ops(lv).len())
                .max()
                .unwrap();
            for threads in [max_level_ops + 1, 64] {
                let mut par = Stripe::from_data(&layout, 16, &data);
                program.run_parallel(&mut par, threads);
                assert_eq!(par, seq, "{} threads={threads}", layout.name());
            }
        }
    }

    #[test]
    fn pooled_replay_matches_sequential_on_a_dedicated_pool() {
        // Exercises the pool machinery with real fan-out regardless of the
        // host's core count (the pool honors the explicit thread request).
        let pool = minipool::WorkerPool::with_workers(4);
        for layout in all_codes(7) {
            let data = payload(layout.data_len() * 32, 123);
            let mut seq = Stripe::from_data(&layout, 32, &data);
            let program = Arc::new(XorProgram::compile_encode(&layout));
            program.run(&mut seq);
            for threads in [2usize, 4, 64] {
                let mut par = Stripe::from_data(&layout, 32, &data);
                XorProgram::run_pooled(&program, &mut par, &pool, threads);
                assert_eq!(par, seq, "{} threads={threads}", layout.name());
            }
        }
        // The same pool replays recovery programs too.
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let data = payload(layout.data_len() * 32, 5);
        let mut golden = Stripe::from_data(&layout, 32, &data);
        encode_naive(&layout, &mut golden);
        let plan = plan_column_recovery(&layout, &[1, 4]).unwrap();
        let program = Arc::new(XorProgram::compile_plan(layout.grid(), &plan));
        let mut lost = golden.clone();
        lost.erase_columns(&[1, 4]);
        XorProgram::run_pooled(&program, &mut lost, &pool, 3);
        assert_eq!(lost, golden);
    }

    #[test]
    fn raw_parts_roundtrip() {
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let prog = XorProgram::compile_encode(&layout);
        let (targets, src_off, sources, level_off) = prog.raw_parts();
        let rebuilt = XorProgram::from_raw_parts(prog.grid(), targets, src_off, sources, level_off);
        assert_eq!(rebuilt, prog);
        assert_eq!(rebuilt.fingerprint(), prog.fingerprint());
    }

    #[test]
    fn fingerprint_is_content_determined() {
        let d7 = XorProgram::compile_encode(&dcode_core::dcode::dcode(7).unwrap());
        let d7b = XorProgram::compile_encode(&dcode_core::dcode::dcode(7).unwrap());
        let d5 = XorProgram::compile_encode(&dcode_core::dcode::dcode(5).unwrap());
        assert_eq!(d7.fingerprint(), d7b.fingerprint());
        assert_ne!(d7.fingerprint(), d5.fingerprint());
        // A one-index mutation must move the fingerprint.
        let (mut targets, src_off, sources, level_off) = d7.raw_parts();
        targets.swap(0, 1);
        let mutated = XorProgram::from_raw_parts(d7.grid(), targets, src_off, sources, level_off);
        assert_ne!(mutated.fingerprint(), d7.fingerprint());
    }

    #[test]
    #[should_panic]
    fn mismatched_stripe_shape_is_rejected() {
        let l5 = dcode_core::dcode::dcode(5).unwrap();
        let l7 = dcode_core::dcode::dcode(7).unwrap();
        let program = XorProgram::compile_encode(&l5);
        let mut stripe = Stripe::zeroed(&l7, 8);
        program.run(&mut stripe);
    }
}
