//! Full-stripe encoding.
//!
//! [`encode`] replays the layout's compiled
//! [`XorProgram`](crate::schedule::XorProgram) — flat index arrays, no
//! per-equation allocation — fetched from the process-wide
//! [`ScheduleCache`](crate::cache::ScheduleCache), so only the *first*
//! encode of a layout pays the compile; every later call is a cache hit.
//! [`encode_naive`] keeps the original interpreter (walk `encode_order`,
//! accumulate each equation into a fresh buffer) as the differential-test
//! oracle: the two are byte-identical. [`encode_parallel`] replays the
//! same cached program over the persistent worker pool, fanning each
//! dependency level out over detached target blocks — data-race freedom
//! by construction, no thread spawned per call.

use crate::cache;
use crate::schedule::XorProgram;
use crate::stripe::Stripe;
use crate::xor::{xor_gather_into, xor_into};
use dcode_core::layout::CodeLayout;

/// Compute every parity block sequentially via a compiled schedule
/// (memoized in the global [`cache`]; steady-state calls compile nothing).
pub fn encode(layout: &CodeLayout, stripe: &mut Stripe) {
    cache::global().encode_program(layout).run(stripe);
}

/// The original interpreter: evaluate every equation in dependency order,
/// each into a fresh accumulator. Kept as the differential-test oracle for
/// [`encode`] — outputs are byte-identical.
pub fn encode_naive(layout: &CodeLayout, stripe: &mut Stripe) {
    for &eq_idx in layout.encode_order() {
        let eq = layout.equation(eq_idx);
        let mut acc = vec![0u8; stripe.block_size()];
        for &m in &eq.members {
            xor_into(&mut acc, stripe.block(m));
        }
        stripe.block_mut(eq.parity).copy_from_slice(&acc);
    }
}

/// Group equation indices into dependency levels: an equation whose members
/// include a parity of level `k` lands in level `k+1` or later.
///
/// Thin wrapper over [`CodeLayout::dependency_levels`], where the logic now
/// lives (the schedule compiler in `dcode-core`-adjacent layers needs it
/// too); kept here for API continuity.
pub fn dependency_levels(layout: &CodeLayout) -> Vec<Vec<usize>> {
    layout.dependency_levels()
}

/// Compute every parity block with up to `threads` worker threads by
/// replaying the cached compiled schedule level-by-level over the
/// process-wide persistent pool.
///
/// Produces byte-identical results to [`encode`]. The program is fetched
/// from the global [`cache`] (compiled once per layout, ever) and the
/// requested fan-out is clamped to the host's available parallelism —
/// asking for 8 threads on a 2-core box runs 2 wide, and on a single-core
/// host this takes the sequential path outright (fan-out beyond the
/// hardware is pure synchronization overhead).
pub fn encode_parallel(layout: &CodeLayout, stripe: &mut Stripe, threads: usize) {
    let program = cache::global().encode_program(layout);
    let threads = minipool::effective_parallelism(threads);
    XorProgram::run_pooled(&program, stripe, minipool::global(), threads);
}

/// Evaluate one equation into a fresh buffer (read-only stripe access).
fn eval_equation(layout: &CodeLayout, stripe: &Stripe, eq_idx: usize) -> Vec<u8> {
    let eq = layout.equation(eq_idx);
    let mut acc = vec![0u8; stripe.block_size()];
    xor_gather_into(&mut acc, &eq.members, |m| stripe.block(m));
    acc
}

/// Verify that every parity block equals the XOR of its members — the
/// stripe-level consistency check used throughout the test suites.
pub fn verify_parities(layout: &CodeLayout, stripe: &Stripe) -> bool {
    layout.equations().iter().enumerate().all(|(i, eq)| {
        let acc = eval_equation(layout, stripe, i);
        acc.as_slice() == stripe.block(eq.parity)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;
    use dcode_core::dcode::dcode;

    fn pseudo_random_payload(len: usize, seed: u64) -> Vec<u8> {
        // Small deterministic LCG — keeps rand out of the unit tests.
        let mut x = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (x >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn encode_satisfies_all_equations_for_every_code() {
        for p in [5usize, 7] {
            for layout in all_codes(p) {
                let payload = pseudo_random_payload(layout.data_len() * 16, p as u64);
                let mut s = Stripe::from_data(&layout, 16, &payload);
                assert!(!verify_parities(&layout, &s), "{}", layout.name());
                encode(&layout, &mut s);
                assert!(verify_parities(&layout, &s), "{}", layout.name());
                // Data untouched by encoding.
                assert_eq!(s.data_bytes(&layout), payload);
            }
        }
    }

    #[test]
    fn compiled_encode_matches_naive_oracle() {
        for p in [5usize, 7] {
            for layout in all_codes(p) {
                let payload = pseudo_random_payload(layout.data_len() * 24, 17 + p as u64);
                let mut naive = Stripe::from_data(&layout, 24, &payload);
                let mut compiled = naive.clone();
                encode_naive(&layout, &mut naive);
                encode(&layout, &mut compiled);
                assert_eq!(compiled, naive, "{} p={p}", layout.name());
            }
        }
    }

    #[test]
    fn parallel_encode_matches_sequential() {
        for p in [5usize, 7, 11] {
            for layout in all_codes(p) {
                let payload = pseudo_random_payload(layout.data_len() * 64, 42 + p as u64);
                let base = Stripe::from_data(&layout, 64, &payload);
                let mut seq = base.clone();
                encode(&layout, &mut seq);
                for threads in [1usize, 2, 4, 8] {
                    let mut s = base.clone();
                    encode_parallel(&layout, &mut s, threads);
                    assert_eq!(s, seq, "{} threads={threads}", layout.name());
                }
            }
        }
    }

    #[test]
    fn parallel_encode_never_recompiles_in_steady_state() {
        // Regression test for the per-call `compile_encode` this module
        // used to do: after a warm-up call, repeated encodes must be pure
        // cache hits (miss counter frozen for this thread's calls would be
        // racy under parallel tests, so the deterministic proof is pointer
        // identity — the cache hands back the same Arc'd program, and
        // `encode_parallel` routes through that cache).
        use std::sync::Arc;
        let layout = dcode(7).unwrap();
        let mut s = Stripe::zeroed(&layout, 16);
        encode_parallel(&layout, &mut s, 4); // warm: compiles at most once
        let a = cache::global().encode_program(&layout);
        let hits_before = cache::global().stats().hits;
        encode_parallel(&layout, &mut s, 4);
        encode(&layout, &mut s);
        let b = cache::global().encode_program(&layout);
        assert!(Arc::ptr_eq(&a, &b), "steady-state encode recompiled");
        assert!(
            cache::global().stats().hits >= hits_before + 3,
            "encode paths bypassed the schedule cache"
        );
    }

    #[test]
    fn dependency_levels_respect_rdp_cascade() {
        let rdp = dcode_baselines::rdp::rdp(7).unwrap();
        let levels = dependency_levels(&rdp);
        // RDP needs (at least) two levels: row parities then diagonals.
        assert!(levels.len() >= 2);
        // D-Code's parities are independent: single level.
        let d = dcode(7).unwrap();
        assert_eq!(dependency_levels(&d).len(), 1);
    }

    #[test]
    fn zero_stripe_encodes_to_zero_parities() {
        let layout = dcode(5).unwrap();
        let mut s = Stripe::zeroed(&layout, 8);
        encode(&layout, &mut s);
        for cell in layout.parity_cells() {
            assert!(s.block(cell).iter().all(|&b| b == 0));
        }
    }
}
