//! Full-stripe encoding.
//!
//! [`encode`] evaluates every parity equation over the stripe's blocks in
//! dependency order (RDP's diagonal parities read its row parities, so
//! order matters). [`encode_parallel`] does the same work with crossbeam
//! scoped threads: equations are grouped into dependency *levels*, and
//! within a level every parity block is computed concurrently into a fresh
//! buffer from read-only stripe state, then written back — data-race
//! freedom by construction, in the spirit of the parallel-iterator idioms
//! the HPC guides recommend.

use crate::stripe::Stripe;
use crate::xor::xor_into;
use dcode_core::grid::CellKind;
use dcode_core::layout::CodeLayout;

/// Compute every parity block sequentially, in dependency order.
pub fn encode(layout: &CodeLayout, stripe: &mut Stripe) {
    for &eq_idx in layout.encode_order() {
        let eq = layout.equation(eq_idx);
        let mut acc = vec![0u8; stripe.block_size()];
        for &m in &eq.members {
            xor_into(&mut acc, stripe.block(m));
        }
        stripe.block_mut(eq.parity).copy_from_slice(&acc);
    }
}

/// Group equation indices into dependency levels: an equation whose members
/// include a parity of level `k` lands in level `k+1` or later.
pub fn dependency_levels(layout: &CodeLayout) -> Vec<Vec<usize>> {
    let n_eq = layout.equations().len();
    let mut level = vec![0usize; n_eq];
    // encode_order is topologically sorted, so one pass suffices.
    for &eq_idx in layout.encode_order() {
        let eq = layout.equation(eq_idx);
        let mut lv = 0;
        for &m in &eq.members {
            if let CellKind::Parity(dep) = layout.kind(m) {
                lv = lv.max(level[dep] + 1);
            }
        }
        level[eq_idx] = lv;
    }
    let max_level = level.iter().copied().max().unwrap_or(0);
    let mut groups = vec![Vec::new(); max_level + 1];
    for (eq_idx, &lv) in level.iter().enumerate() {
        groups[lv].push(eq_idx);
    }
    groups
}

/// Compute every parity block with up to `threads` worker threads.
///
/// Produces byte-identical results to [`encode`].
pub fn encode_parallel(layout: &CodeLayout, stripe: &mut Stripe, threads: usize) {
    let threads = threads.max(1);
    for group in dependency_levels(layout) {
        // Compute all parities of this level from read-only stripe state.
        let results: Vec<(usize, Vec<u8>)> = if threads == 1 || group.len() == 1 {
            group
                .iter()
                .map(|&eq_idx| (eq_idx, eval_equation(layout, stripe, eq_idx)))
                .collect()
        } else {
            let chunk = group.len().div_ceil(threads);
            let stripe_ref = &*stripe;
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = group
                    .chunks(chunk)
                    .map(|eqs| {
                        s.spawn(move |_| {
                            eqs.iter()
                                .map(|&eq_idx| (eq_idx, eval_equation(layout, stripe_ref, eq_idx)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("encode worker panicked"))
                    .collect()
            })
            .expect("crossbeam scope failed")
        };
        // Write the level's parities back.
        for (eq_idx, buf) in results {
            stripe
                .block_mut(layout.equation(eq_idx).parity)
                .copy_from_slice(&buf);
        }
    }
}

/// Evaluate one equation into a fresh buffer (read-only stripe access).
fn eval_equation(layout: &CodeLayout, stripe: &Stripe, eq_idx: usize) -> Vec<u8> {
    let eq = layout.equation(eq_idx);
    let mut acc = vec![0u8; stripe.block_size()];
    for &m in &eq.members {
        xor_into(&mut acc, stripe.block(m));
    }
    acc
}

/// Verify that every parity block equals the XOR of its members — the
/// stripe-level consistency check used throughout the test suites.
pub fn verify_parities(layout: &CodeLayout, stripe: &Stripe) -> bool {
    layout.equations().iter().enumerate().all(|(i, eq)| {
        let acc = eval_equation(layout, stripe, i);
        acc.as_slice() == stripe.block(eq.parity)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;
    use dcode_core::dcode::dcode;

    fn pseudo_random_payload(len: usize, seed: u64) -> Vec<u8> {
        // Small deterministic LCG — keeps rand out of the unit tests.
        let mut x = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (x >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn encode_satisfies_all_equations_for_every_code() {
        for p in [5usize, 7] {
            for layout in all_codes(p) {
                let payload = pseudo_random_payload(layout.data_len() * 16, p as u64);
                let mut s = Stripe::from_data(&layout, 16, &payload);
                assert!(!verify_parities(&layout, &s), "{}", layout.name());
                encode(&layout, &mut s);
                assert!(verify_parities(&layout, &s), "{}", layout.name());
                // Data untouched by encoding.
                assert_eq!(s.data_bytes(&layout), payload);
            }
        }
    }

    #[test]
    fn parallel_encode_matches_sequential() {
        for p in [5usize, 7, 11] {
            for layout in all_codes(p) {
                let payload = pseudo_random_payload(layout.data_len() * 64, 42 + p as u64);
                let mut seq = Stripe::from_data(&layout, 64, &payload);
                let mut par = seq.clone();
                encode(&layout, &mut seq);
                for threads in [1usize, 2, 4, 8] {
                    let mut s = par.clone();
                    encode_parallel(&layout, &mut s, threads);
                    assert_eq!(s, seq, "{} threads={threads}", layout.name());
                }
                par = seq; // silence unused warning path
                let _ = par;
            }
        }
    }

    #[test]
    fn dependency_levels_respect_rdp_cascade() {
        let rdp = dcode_baselines::rdp::rdp(7).unwrap();
        let levels = dependency_levels(&rdp);
        // RDP needs (at least) two levels: row parities then diagonals.
        assert!(levels.len() >= 2);
        // D-Code's parities are independent: single level.
        let d = dcode(7).unwrap();
        assert_eq!(dependency_levels(&d).len(), 1);
    }

    #[test]
    fn zero_stripe_encodes_to_zero_parities() {
        let layout = dcode(5).unwrap();
        let mut s = Stripe::zeroed(&layout, 8);
        encode(&layout, &mut s);
        for cell in layout.parity_cells() {
            assert!(s.block(cell).iter().all(|&b| b == 0));
        }
    }
}
