//! Partial-stripe writes (read-modify-write).
//!
//! Updating a data element in a live array does not re-encode the stripe:
//! the controller reads the old data, computes `delta = old ⊕ new`, writes
//! the new data, and folds the delta into every affected parity. When a
//! parity itself feeds other parities (RDP's diagonals cover its row
//! parities; HDP's anti-diagonals cover its horizontal parities) the delta
//! cascades — exactly the effect the D-Code paper's I/O-cost evaluation
//! measures. [`write_logical`] performs the delta propagation in equation
//! dependency order and returns which blocks were touched, so the I/O
//! simulator's accounting can be validated against the real engine.

use crate::stripe::Stripe;
use crate::xor::{xor_gather_into, xor_into};
use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use std::collections::BTreeMap;

/// Outcome of a partial-stripe write: every block the engine had to read
/// and write beyond the data blocks themselves.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WriteReceipt {
    /// Data cells written (logical range mapped to the grid).
    pub data_written: Vec<Cell>,
    /// Parity cells rewritten, in the order they were folded.
    pub parities_written: Vec<Cell>,
}

impl WriteReceipt {
    /// Total element I/Os under the read-modify-write accounting the paper
    /// uses: each touched element is read once (old value) and written once
    /// (new value).
    pub fn element_ios(&self) -> usize {
        2 * (self.data_written.len() + self.parities_written.len())
    }
}

/// Write `bytes` over the logical data range starting at element
/// `logical_start`, updating all affected parities via delta propagation.
///
/// `bytes.len()` must be a multiple of the block size; the write spans
/// `bytes.len() / block_size` consecutive logical elements and must fit in
/// the stripe.
pub fn write_logical(
    layout: &CodeLayout,
    stripe: &mut Stripe,
    logical_start: usize,
    bytes: &[u8],
) -> WriteReceipt {
    let bs = stripe.block_size();
    assert!(
        bytes.len() % bs == 0,
        "write length {} is not a multiple of the block size {bs}",
        bytes.len()
    );
    let count = bytes.len() / bs;
    assert!(
        logical_start + count <= layout.data_len(),
        "write [{logical_start}, {}) exceeds stripe data length {}",
        logical_start + count,
        layout.data_len()
    );

    // Per-cell accumulated deltas. Data deltas seed the map; parity deltas
    // are derived in encode order so cascades resolve exactly once.
    let mut deltas: BTreeMap<Cell, Vec<u8>> = BTreeMap::new();
    let mut data_written = Vec::with_capacity(count);
    for (i, chunk) in bytes.chunks(bs).enumerate() {
        let cell = layout.logical_to_cell(logical_start + i);
        let mut delta = stripe.snapshot(cell);
        xor_into(&mut delta, chunk);
        // Recorded even when the delta is all-zero: the paper's accounting
        // counts the write even if the new content equals the old.
        deltas.insert(cell, delta);
        stripe.block_mut(cell).copy_from_slice(chunk);
        data_written.push(cell);
    }

    let mut parities_written = Vec::new();
    for &eq_idx in layout.encode_order() {
        let eq = layout.equation(eq_idx);
        let mut parity_delta: Option<Vec<u8>> = None;
        for m in &eq.members {
            if let Some(d) = deltas.get(m) {
                match &mut parity_delta {
                    Some(acc) => xor_into(acc, d),
                    None => parity_delta = Some(d.clone()),
                }
            }
        }
        if let Some(d) = parity_delta {
            xor_into(stripe.block_mut(eq.parity), &d);
            parities_written.push(eq.parity);
            // The parity's own change may feed later equations (cascade).
            deltas.insert(eq.parity, d);
        }
    }

    WriteReceipt {
        data_written,
        parities_written,
    }
}

/// Write `bytes` via **reconstruct-write**: overwrite the data range, then
/// recompute every affected parity *from scratch* out of the full member
/// sets (no old-value reads of the written data). For large writes this
/// beats read-modify-write — the crossover is the classic small-write
/// trade-off, measured by the `write_policy` study — and the result is
/// byte-identical to [`write_logical`].
///
/// The receipt's `data_written`/`parities_written` have the same meaning,
/// but the I/O accounting differs: reconstruct-write reads the *untouched*
/// members of each affected parity instead of the old data and parity
/// values. [`WriteReceipt::element_ios`] is therefore not meaningful here;
/// use [`reconstruct_write_ios`] for the cost model.
pub fn write_logical_reconstruct(
    layout: &CodeLayout,
    stripe: &mut Stripe,
    logical_start: usize,
    bytes: &[u8],
) -> WriteReceipt {
    let bs = stripe.block_size();
    assert!(
        bytes.len() % bs == 0,
        "write length {} is not a multiple of the block size {bs}",
        bytes.len()
    );
    let count = bytes.len() / bs;
    assert!(
        logical_start + count <= layout.data_len(),
        "write [{logical_start}, {}) exceeds stripe data length {}",
        logical_start + count,
        layout.data_len()
    );

    let mut data_written = Vec::with_capacity(count);
    for (i, chunk) in bytes.chunks(bs).enumerate() {
        let cell = layout.logical_to_cell(logical_start + i);
        stripe.block_mut(cell).copy_from_slice(chunk);
        data_written.push(cell);
    }

    // Recompute affected parities from full member sets, in encode order so
    // cascaded parities see fresh inputs. The parity block is detached and
    // used as the accumulator directly (an equation never contains its own
    // parity), so no scratch buffer is allocated.
    let affected = layout.update_closure(&data_written);
    let grid = stripe.grid();
    let mut parities_written = Vec::new();
    for &eq_idx in layout.encode_order() {
        let eq = layout.equation(eq_idx);
        if !affected.contains(&eq.parity) {
            continue;
        }
        let parity_idx = grid.index(eq.parity);
        let mut acc = stripe.take_block_at(parity_idx);
        xor_gather_into(&mut acc, &eq.members, |m| stripe.block(m));
        stripe.put_block_at(parity_idx, acc);
        parities_written.push(eq.parity);
    }
    WriteReceipt {
        data_written,
        parities_written,
    }
}

/// Element I/Os of a reconstruct-write: the data writes, the parity writes,
/// and one read per *unmodified* member of each recomputed parity
/// (modified members and already-recomputed parities are in memory).
pub fn reconstruct_write_ios(layout: &CodeLayout, logical_start: usize, count: usize) -> usize {
    use std::collections::BTreeSet;
    let written: BTreeSet<Cell> = (logical_start..logical_start + count)
        .map(|i| layout.logical_to_cell(i))
        .collect();
    let affected = layout.update_closure(&written.iter().copied().collect::<Vec<_>>());
    let mut reads: BTreeSet<Cell> = BTreeSet::new();
    for &parity in &affected {
        let eq_idx = layout
            .storing_eq(parity)
            .expect("closure contains parities");
        for &m in &layout.equation(eq_idx).members {
            if !written.contains(&m) && !affected.contains(&m) {
                reads.insert(m);
            }
        }
    }
    written.len() + affected.len() + reads.len()
}

/// The set of parity cells a write to the given logical range will touch —
/// pure accounting, no data movement. Matches [`write_logical`]'s receipt
/// (it is [`CodeLayout::update_closure`] over the range's cells).
pub fn affected_parities(layout: &CodeLayout, logical_start: usize, count: usize) -> Vec<Cell> {
    let cells: Vec<Cell> = (logical_start..logical_start + count)
        .map(|i| layout.logical_to_cell(i))
        .collect();
    layout.update_closure(&cells).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode, verify_parities};
    use dcode_baselines::registry::all_codes;

    fn payload(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 40) as u8
            })
            .collect()
    }

    #[test]
    fn delta_update_equals_full_reencode() {
        for p in [5usize, 7] {
            for layout in all_codes(p) {
                let bs = 16;
                let data = payload(layout.data_len() * bs, 3 * p as u64);
                let mut live = Stripe::from_data(&layout, bs, &data);
                encode(&layout, &mut live);

                // Overwrite a range via delta updates.
                let start = 3.min(layout.data_len() - 1);
                let count = 5.min(layout.data_len() - start);
                let new_bytes = payload(count * bs, 99);
                let receipt = write_logical(&layout, &mut live, start, &new_bytes);
                assert!(verify_parities(&layout, &live), "{} p={p}", layout.name());

                // Full re-encode from the updated data must agree.
                let mut fresh = Stripe::from_data(&layout, bs, &live.data_bytes(&layout));
                encode(&layout, &mut fresh);
                assert_eq!(live, fresh, "{} p={p}", layout.name());

                // Receipt parities match the symbolic closure.
                let mut expect = affected_parities(&layout, start, count);
                let mut got = receipt.parities_written.clone();
                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, expect, "{} p={p}", layout.name());
            }
        }
    }

    #[test]
    fn single_element_write_touches_two_parities_for_dcode() {
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let bs = 8;
        let mut s = Stripe::from_data(&layout, bs, &payload(layout.data_len() * bs, 1));
        encode(&layout, &mut s);
        let receipt = write_logical(&layout, &mut s, 10, &payload(bs, 2));
        assert_eq!(receipt.parities_written.len(), 2);
        assert_eq!(receipt.element_ios(), 2 * (1 + 2));
    }

    #[test]
    fn rdp_single_write_cascades_past_two_parities() {
        let layout = dcode_baselines::rdp::rdp(7).unwrap();
        let bs = 8;
        let mut s = Stripe::from_data(&layout, bs, &payload(layout.data_len() * bs, 1));
        encode(&layout, &mut s);
        // Element whose row parity feeds a stored diagonal: most do in RDP.
        let worst = (0..layout.data_len())
            .map(|i| write_logical(&layout, &mut s.clone(), i, &payload(bs, i as u64 + 9)))
            .map(|r| r.parities_written.len())
            .max()
            .unwrap();
        assert!(worst >= 3, "RDP must cascade: worst={worst}");
    }

    #[test]
    fn reconstruct_write_equals_rmw_for_every_code() {
        for p in [5usize, 7] {
            for layout in all_codes(p) {
                let bs = 16;
                let data = payload(layout.data_len() * bs, p as u64);
                let mut rmw = Stripe::from_data(&layout, bs, &data);
                encode(&layout, &mut rmw);
                let mut rcw = rmw.clone();

                for (start, count) in [(0usize, 1usize), (2, 4), (0, layout.data_len())] {
                    let count = count.min(layout.data_len() - start);
                    let bytes = payload(count * bs, 77 + start as u64);
                    let a = write_logical(&layout, &mut rmw, start, &bytes);
                    let b = write_logical_reconstruct(&layout, &mut rcw, start, &bytes);
                    assert_eq!(rmw, rcw, "{} p={p} start={start}", layout.name());
                    assert_eq!(a.data_written, b.data_written);
                    let mut pa = a.parities_written.clone();
                    let mut pb = b.parities_written.clone();
                    pa.sort_unstable();
                    pb.sort_unstable();
                    assert_eq!(pa, pb);
                    assert!(verify_parities(&layout, &rcw));
                }
            }
        }
    }

    #[test]
    fn reconstruct_write_cost_crosses_over_rmw() {
        // Small writes favor RMW; whole-stripe writes favor reconstruction
        // (zero extra reads).
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let small_rmw = {
            let parities = affected_parities(&layout, 0, 1).len();
            2 * (1 + parities)
        };
        let small_rcw = reconstruct_write_ios(&layout, 0, 1);
        assert!(
            small_rmw < small_rcw,
            "small write: RMW {small_rmw} vs RCW {small_rcw}"
        );

        let full = layout.data_len();
        let full_rmw = 2
            * (full
                + layout
                    .update_closure(
                        &(0..full)
                            .map(|i| layout.logical_to_cell(i))
                            .collect::<Vec<_>>(),
                    )
                    .len());
        let full_rcw = reconstruct_write_ios(&layout, 0, full);
        assert!(
            full_rcw < full_rmw,
            "full write: RCW {full_rcw} vs RMW {full_rmw}"
        );
        // A full-stripe reconstruct-write reads nothing.
        assert_eq!(full_rcw, full + 2 * 7);
    }

    #[test]
    fn full_stripe_write_equals_encode() {
        let layout = dcode_core::dcode::dcode(5).unwrap();
        let bs = 8;
        let mut s = Stripe::from_data(&layout, bs, &payload(layout.data_len() * bs, 11));
        encode(&layout, &mut s);
        let new_data = payload(layout.data_len() * bs, 12);
        write_logical(&layout, &mut s, 0, &new_data);
        let mut fresh = Stripe::from_data(&layout, bs, &new_data);
        encode(&layout, &mut fresh);
        assert_eq!(s, fresh);
    }
}
