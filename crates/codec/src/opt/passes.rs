//! The optimizer's rewrite passes.
//!
//! Each pass maps a program to `Some(rewritten)` when it changed anything
//! and `None` when the input was already in normal form, so the driver in
//! [`super::optimize`] can record per-pass `changed` bits and return the
//! original program untouched (fingerprint and all) when the whole
//! pipeline is the identity — which it must be for every registry code,
//! since those schedules are already at the paper's closed-form optimum.
//!
//! Soundness obligations (each pass's comment sketches the argument; the
//! pipeline then *checks* the result against the original over a fully
//! generic initial state, so a bug here becomes a failed certificate, not
//! silent corruption):
//!
//! * the XOR executed for every *output* block is unchanged as a GF(2)
//!   combination of initial block contents;
//! * the rewritten program stays hazard-free: within a level no op reads
//!   or writes another same-level op's target, and no op reads its own
//!   target.

use super::dataflow::{live_ops, Def, DefUse};
use crate::schedule::XorProgram;
use dcode_core::grid::Grid;
use std::collections::{BTreeMap, BTreeSet};

/// A program exploded into one record per op, the working form shared by
/// all passes: `(target, sources, level)` in original op order.
type OpList = Vec<(u32, Vec<u32>, usize)>;

fn op_list(program: &XorProgram) -> OpList {
    let mut ops = Vec::with_capacity(program.op_count());
    for lv in 0..program.level_count() {
        for op in program.level_ops(lv) {
            ops.push((
                program.op_target(op) as u32,
                program.op_sources(op).to_vec(),
                lv,
            ));
        }
    }
    ops
}

/// Reassemble an op list into a program: stable-sort by level (preserving
/// in-level op order), compress away empty levels, and rebuild the flat
/// arrays. Levels only need to be monotone per dependency — gaps left by
/// deleted or hoisted ops disappear here.
fn rebuild(grid: Grid, ops: OpList) -> XorProgram {
    let mut order: Vec<usize> = (0..ops.len()).collect();
    order.sort_by_key(|&i| ops[i].2);
    let mut targets = Vec::with_capacity(ops.len());
    let mut src_off = vec![0u32];
    let mut sources = Vec::new();
    let mut level_off = vec![0u32];
    let mut cur_level = None;
    for &i in &order {
        let (target, srcs, level) = &ops[i];
        if let Some(prev) = cur_level {
            if *level != prev {
                level_off.push(targets.len() as u32);
            }
        }
        cur_level = Some(*level);
        targets.push(*target);
        sources.extend_from_slice(srcs);
        src_off.push(sources.len() as u32);
    }
    level_off.push(targets.len() as u32);
    let prog = XorProgram::from_raw_parts(grid, targets, src_off, sources, level_off);
    #[cfg(debug_assertions)]
    prog.debug_assert_hazard_free();
    prog
}

/// Dead-op elimination: drop every op whose result cannot flow into an
/// output block. Sound because ops overwrite their target (the previous
/// value never contributes), so a write that is shadowed before being
/// read, or never read at all, is unobservable through `outputs`.
/// Removing ops from levels cannot introduce hazards.
pub(crate) fn dead_op_elim(program: &XorProgram, outputs: &BTreeSet<u32>) -> Option<XorProgram> {
    let keep = live_ops(program, outputs);
    if keep.iter().all(|&k| k) {
        return None;
    }
    let ops = op_list(program)
        .into_iter()
        .zip(keep)
        .filter_map(|(op, k)| k.then_some(op))
        .collect();
    Some(rebuild(program.grid(), ops))
}

/// XOR common-subexpression factoring over source sets. A forward walk
/// keeps an availability map from canonical (sorted) source set to the
/// block currently holding that expression's value; entries are
/// invalidated exactly as the analyzer's duplicate-expression lint does —
/// when the holding block or any operand block is overwritten. On a hit:
///
/// * same target → the op recomputes a value its target already holds
///   (a clone); delete it. No invalidation is needed for the deleted op
///   since the target's value is unchanged.
/// * different target in a strictly earlier level → rewrite the op into a
///   1-source copy of the holding block, trading `len-1` XORs for a move.
///   Same-level producers are skipped: reading them would create a
///   same-level read-after-write hazard.
pub(crate) fn common_subexpression(program: &XorProgram) -> Option<XorProgram> {
    let mut ops = op_list(program);
    let mut avail: BTreeMap<Vec<u32>, (u32, usize)> = BTreeMap::new();
    let mut keep = vec![true; ops.len()];
    let mut changed = false;
    for i in 0..ops.len() {
        let mut key = ops[i].1.clone();
        key.sort_unstable();
        let hit = if key.len() >= 2 {
            avail.get(&key).copied()
        } else {
            None
        };
        if let Some((holder, holder_level)) = hit {
            if holder == ops[i].0 {
                keep[i] = false;
                changed = true;
                continue;
            } else if holder_level < ops[i].2 {
                ops[i].1 = vec![holder];
                changed = true;
            }
        }
        let target = ops[i].0;
        let level = ops[i].2;
        avail.retain(|k, &mut (holder, _)| holder != target && !k.contains(&target));
        // Keep the earliest holder when the expression is already
        // available: it can serve strictly more later ops as a copy
        // source, and it is what lets a clone of the original be deleted.
        avail.entry(key).or_insert((target, level));
    }
    if !changed {
        return None;
    }
    let ops = ops
        .into_iter()
        .zip(keep)
        .filter_map(|(op, k)| k.then_some(op))
        .collect();
    Some(rebuild(program.grid(), ops))
}

/// Level repacking: place every op in the earliest level that respects
/// its dependencies, merging underfull levels and cutting barriers. The
/// earliest legal level for an op is one past the latest of: the levels
/// producing its sources (read-after-write), the level that last wrote
/// its target (write-after-write), and the level that last *read* its
/// target (write-after-read) — all measured in the *new* level numbering,
/// built in one forward walk over original op order (which is a valid
/// sequential schedule, so every dependency points backwards).
pub(crate) fn level_repack(program: &XorProgram) -> Option<XorProgram> {
    let mut ops = op_list(program);
    let mut def_level: BTreeMap<u32, usize> = BTreeMap::new();
    let mut read_level: BTreeMap<u32, usize> = BTreeMap::new();
    let mut changed = false;
    for (target, sources, level) in &mut ops {
        let mut earliest = 0usize;
        for s in sources.iter() {
            if let Some(&l) = def_level.get(s) {
                earliest = earliest.max(l + 1);
            }
        }
        if let Some(&l) = def_level.get(target) {
            earliest = earliest.max(l + 1);
        }
        if let Some(&l) = read_level.get(target) {
            earliest = earliest.max(l + 1);
        }
        if earliest != *level {
            *level = earliest;
            changed = true;
        }
        def_level.insert(*target, earliest);
        for &s in sources.iter() {
            let slot = read_level.entry(s).or_insert(earliest);
            *slot = (*slot).max(earliest);
        }
    }
    if !changed {
        return None;
    }
    Some(rebuild(program.grid(), ops))
}

/// Scratch-slot liveness coloring: renumber scratch blocks (written,
/// not an output, initial contents never read) down to the minimal slot
/// count by interval coloring over levels. Each def of a scratch block is
/// a *value* live from its def level through the last level that reads
/// it; two values may share a host block only when their level intervals
/// are strictly separated (host free iff `busy_until < def_level`),
/// which preserves hazard-freedom: the new def sits in a level strictly
/// after every read of the previous tenant.
///
/// Greedy first-fit over values sorted by def level needs at most as many
/// hosts as the original program used: when it opens host `k+1` at def
/// level `d`, all `k` existing hosts are busy through `d`, so `k+1`
/// values are simultaneously live at `d` — and in the (hazard-free)
/// original those values occupied `k+1` distinct scratch blocks. The
/// bail-out below therefore only triggers on malformed input.
pub(crate) fn scratch_coloring(
    program: &XorProgram,
    outputs: &BTreeSet<u32>,
) -> Option<XorProgram> {
    let df = DefUse::analyze(program);
    let n = program.op_count();
    let defined: BTreeSet<u32> = (0..n).map(|op| program.op_target(op) as u32).collect();
    let pool: Vec<u32> = defined
        .iter()
        .copied()
        .filter(|&b| !outputs.contains(&b) && !df.initial_is_read(b))
        .collect();
    if pool.is_empty() {
        return None;
    }
    let pool_set: BTreeSet<u32> = pool.iter().copied().collect();

    // Each op defining a pool block is a value; its interval runs from its
    // def level to the last level that consumes it.
    let mut last_use: Vec<usize> = (0..n).map(|op| df.level_of(op)).collect();
    for (op, last) in last_use.iter_mut().enumerate() {
        for &user in df.users(op) {
            *last = (*last).max(df.level_of(user));
        }
    }
    let mut order: Vec<usize> = (0..n)
        .filter(|&op| pool_set.contains(&(program.op_target(op) as u32)))
        .collect();
    order.sort_by_key(|&op| (df.level_of(op), op));

    // hosts[k] = (block, last level through which its current tenant lives)
    let mut hosts: Vec<(u32, usize)> = Vec::new();
    let mut host_of: BTreeMap<usize, u32> = BTreeMap::new();
    for &value in &order {
        let def_level = df.level_of(value);
        match hosts.iter_mut().find(|h| h.1 < def_level) {
            Some(host) => {
                host.1 = last_use[value];
                host_of.insert(value, host.0);
            }
            None => {
                let Some(&block) = pool.get(hosts.len()) else {
                    // More simultaneously-live values than original scratch
                    // blocks — impossible for hazard-free input; refuse to
                    // color rather than fabricate a block.
                    return None;
                };
                hosts.push((block, last_use[value]));
                host_of.insert(value, block);
            }
        }
    }

    // Rewrite via reaching defs: every operand whose producer got a host
    // reads the host; every recolored def writes its host.
    let mut ops = op_list(program);
    let mut changed = false;
    for (op, (target, sources, _level)) in ops.iter_mut().enumerate() {
        for (slot, source) in sources.iter_mut().enumerate() {
            if let Def::Op(producer) = df.reaching(op)[slot] {
                if let Some(&host) = host_of.get(&producer) {
                    if *source != host {
                        *source = host;
                        changed = true;
                    }
                }
            }
        }
        if let Some(&host) = host_of.get(&op) {
            if *target != host {
                *target = host;
                changed = true;
            }
        }
    }
    if !changed {
        return None;
    }
    Some(rebuild(program.grid(), ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(targets: Vec<u32>, srcs: Vec<Vec<u32>>, level_off: Vec<u32>) -> XorProgram {
        let mut src_off = vec![0u32];
        let mut sources = Vec::new();
        for s in srcs {
            sources.extend_from_slice(&s);
            src_off.push(sources.len() as u32);
        }
        XorProgram::from_raw_parts(Grid::new(4, 4), targets, src_off, sources, level_off)
    }

    fn ops_of(p: &XorProgram) -> OpList {
        op_list(p)
    }

    #[test]
    fn dead_op_elim_drops_shadowed_and_unread_writes() {
        let p = toy(
            vec![5, 5, 12, 6],
            vec![vec![0, 1], vec![2, 3], vec![5, 0], vec![1, 2]],
            vec![0, 1, 2, 4],
        );
        let out = dead_op_elim(&p, &BTreeSet::from([12])).expect("dead ops present");
        assert_eq!(ops_of(&out), vec![(5, vec![2, 3], 0), (12, vec![5, 0], 1)],);
        assert!(dead_op_elim(&out, &BTreeSet::from([12])).is_none());
    }

    #[test]
    fn cse_rewrites_later_duplicate_to_copy_and_deletes_clones() {
        // op1 recomputes op0's expression into a different block → copy;
        // op2 recomputes it into the *same* block as op0 → deleted.
        let p = toy(
            vec![12, 13, 12],
            vec![vec![0, 1], vec![1, 0], vec![0, 1]],
            vec![0, 1, 2, 3],
        );
        let out = common_subexpression(&p).expect("duplicates present");
        assert_eq!(ops_of(&out), vec![(12, vec![0, 1], 0), (13, vec![12], 1)]);
        assert!(common_subexpression(&out).is_none());
    }

    #[test]
    fn cse_respects_operand_invalidation() {
        // b1 is overwritten between the two computations of b0^b1, so the
        // second is NOT a duplicate and must survive untouched.
        let p = toy(
            vec![12, 1, 13],
            vec![vec![0, 1], vec![2, 3], vec![0, 1]],
            vec![0, 1, 2, 3],
        );
        assert!(common_subexpression(&p).is_none());
    }

    #[test]
    fn cse_skips_same_level_producers() {
        let p = toy(vec![12, 13], vec![vec![0, 1], vec![0, 1]], vec![0, 2]);
        assert!(common_subexpression(&p).is_none());
    }

    #[test]
    fn level_repack_hoists_and_merges() {
        // Independent ops spread across three levels collapse to one;
        // the dependent op lands right after its producer.
        let p = toy(
            vec![12, 13, 14],
            vec![vec![0, 1], vec![2, 3], vec![12, 2]],
            vec![0, 1, 2, 3],
        );
        let out = level_repack(&p).expect("hoistable ops present");
        assert_eq!(
            ops_of(&out),
            vec![
                (12, vec![0, 1], 0),
                (13, vec![2, 3], 0),
                (14, vec![12, 2], 1)
            ],
        );
        assert!(level_repack(&out).is_none());
    }

    #[test]
    fn level_repack_honors_war_dependencies() {
        // op1 overwrites b0 which op0 reads: the write may not join the
        // reader's level.
        let p = toy(vec![12, 0], vec![vec![0, 1], vec![2, 3]], vec![0, 1, 2]);
        assert!(level_repack(&p).is_none());
    }

    #[test]
    fn scratch_coloring_shares_strictly_separated_lifetimes() {
        // Two scratch chains in sequence: b5 live levels 0-1, b6 live 2-3.
        let p = toy(
            vec![5, 12, 6, 13],
            vec![vec![0, 1], vec![5, 2], vec![0, 3], vec![6, 1]],
            vec![0, 1, 2, 3, 4],
        );
        let out = scratch_coloring(&p, &BTreeSet::from([12, 13])).expect("colorable");
        assert_eq!(
            ops_of(&out),
            vec![
                (5, vec![0, 1], 0),
                (12, vec![5, 2], 1),
                (5, vec![0, 3], 2),
                (13, vec![5, 1], 3),
            ],
        );
        assert!(scratch_coloring(&out, &BTreeSet::from([12, 13])).is_none());
    }

    #[test]
    fn scratch_coloring_keeps_overlapping_lifetimes_apart() {
        // b5 and b6 are simultaneously live → distinct slots stay.
        let p = toy(
            vec![5, 6, 12],
            vec![vec![0, 1], vec![2, 3], vec![5, 6]],
            vec![0, 2, 3],
        );
        assert!(scratch_coloring(&p, &BTreeSet::from([12])).is_none());
    }

    #[test]
    fn scratch_coloring_pins_blocks_whose_initial_value_is_read() {
        // b5's pre-program contents feed op0 before op1 overwrites it:
        // b5 must not join the host pool, and with no other scratch the
        // pass is the identity.
        let p = toy(
            vec![12, 5, 13],
            vec![vec![5, 0], vec![1, 2], vec![5, 3]],
            vec![0, 1, 2, 3],
        );
        assert!(scratch_coloring(&p, &BTreeSet::from([12, 13])).is_none());
    }
}
