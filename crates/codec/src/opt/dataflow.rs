//! Dataflow analyses over [`XorProgram`]s.
//!
//! The optimizer passes in [`super::passes`] are rewrites; everything they
//! need to *know* about a program is computed here, once, in forms that
//! mirror a classic compiler midend:
//!
//! * **reaching definitions** — for every source operand of every op,
//!   which op produced the value it reads (or [`Def::Initial`] when the
//!   block still holds its pre-program contents: a survivor read during
//!   recovery, or pristine data feeding an encode);
//! * **def-use chains** — for every op, the later ops that consume its
//!   result ([`DefUse::users`]) and the op that overwrites it
//!   ([`DefUse::killed_by`]);
//! * **liveness** — a backward walk computing which ops can flow into a
//!   designated output set at all ([`live_ops`]), the analysis behind
//!   dead-op elimination.
//!
//! Levels are part of the IR's semantics (a level is a parallel-safe op
//! group), so every analysis also records each op's level
//! ([`DefUse::level_of`]); the scratch-coloring pass reasons about value
//! lifetimes at level granularity because that is the granularity at which
//! the parallel executors order memory operations.

use crate::schedule::XorProgram;
use std::collections::{BTreeMap, BTreeSet};

/// Where one source operand's value comes from.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Def {
    /// The block still holds its pre-program contents — no earlier op
    /// wrote it. The payload is the linear block index.
    Initial(u32),
    /// The value is the result of the given op (an index into the
    /// program's op list): the operand reads that op's target after it
    /// ran and before anything overwrote it.
    Op(usize),
}

/// Def-use chains, reaching definitions, and kill links for one program,
/// computed in a single forward walk over the op list.
pub struct DefUse {
    level_of: Vec<usize>,
    reaching: Vec<Vec<Def>>,
    users: Vec<Vec<usize>>,
    killed_by: Vec<Option<usize>>,
    initially_read: BTreeSet<u32>,
}

impl DefUse {
    /// Analyze `program`. Linear in ops + source operands.
    pub fn analyze(program: &XorProgram) -> Self {
        let n = program.op_count();
        let mut level_of = vec![0usize; n];
        for lv in 0..program.level_count() {
            for op in program.level_ops(lv) {
                level_of[op] = lv;
            }
        }
        let mut last_def: BTreeMap<u32, usize> = BTreeMap::new();
        let mut reaching: Vec<Vec<Def>> = Vec::with_capacity(n);
        let mut users: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut killed_by: Vec<Option<usize>> = vec![None; n];
        let mut initially_read: BTreeSet<u32> = BTreeSet::new();
        for op in 0..n {
            let mut slots = Vec::with_capacity(program.op_sources(op).len());
            for &s in program.op_sources(op) {
                match last_def.get(&s) {
                    Some(&producer) => {
                        if users[producer].last() != Some(&op) {
                            users[producer].push(op);
                        }
                        slots.push(Def::Op(producer));
                    }
                    None => {
                        initially_read.insert(s);
                        slots.push(Def::Initial(s));
                    }
                }
            }
            reaching.push(slots);
            if let Some(prev) = last_def.insert(program.op_target(op) as u32, op) {
                killed_by[prev] = Some(op);
            }
        }
        DefUse {
            level_of,
            reaching,
            users,
            killed_by,
            initially_read,
        }
    }

    /// The dependency level op `op` sits in.
    pub fn level_of(&self, op: usize) -> usize {
        self.level_of[op]
    }

    /// The reaching definition of each of op `op`'s source operands, in
    /// source order (parallel to [`XorProgram::op_sources`]).
    pub fn reaching(&self, op: usize) -> &[Def] {
        &self.reaching[op]
    }

    /// The ops that read op `op`'s result (each listed once), ascending.
    pub fn users(&self, op: usize) -> &[usize] {
        &self.users[op]
    }

    /// The later op that overwrites op `op`'s target, if any.
    pub fn killed_by(&self, op: usize) -> Option<usize> {
        self.killed_by[op]
    }

    /// Whether any op reads `block`'s *pre-program* contents (i.e. reads
    /// it before the first op that writes it, or the block is never
    /// written at all). A written block whose initial contents are also
    /// read cannot be repurposed as a scratch slot.
    pub fn initial_is_read(&self, block: u32) -> bool {
        self.initially_read.contains(&block)
    }
}

/// Backward liveness over ops: `result[k]` is `true` iff op `k`'s value
/// can flow into one of `outputs` (directly, or through a chain of later
/// ops). Ops marked `false` are dead — removing them cannot change any
/// output block, because each op *overwrites* its target (the prior value
/// never contributes), so a write that is shadowed or never read is
/// unobservable.
pub fn live_ops(program: &XorProgram, outputs: &BTreeSet<u32>) -> Vec<bool> {
    let n = program.op_count();
    let mut needed: BTreeSet<u32> = outputs.clone();
    let mut keep = vec![false; n];
    for op in (0..n).rev() {
        if needed.remove(&(program.op_target(op) as u32)) {
            keep[op] = true;
            needed.extend(program.op_sources(op).iter().copied());
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::grid::Grid;

    fn toy(targets: Vec<u32>, srcs: Vec<Vec<u32>>, level_off: Vec<u32>) -> XorProgram {
        let mut src_off = vec![0u32];
        let mut sources = Vec::new();
        for s in srcs {
            sources.extend_from_slice(&s);
            src_off.push(sources.len() as u32);
        }
        XorProgram::from_raw_parts(Grid::new(4, 4), targets, src_off, sources, level_off)
    }

    #[test]
    fn reaching_defs_distinguish_initial_from_producers() {
        // op0: b5 = b0^b1; op1: b12 = b5^b2
        let p = toy(vec![5, 12], vec![vec![0, 1], vec![5, 2]], vec![0, 1, 2]);
        let df = DefUse::analyze(&p);
        assert_eq!(df.reaching(0), &[Def::Initial(0), Def::Initial(1)]);
        assert_eq!(df.reaching(1), &[Def::Op(0), Def::Initial(2)]);
        assert_eq!(df.users(0), &[1]);
        assert!(df.users(1).is_empty());
        assert_eq!(df.killed_by(0), None);
        assert!(df.initial_is_read(0) && !df.initial_is_read(5));
        assert_eq!((df.level_of(0), df.level_of(1)), (0, 1));
    }

    #[test]
    fn kill_links_and_shadowed_defs() {
        // op0: b5 = b0^b1 (never read, overwritten); op1: b5 = b2^b3;
        // op2: b12 = b5^b0
        let p = toy(
            vec![5, 5, 12],
            vec![vec![0, 1], vec![2, 3], vec![5, 0]],
            vec![0, 1, 2, 3],
        );
        let df = DefUse::analyze(&p);
        assert_eq!(df.killed_by(0), Some(1));
        assert!(df.users(0).is_empty());
        assert_eq!(df.users(1), &[2]);
        assert_eq!(df.reaching(2), &[Def::Op(1), Def::Initial(0)]);
    }

    #[test]
    fn liveness_kills_shadowed_and_unread_chains() {
        // op0 shadowed by op1; op3 writes scratch nothing reads.
        let p = toy(
            vec![5, 5, 12, 6],
            vec![vec![0, 1], vec![2, 3], vec![5, 0], vec![1, 2]],
            vec![0, 1, 2, 4],
        );
        let keep = live_ops(&p, &BTreeSet::from([12]));
        assert_eq!(keep, vec![false, true, true, false]);
    }
}
