//! Verified optimizer tier for the XOR schedule IR.
//!
//! D-Code's headline property is *static*: the registry schedules already
//! sit at the paper's §III-D closed-form optimum for XOR count and I/O
//! load. This module adds the machinery to *prove* that, and to keep it
//! true as new program families (degraded-read subprograms, fused
//! batches, rebuild schedules) flow through the compiler:
//!
//! * [`dataflow`] — def-use chains, reaching definitions, and liveness
//!   over [`XorProgram`]s;
//! * a pass pipeline ([`OptPass`], [`OptConfig`]) of verified rewrites:
//!   dead-op elimination, XOR common-subexpression factoring, level
//!   repacking, and scratch-slot liveness coloring;
//! * [`optimize`] — the driver. Every run discharges its proof
//!   obligation *before* the result is shipped: the optimized program is
//!   replayed symbolically against the original over a **fully generic
//!   initial state** (block *i* starts as the formal symbol *eᵢ*), and
//!   the output blocks must carry identical GF(2) combinations; costs
//!   must be monotonically no worse. If either check fails the driver
//!   reverts to the original program and records the failure in the
//!   certificate, so a pipeline bug can cause a loud red certificate but
//!   never a wrong stripe.
//! * [`OptCertificate`] — the machine-checkable cost-delta certificate
//!   attached to every program the [`crate::cache::ScheduleCache`]
//!   emits. For registry codes the certificate must show delta = 0
//!   (`dcode analyze --opt-delta` enforces this as a standing
//!   regression tripwire).

pub mod dataflow;
mod passes;

use crate::fused::FusedProgram;
use crate::schedule::XorProgram;
use dcode_core::fnv::Fnv1a;
use std::collections::BTreeSet;

/// One rewrite pass of the optimizer pipeline.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OptPass {
    /// Remove ops whose result cannot flow into an output block.
    DeadOpElim,
    /// Factor repeated XOR source sets into copies of the first holder.
    CommonSubexpression,
    /// Hoist ops to their earliest legal level; merge underfull levels.
    LevelRepack,
    /// Renumber scratch blocks down to the minimal slot count.
    ScratchColor,
}

impl OptPass {
    /// The full pipeline, in the order [`OptConfig::full`] runs it.
    /// Coloring runs last so lifetime intervals are measured against the
    /// final (repacked) levels.
    pub const ALL: [OptPass; 4] = [
        OptPass::DeadOpElim,
        OptPass::CommonSubexpression,
        OptPass::LevelRepack,
        OptPass::ScratchColor,
    ];

    /// Stable human-readable pass name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            OptPass::DeadOpElim => "dead-op-elim",
            OptPass::CommonSubexpression => "common-subexpression",
            OptPass::LevelRepack => "level-repack",
            OptPass::ScratchColor => "scratch-color",
        }
    }

    // Bumped whenever a pass's rewrite logic changes, so cached programs
    // and report fingerprints invalidate even though the name does not.
    const fn version(self) -> u64 {
        match self {
            OptPass::DeadOpElim
            | OptPass::CommonSubexpression
            | OptPass::LevelRepack
            | OptPass::ScratchColor => 1,
        }
    }

    /// Fingerprint of this pass's identity + implementation version.
    pub fn fingerprint(self) -> u64 {
        let mut h = Fnv1a::new();
        h.bytes(self.name().as_bytes());
        h.word(self.version());
        h.finish()
    }
}

/// An ordered optimizer pipeline. The default is [`OptConfig::full`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OptConfig {
    passes: Vec<OptPass>,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig::full()
    }
}

impl OptConfig {
    /// Every pass, in canonical order.
    pub fn full() -> Self {
        OptConfig {
            passes: OptPass::ALL.to_vec(),
        }
    }

    /// No passes at all — [`optimize`] becomes the identity (still
    /// emitting a trivially-holding certificate).
    pub fn empty() -> Self {
        OptConfig { passes: Vec::new() }
    }

    /// A custom pipeline; passes run in the given order.
    pub fn with_passes(passes: Vec<OptPass>) -> Self {
        OptConfig { passes }
    }

    /// The passes, in execution order.
    pub fn passes(&self) -> &[OptPass] {
        &self.passes
    }

    /// Order-sensitive fingerprint over pass identities + versions.
    /// Cached programs and analysis reports key on this so they
    /// invalidate when the pipeline composition changes.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.word(self.passes.len() as u64);
        for p in &self.passes {
            h.word(p.fingerprint());
        }
        h.finish()
    }
}

/// Static cost metrics of one program, the quantities the §III-D closed
/// forms bound. `scratch_blocks` counts distinct written blocks outside
/// the output set — the per-tile working-set overhead of the executor.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CostSummary {
    /// Total op count (XOR folds + copies).
    pub ops: usize,
    /// Total XOR block operations: Σ over ops of (sources − 1).
    pub xors: usize,
    /// Total block reads: Σ over ops of sources.
    pub reads: usize,
    /// Dependency levels (barrier count for the parallel executors).
    pub levels: usize,
    /// Distinct written blocks that are not outputs.
    pub scratch_blocks: usize,
}

impl CostSummary {
    /// Measure `program` against the given output-block set.
    pub fn measure(program: &XorProgram, outputs: &BTreeSet<u32>) -> Self {
        let ops = program.op_count();
        let mut xors = 0usize;
        let mut scratch = BTreeSet::new();
        for op in 0..ops {
            xors += program.op_sources(op).len().saturating_sub(1);
            let t = program.op_target(op) as u32;
            if !outputs.contains(&t) {
                scratch.insert(t);
            }
        }
        CostSummary {
            ops,
            xors,
            reads: program.source_count(),
            levels: program.level_count(),
            scratch_blocks: scratch.len(),
        }
    }

    /// The per-stripe costs scaled to a batch of `n` stripes. Levels are
    /// unscaled: fusing batches is exactly what keeps the barrier count
    /// constant.
    pub fn scaled(self, n: usize) -> Self {
        CostSummary {
            ops: self.ops * n,
            xors: self.xors * n,
            reads: self.reads * n,
            levels: self.levels,
            scratch_blocks: self.scratch_blocks * n,
        }
    }

    /// Whether `self` is no worse than `before` on every metric.
    pub fn no_worse_than(&self, before: &CostSummary) -> bool {
        self.ops <= before.ops
            && self.xors <= before.xors
            && self.reads <= before.reads
            && self.levels <= before.levels
            && self.scratch_blocks <= before.scratch_blocks
    }
}

/// Record of one pass execution inside a pipeline run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PassRun {
    /// Which pass ran.
    pub pass: OptPass,
    /// That pass's identity fingerprint at run time.
    pub fingerprint: u64,
    /// Whether the pass rewrote anything.
    pub changed: bool,
}

/// The cost-delta certificate attached to every optimized (or fused)
/// program. [`OptCertificate::holds`] is the proof obligation: the
/// equivalence check passed and no cost metric regressed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OptCertificate {
    /// Fingerprint of the program the pipeline started from.
    pub original_fingerprint: u64,
    /// Fingerprint of the shipped program (equals the original when the
    /// pipeline was the identity or was reverted).
    pub optimized_fingerprint: u64,
    /// [`OptConfig::fingerprint`] of the pipeline that ran.
    pub pipeline_fingerprint: u64,
    /// Stripes covered: 1 for single-stripe programs, N for fused
    /// batches (whose `before` is the single-stripe cost × N).
    pub batch: usize,
    /// Per-pass execution record, in order. Empty for fusion
    /// certificates (fusion is not a rewrite pass).
    pub passes: Vec<PassRun>,
    /// Costs before the pipeline (for fused programs: single × batch).
    pub before: CostSummary,
    /// Costs of the shipped program.
    pub after: CostSummary,
    /// Whether the proof obligation was discharged: the shipped program
    /// is GF(2)-equivalent to the original on every output block over a
    /// fully generic initial state. Cleared (and the rewrite reverted)
    /// if the internal check ever fails.
    pub equivalent: bool,
}

impl OptCertificate {
    /// The certificate's proof obligation: equivalence discharged and
    /// every cost metric ≤ its pre-pipeline value.
    pub fn holds(&self) -> bool {
        self.equivalent && self.after.no_worse_than(&self.before)
    }

    /// Whether the pipeline changed no cost at all — required for the
    /// registry codes, which are certified already at the closed-form
    /// optimum.
    pub fn zero_delta(&self) -> bool {
        self.before == self.after
    }

    /// Certificate for a fused batch built from an (already optimized)
    /// single-stripe program: `before` is the single-stripe cost × batch,
    /// `after` is measured on the fused program, and equivalence is
    /// discharged structurally — the fused program must be exactly
    /// `batch` shifted copies of `single`, level by level.
    pub fn for_fusion(
        single: &XorProgram,
        fused: &FusedProgram,
        pipeline_fingerprint: u64,
    ) -> Self {
        let outputs: BTreeSet<u32> = (0..single.op_count())
            .map(|op| single.op_target(op) as u32)
            .collect();
        let before = CostSummary::measure(single, &outputs).scaled(fused.batch());
        let after = CostSummary {
            ops: fused.op_count(),
            xors: (0..fused.op_count())
                .map(|op| fused.op_sources(op).len().saturating_sub(1))
                .sum(),
            reads: fused.source_count(),
            levels: fused.level_count(),
            scratch_blocks: before.scratch_blocks,
        };
        OptCertificate {
            original_fingerprint: single.fingerprint(),
            optimized_fingerprint: single.fingerprint(),
            pipeline_fingerprint,
            batch: fused.batch(),
            passes: Vec::new(),
            before,
            after,
            equivalent: fused_matches(single, fused),
        }
    }
}

/// An optimized program together with its certificate.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The shipped program (the original, untouched, when the pipeline
    /// was the identity).
    pub program: XorProgram,
    /// The cost-delta certificate for this run.
    pub certificate: OptCertificate,
}

/// Run the pass pipeline in `config` over `program` and certify the
/// result.
///
/// `outputs` is the set of linear block indices whose final contents are
/// observable; `None` means every written block is an output (true for
/// encode programs and full recovery plans, whose targets are exactly
/// the blocks being produced). Degraded-read subprograms pass the wanted
/// cell set, freeing the remaining targets to be treated as scratch.
///
/// The returned certificate always describes the shipped program: if the
/// internal equivalence or cost check fails, the original program is
/// shipped and `certificate.equivalent` is `false` so the failure is
/// loud downstream (`debug_assertions` builds assert it immediately).
pub fn optimize(
    program: &XorProgram,
    outputs: Option<&BTreeSet<usize>>,
    config: &OptConfig,
) -> Optimized {
    let out_set: BTreeSet<u32> = match outputs {
        Some(o) => o.iter().map(|&i| i as u32).collect(),
        None => (0..program.op_count())
            .map(|op| program.op_target(op) as u32)
            .collect(),
    };
    let before = CostSummary::measure(program, &out_set);
    let mut passes = Vec::with_capacity(config.passes().len());
    let mut current: Option<XorProgram> = None;
    if well_formed(program) {
        for &pass in config.passes() {
            let input = current.as_ref().unwrap_or(program);
            let next = match pass {
                OptPass::DeadOpElim => passes::dead_op_elim(input, &out_set),
                OptPass::CommonSubexpression => passes::common_subexpression(input),
                OptPass::LevelRepack => passes::level_repack(input),
                OptPass::ScratchColor => passes::scratch_coloring(input, &out_set),
            };
            let changed = next.is_some();
            if let Some(p) = next {
                current = Some(p);
            }
            passes.push(PassRun {
                pass,
                fingerprint: pass.fingerprint(),
                changed,
            });
        }
    } else {
        // Out-of-range block indices: leave the program alone (the
        // executors and verifier report such programs on their own).
        for &pass in config.passes() {
            passes.push(PassRun {
                pass,
                fingerprint: pass.fingerprint(),
                changed: false,
            });
        }
    }
    let (shipped, equivalent) = match current {
        Some(candidate) => {
            let after = CostSummary::measure(&candidate, &out_set);
            if outputs_equivalent(program, &candidate, &out_set) && after.no_worse_than(&before) {
                (candidate, true)
            } else {
                // Proof obligation failed: never ship an unproven
                // rewrite. The false `equivalent` makes the certificate
                // fail `holds()` so the pipeline bug surfaces in
                // analyze/CI instead of hiding behind the revert.
                (program.clone(), false)
            }
        }
        None => (program.clone(), true),
    };
    let after = CostSummary::measure(&shipped, &out_set);
    let certificate = OptCertificate {
        original_fingerprint: program.fingerprint(),
        optimized_fingerprint: shipped.fingerprint(),
        pipeline_fingerprint: config.fingerprint(),
        batch: 1,
        passes,
        before,
        after,
        equivalent,
    };
    Optimized {
        program: shipped,
        certificate,
    }
}

fn well_formed(program: &XorProgram) -> bool {
    let n = program.grid().len();
    (0..program.op_count()).all(|op| {
        program.op_target(op) < n && program.op_sources(op).iter().all(|&s| (s as usize) < n)
    })
}

/// Symbolic GF(2) replay over a fully generic initial state: block *i*
/// starts as the singleton bitset {*i*}, each op XORs its sources'
/// bitsets into its target. Comparing the final bitsets of the output
/// blocks is sound *and complete* for equivalence over every possible
/// starting stripe content (XOR programs are linear over GF(2)).
fn final_state(program: &XorProgram) -> Vec<Vec<u64>> {
    let n = program.grid().len();
    let words = n.div_ceil(64);
    let mut state: Vec<Vec<u64>> = (0..n)
        .map(|i| {
            let mut w = vec![0u64; words];
            w[i / 64] |= 1 << (i % 64);
            w
        })
        .collect();
    for op in 0..program.op_count() {
        let mut acc = vec![0u64; words];
        for &s in program.op_sources(op) {
            for (a, b) in acc.iter_mut().zip(&state[s as usize]) {
                *a ^= *b;
            }
        }
        state[program.op_target(op)] = acc;
    }
    state
}

fn outputs_equivalent(a: &XorProgram, b: &XorProgram, outputs: &BTreeSet<u32>) -> bool {
    if a.grid() != b.grid() {
        return false;
    }
    let sa = final_state(a);
    let sb = final_state(b);
    outputs.iter().all(|&o| sa[o as usize] == sb[o as usize])
}

/// Structural equivalence of a fused program to `batch` shifted copies
/// of `single`: level by level, the fused level must consist of each
/// stripe's copy of the single level with every block index shifted by
/// `stripe × grid.len()`.
fn fused_matches(single: &XorProgram, fused: &FusedProgram) -> bool {
    let batch = fused.batch();
    let stride = single.grid().len();
    if fused.grid() != single.grid()
        || fused.level_count() != single.level_count()
        || fused.op_count() != single.op_count() * batch
    {
        return false;
    }
    for lv in 0..single.level_count() {
        let single_ops: Vec<usize> = single.level_ops(lv).collect();
        let fused_ops: Vec<usize> = fused.level_ops(lv).collect();
        if fused_ops.len() != single_ops.len() * batch {
            return false;
        }
        for (k, &fop) in fused_ops.iter().enumerate() {
            let stripe = k / single_ops.len();
            let sop = single_ops[k % single_ops.len()];
            let base = stripe * stride;
            if fused.op_target(fop) != single.op_target(sop) + base {
                return false;
            }
            let fsrc = fused.op_sources(fop);
            let ssrc = single.op_sources(sop);
            if fsrc.len() != ssrc.len()
                || !fsrc
                    .iter()
                    .zip(ssrc)
                    .all(|(&f, &s)| f as usize == s as usize + base)
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;
    use dcode_core::grid::Grid;

    fn toy(targets: Vec<u32>, srcs: Vec<Vec<u32>>, level_off: Vec<u32>) -> XorProgram {
        let mut src_off = vec![0u32];
        let mut sources = Vec::new();
        for s in srcs {
            sources.extend_from_slice(&s);
            src_off.push(sources.len() as u32);
        }
        XorProgram::from_raw_parts(Grid::new(4, 4), targets, src_off, sources, level_off)
    }

    #[test]
    fn pipeline_is_certified_identity_on_every_registry_program() {
        let config = OptConfig::full();
        for p in [5usize, 7, 11, 13, 17] {
            for layout in all_codes(p) {
                let encode = XorProgram::compile_encode(&layout);
                let opt = optimize(&encode, None, &config);
                assert!(
                    opt.certificate.holds(),
                    "{} p={p}: certificate",
                    layout.name()
                );
                assert!(
                    opt.certificate.zero_delta(),
                    "{} p={p}: registry encode must certify delta 0",
                    layout.name()
                );
                assert_eq!(
                    opt.program,
                    encode,
                    "{} p={p}: identity pipeline must return the program unchanged",
                    layout.name()
                );
                assert!(opt.certificate.passes.iter().all(|r| !r.changed));
            }
        }
    }

    #[test]
    fn full_pipeline_cleans_a_padded_program() {
        // Dead op + duplicate expression + late level + two scratch slots
        // with disjoint lifetimes, all in one program.
        let p = toy(
            vec![5, 11, 12, 6, 13],
            vec![vec![0, 1], vec![2, 3], vec![5, 2], vec![0, 3], vec![6, 1]],
            vec![0, 2, 3, 4, 5],
        );
        let opt = optimize(&p, Some(&BTreeSet::from([12, 13])), &OptConfig::full());
        assert!(opt.certificate.holds());
        assert!(opt.certificate.after.ops < opt.certificate.before.ops);
        // Repacking parallelizes the two scratch chains (4 levels → 2),
        // which makes their lifetimes overlap — so both slots stay.
        assert!(opt.certificate.after.levels < opt.certificate.before.levels);
        assert!(opt.certificate.after.scratch_blocks <= opt.certificate.before.scratch_blocks);
        assert!(opt.certificate.passes.iter().any(|r| r.changed));
    }

    #[test]
    fn failed_obligation_reverts_and_reports() {
        // An empty pipeline trivially holds; a certificate constructed by
        // a changing pipeline must tie optimized_fingerprint to the
        // shipped program.
        let p = toy(vec![12, 13], vec![vec![0, 1], vec![0, 1]], vec![0, 1, 2]);
        let opt = optimize(&p, None, &OptConfig::full());
        assert!(opt.certificate.holds());
        assert_eq!(
            opt.certificate.optimized_fingerprint,
            opt.program.fingerprint()
        );
        assert_eq!(opt.certificate.original_fingerprint, p.fingerprint());
    }

    #[test]
    fn config_fingerprint_is_order_and_version_sensitive() {
        let full = OptConfig::full().fingerprint();
        let reversed = OptConfig::with_passes(vec![
            OptPass::ScratchColor,
            OptPass::LevelRepack,
            OptPass::CommonSubexpression,
            OptPass::DeadOpElim,
        ])
        .fingerprint();
        assert_ne!(full, reversed);
        assert_ne!(full, OptConfig::empty().fingerprint());
        assert_eq!(full, OptConfig::full().fingerprint());
    }

    #[test]
    fn fusion_certificate_checks_structure_and_costs() {
        let layout = all_codes(5).pop().expect("registry nonempty");
        let encode = XorProgram::compile_encode(&layout);
        let fused = FusedProgram::fuse(&encode, 3);
        let cert = OptCertificate::for_fusion(&encode, &fused, OptConfig::full().fingerprint());
        assert!(cert.holds());
        assert!(cert.zero_delta());
        assert_eq!(cert.batch, 3);
    }
}
