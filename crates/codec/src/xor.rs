//! XOR kernels.
//!
//! Everything in a RAID-6 array code reduces to XOR over fixed-size blocks.
//! The hot loop here works in `u64` lanes via `chunks_exact` — the compiler
//! auto-vectorizes this shape well (see the Rust Performance Book's guidance
//! on bounds-check-free iteration) — with a scalar tail for odd lengths.

/// `dst ^= src`, element-wise. Panics if lengths differ.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into: length mismatch");
    let mut dst_chunks = dst.chunks_exact_mut(8);
    let mut src_chunks = src.chunks_exact(8);
    for (d, s) in dst_chunks.by_ref().zip(src_chunks.by_ref()) {
        let dw = u64::from_ne_bytes(d.try_into().expect("chunk is 8 bytes"));
        let sw = u64::from_ne_bytes(s.try_into().expect("chunk is 8 bytes"));
        d.copy_from_slice(&(dw ^ sw).to_ne_bytes());
    }
    for (d, s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d ^= s;
    }
}

/// `dst = a ^ b`, element-wise into a fresh output slice.
pub fn xor_into_from(dst: &mut [u8], a: &[u8], b: &[u8]) {
    assert_eq!(dst.len(), a.len(), "xor_into_from: length mismatch (a)");
    dst.copy_from_slice(a);
    xor_into(dst, b);
}

/// XOR all `sources` together into `dst` (which is first zeroed).
/// With no sources, `dst` becomes all-zero.
pub fn xor_many_into(dst: &mut [u8], sources: &[&[u8]]) {
    dst.fill(0);
    for src in sources {
        xor_into(dst, src);
    }
}

/// Tile size for the multi-source kernels: each destination tile stays
/// resident in L1 while several sources stream through it, so a parity
/// built from many members loads and stores its accumulator once per
/// source *group* instead of once per source.
const TILE_BYTES: usize = 32 * 1024;

#[inline]
fn load_u64(bytes: &[u8]) -> u64 {
    u64::from_ne_bytes(bytes.try_into().expect("chunk is 8 bytes"))
}

/// `dst ^= a ^ b` over equal-length slices.
#[inline]
fn xor_into2(dst: &mut [u8], a: &[u8], b: &[u8]) {
    debug_assert!(dst.len() == a.len() && dst.len() == b.len());
    let mut d = dst.chunks_exact_mut(8);
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    for ((d, a), b) in d.by_ref().zip(ac.by_ref()).zip(bc.by_ref()) {
        let w = load_u64(d) ^ load_u64(a) ^ load_u64(b);
        d.copy_from_slice(&w.to_ne_bytes());
    }
    for ((d, a), b) in d
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *d ^= a ^ b;
    }
}

/// `dst ^= a ^ b ^ c ^ e` over equal-length slices — four source streams
/// folded per accumulator load/store.
#[inline]
fn xor_into4(dst: &mut [u8], a: &[u8], b: &[u8], c: &[u8], e: &[u8]) {
    debug_assert!(
        dst.len() == a.len()
            && dst.len() == b.len()
            && dst.len() == c.len()
            && dst.len() == e.len()
    );
    let mut d = dst.chunks_exact_mut(8);
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    let mut cc = c.chunks_exact(8);
    let mut ec = e.chunks_exact(8);
    for ((((d, a), b), c), e) in d
        .by_ref()
        .zip(ac.by_ref())
        .zip(bc.by_ref())
        .zip(cc.by_ref())
        .zip(ec.by_ref())
    {
        let w = load_u64(d) ^ load_u64(a) ^ load_u64(b) ^ load_u64(c) ^ load_u64(e);
        d.copy_from_slice(&w.to_ne_bytes());
    }
    for ((((d, a), b), c), e) in d
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
        .zip(cc.remainder())
        .zip(ec.remainder())
    {
        *d ^= a ^ b ^ c ^ e;
    }
}

/// Gather-form multi-source XOR: `dst = fetch(i₀) ^ fetch(i₁) ^ …` for the
/// given indices, resolved through `fetch` so callers never build a
/// per-operation `Vec<&[u8]>`. This is the schedule executor's kernel:
/// overwrite semantics (the first source is copied, the rest accumulated),
/// cache-sized tiles, and up to four sources folded per pass. With no
/// indices, `dst` is zeroed.
pub(crate) fn xor_gather_into<'a, I: Copy, F>(dst: &mut [u8], indices: &[I], fetch: F)
where
    F: Fn(I) -> &'a [u8],
{
    let len = dst.len();
    for &i in indices {
        assert_eq!(fetch(i).len(), len, "xor_gather_into: length mismatch");
    }
    let Some((&first, rest)) = indices.split_first() else {
        dst.fill(0);
        return;
    };
    let mut start = 0;
    while start < len {
        let end = (start + TILE_BYTES).min(len);
        let d = &mut dst[start..end];
        d.copy_from_slice(&fetch(first)[start..end]);
        let mut quads = rest.chunks_exact(4);
        for q in quads.by_ref() {
            xor_into4(
                d,
                &fetch(q[0])[start..end],
                &fetch(q[1])[start..end],
                &fetch(q[2])[start..end],
                &fetch(q[3])[start..end],
            );
        }
        match quads.remainder() {
            [] => {}
            [a] => xor_into(d, &fetch(*a)[start..end]),
            [a, b] => xor_into2(d, &fetch(*a)[start..end], &fetch(*b)[start..end]),
            [a, b, c] => {
                xor_into2(d, &fetch(*a)[start..end], &fetch(*b)[start..end]);
                xor_into(d, &fetch(*c)[start..end]);
            }
            _ => unreachable!("chunks_exact(4) remainder has < 4 elements"),
        }
        start = end;
    }
}

/// XOR all `sources` into `dst` with multi-source unrolling: up to four
/// sources are accumulated per pass in `u64` lanes, and the block is
/// processed in cache-sized tiles so the destination stays hot while the
/// sources stream through. Overwrites `dst` (no pre-zeroing pass); with no
/// sources, `dst` becomes all-zero. Byte-identical to [`xor_many_into`].
pub fn xor_many_into_unrolled(dst: &mut [u8], sources: &[&[u8]]) {
    xor_gather_into(dst, sources, |s| s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_roundtrip() {
        let a: Vec<u8> = (0..=255u8).collect();
        let b: Vec<u8> = (0..=255u8).rev().collect();
        let mut d = a.clone();
        xor_into(&mut d, &b);
        xor_into(&mut d, &b);
        assert_eq!(d, a);
    }

    #[test]
    fn odd_lengths_hit_the_tail() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 65] {
            let a: Vec<u8> = (0..len as u32).map(|i| (i * 7 + 3) as u8).collect();
            let b: Vec<u8> = (0..len as u32).map(|i| (i * 13 + 1) as u8).collect();
            let mut d = a.clone();
            xor_into(&mut d, &b);
            let expect: Vec<u8> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
            assert_eq!(d, expect, "len={len}");
        }
    }

    #[test]
    fn xor_many_zero_sources_clears() {
        let mut d = vec![0xAA; 16];
        xor_many_into(&mut d, &[]);
        assert!(d.iter().all(|&b| b == 0));
    }

    #[test]
    fn xor_many_matches_sequential() {
        let srcs: Vec<Vec<u8>> = (0..5)
            .map(|k| (0..33u32).map(|i| ((i + k) * 31) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(std::vec::Vec::as_slice).collect();
        let mut d = vec![0u8; 33];
        xor_many_into(&mut d, &refs);
        let mut expect = vec![0u8; 33];
        for s in &srcs {
            for (e, &x) in expect.iter_mut().zip(s) {
                *e ^= x;
            }
        }
        assert_eq!(d, expect);
    }

    #[test]
    fn xor_into_from_basic() {
        let a = [1u8, 2, 3];
        let b = [255u8, 0, 3];
        let mut d = [0u8; 3];
        xor_into_from(&mut d, &a, &b);
        assert_eq!(d, [254, 2, 0]);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut d = [0u8; 3];
        xor_into(&mut d, &[0u8; 4]);
    }

    #[test]
    fn unrolled_matches_naive_for_all_source_counts() {
        // Cover every remainder branch (0..=3 after the 4-wide quads) and
        // odd lengths that exercise the scalar tails.
        for n_sources in 0..=9usize {
            for len in [0usize, 1, 7, 8, 33, 257] {
                let srcs: Vec<Vec<u8>> = (0..n_sources)
                    .map(|k| {
                        (0..len as u32)
                            .map(|i| ((i + 1) * (k as u32 + 3) * 97) as u8)
                            .collect()
                    })
                    .collect();
                let refs: Vec<&[u8]> = srcs.iter().map(std::vec::Vec::as_slice).collect();
                let mut naive = vec![0xAB; len];
                xor_many_into(&mut naive, &refs);
                let mut unrolled = vec![0xCD; len];
                xor_many_into_unrolled(&mut unrolled, &refs);
                assert_eq!(naive, unrolled, "n_sources={n_sources} len={len}");
            }
        }
    }

    #[test]
    fn unrolled_crosses_tile_boundaries() {
        let len = TILE_BYTES * 2 + 17;
        let srcs: Vec<Vec<u8>> = (0..5)
            .map(|k| {
                (0..len as u32)
                    .map(|i| (i.wrapping_mul(k + 7) >> 3) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(std::vec::Vec::as_slice).collect();
        let mut naive = vec![0u8; len];
        xor_many_into(&mut naive, &refs);
        let mut unrolled = vec![0u8; len];
        xor_many_into_unrolled(&mut unrolled, &refs);
        assert_eq!(naive, unrolled);
    }

    #[test]
    fn gather_resolves_indices() {
        let pool: Vec<Vec<u8>> = (0..4).map(|k| vec![1u8 << k; 11]).collect();
        let mut d = vec![0u8; 11];
        xor_gather_into(&mut d, &[0usize, 2, 3], |i| pool[i].as_slice());
        assert!(d.iter().all(|&b| b == 0b1101));
    }

    #[test]
    #[should_panic]
    fn unrolled_length_mismatch_panics() {
        let mut d = [0u8; 3];
        xor_many_into_unrolled(&mut d, &[&[0u8; 3], &[0u8; 4]]);
    }
}
