//! XOR kernels.
//!
//! Everything in a RAID-6 array code reduces to XOR over fixed-size blocks.
//! The hot loop works in 64-byte groups of eight `u64` lanes (`[u64; 8]`)
//! — a shape LLVM autovectorizes to full-width vector ops on every current
//! target without a line of unsafe or any explicit SIMD — with a `u64`
//! mid-loop and a scalar tail for odd lengths.
//!
//! One const-generic kernel, [`wide_xor`], covers every arity/form pair
//! the schedule executor needs:
//!
//! * **accumulate** (`SET = false`, `dst ^= s₀ ^ s₁ ^ …`): folds up to
//!   eight source streams per accumulator load/store;
//! * **set** (`SET = true`, `dst = s₀ ^ s₁ ^ …`): never reads `dst`. The
//!   multi-source entry points open with a set kernel instead of
//!   `fill(0)`-or-`copy_from_slice` followed by a separate XOR pass,
//!   saving one full write (or read-modify-write) pass over the
//!   destination.
//!
//! Earlier revisions hand-wrote six monomorphic kernels
//! (`xor_into2/4/8`, `xor_set2/4/8`) as towers of zipped `chunks_exact`
//! iterators; `wide_xor::<N, SET>` generates the same machine code from
//! thirty lines (see the `xor_kernel` bench for the before/after numbers).

/// `dst ^= src`, element-wise. Panics if lengths differ.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into: length mismatch");
    wide_xor::<1, false>(dst, [src]);
}

/// `dst = a ^ b`, element-wise into a fresh output slice. Single pass over
/// `dst` (set-form kernel; `dst` is never read).
pub fn xor_into_from(dst: &mut [u8], a: &[u8], b: &[u8]) {
    assert_eq!(dst.len(), a.len(), "xor_into_from: length mismatch (a)");
    assert_eq!(dst.len(), b.len(), "xor_into_from: length mismatch (b)");
    wide_xor::<2, true>(dst, [a, b]);
}

/// XOR all `sources` together into `dst` (overwrite semantics: previous
/// contents of `dst` do not contribute). With no sources, `dst` becomes
/// all-zero. The first two sources are folded into the initial overwrite
/// pass — there is no separate zeroing or copying pass over `dst`.
pub fn xor_many_into(dst: &mut [u8], sources: &[&[u8]]) {
    for src in sources {
        assert_eq!(dst.len(), src.len(), "xor_many_into: length mismatch");
    }
    match sources {
        [] => dst.fill(0),
        [a] => dst.copy_from_slice(a),
        [a, b, rest @ ..] => {
            wide_xor::<2, true>(dst, [a, b]);
            for src in rest {
                wide_xor::<1, false>(dst, [src]);
            }
        }
    }
}

/// Default tile size for the multi-source kernels: each destination tile
/// stays resident in L1 while several sources stream through it, so a
/// parity built from many members loads and stores its accumulator once
/// per source *group* instead of once per source. Tuned with the
/// `xor_kernel` bench's tile sweep (see EXPERIMENTS.md); 16 KiB leaves
/// room in a 32 KiB L1d for the destination tile plus streaming sources.
/// The fused bulk path refines this at runtime — see [`crate::tile`].
pub const TILE_BYTES: usize = 16 * 1024;

/// Bytes per wide lane group: eight `u64` lanes, which LLVM lowers to two
/// 32-byte (or four 16-byte) vector ops on current targets.
const WIDE_BYTES: usize = 64;

type Wide = [u64; 8];

#[inline]
fn load_u64(bytes: &[u8]) -> u64 {
    u64::from_ne_bytes(bytes.try_into().expect("chunk is 8 bytes"))
}

#[inline]
fn load_wide(bytes: &[u8]) -> Wide {
    let mut w = [0u64; 8];
    for (lane, chunk) in w.iter_mut().zip(bytes.chunks_exact(8)) {
        *lane = load_u64(chunk);
    }
    w
}

#[inline]
fn store_wide(bytes: &mut [u8], w: Wide) {
    for (chunk, lane) in bytes.chunks_exact_mut(8).zip(w) {
        chunk.copy_from_slice(&lane.to_ne_bytes());
    }
}

/// The one kernel behind every arity/form pair: XOR `N` equal-length
/// source streams into `dst`, overwriting (`SET = true`, `dst` never read)
/// or accumulating (`SET = false`). Works in [`WIDE_BYTES`]-sized
/// `[u64; 8]` groups, then single `u64` words, then bytes. Entirely safe
/// code; the per-iteration slice indexing bounds-checks are hoisted by
/// LLVM against the up-front length asserts.
#[inline]
fn wide_xor<const N: usize, const SET: bool>(dst: &mut [u8], srcs: [&[u8]; N]) {
    let len = dst.len();
    for s in &srcs {
        assert_eq!(s.len(), len, "wide_xor: length mismatch");
    }
    let mut off = 0;
    while off + WIDE_BYTES <= len {
        let mut acc: Wide = if SET {
            [0; 8]
        } else {
            load_wide(&dst[off..off + WIDE_BYTES])
        };
        for s in &srcs {
            let w = load_wide(&s[off..off + WIDE_BYTES]);
            for (a, x) in acc.iter_mut().zip(w) {
                *a ^= x;
            }
        }
        store_wide(&mut dst[off..off + WIDE_BYTES], acc);
        off += WIDE_BYTES;
    }
    while off + 8 <= len {
        let mut acc = if SET {
            0u64
        } else {
            load_u64(&dst[off..off + 8])
        };
        for s in &srcs {
            acc ^= load_u64(&s[off..off + 8]);
        }
        dst[off..off + 8].copy_from_slice(&acc.to_ne_bytes());
        off += 8;
    }
    while off < len {
        let mut acc = if SET { 0u8 } else { dst[off] };
        for s in &srcs {
            acc ^= s[off];
        }
        dst[off] = acc;
        off += 1;
    }
}

/// One destination tile: overwrite `d` with the XOR of every fetched source
/// slice restricted to `range`. Opens with the widest applicable *set*
/// kernel (8/4/2/copy) so the destination is never pre-zeroed or
/// pre-copied, then folds the remaining sources eight at a time, finishing
/// with a 4/2/1 remainder. `pub(crate)` because the fused bulk executor
/// ([`crate::fused`]) drives tiles directly — tile-major across dependency
/// levels — instead of through [`xor_gather_into`]'s op-major loop.
pub(crate) fn xor_tile<'a, I: Copy, F>(
    d: &mut [u8],
    indices: &[I],
    range: (usize, usize),
    fetch: &F,
) where
    F: Fn(I) -> &'a [u8],
{
    let (start, end) = range;
    let s = |i: I| &fetch(i)[start..end];
    // Opening set-form group: consume the widest prefix we have a kernel for.
    let rest = match indices {
        [] => {
            d.fill(0);
            return;
        }
        [a] => {
            d.copy_from_slice(s(*a));
            return;
        }
        [a0, a1, a2, a3, a4, a5, a6, a7, rest @ ..] => {
            wide_xor::<8, true>(
                d,
                [
                    s(*a0),
                    s(*a1),
                    s(*a2),
                    s(*a3),
                    s(*a4),
                    s(*a5),
                    s(*a6),
                    s(*a7),
                ],
            );
            rest
        }
        [a0, a1, a2, a3, rest @ ..] => {
            wide_xor::<4, true>(d, [s(*a0), s(*a1), s(*a2), s(*a3)]);
            rest
        }
        [a0, a1, rest @ ..] => {
            wide_xor::<2, true>(d, [s(*a0), s(*a1)]);
            rest
        }
    };
    // Accumulate the rest, eight sources per pass.
    let mut octs = rest.chunks_exact(8);
    for o in octs.by_ref() {
        wide_xor::<8, false>(
            d,
            [
                s(o[0]),
                s(o[1]),
                s(o[2]),
                s(o[3]),
                s(o[4]),
                s(o[5]),
                s(o[6]),
                s(o[7]),
            ],
        );
    }
    let mut tail = octs.remainder();
    if let [a, b, c, e, more @ ..] = tail {
        wide_xor::<4, false>(d, [s(*a), s(*b), s(*c), s(*e)]);
        tail = more;
    }
    match tail {
        [] => {}
        [a] => wide_xor::<1, false>(d, [s(*a)]),
        [a, b] => wide_xor::<2, false>(d, [s(*a), s(*b)]),
        [a, b, c] => {
            wide_xor::<2, false>(d, [s(*a), s(*b)]);
            wide_xor::<1, false>(d, [s(*c)]);
        }
        _ => unreachable!("remainder after 8- and 4-wide folds has < 4 elements"),
    }
}

/// Gather-form multi-source XOR with a caller-chosen tile size: see
/// [`xor_gather_into`]. Exposed (with `fetch` specialized to plain slices
/// via [`xor_many_into_tiled`]) so the benchmark suite can sweep tile sizes
/// to tune [`TILE_BYTES`].
fn xor_gather_tiled<'a, I: Copy, F>(dst: &mut [u8], indices: &[I], fetch: F, tile_bytes: usize)
where
    F: Fn(I) -> &'a [u8],
{
    let len = dst.len();
    for &i in indices {
        assert_eq!(fetch(i).len(), len, "xor_gather_into: length mismatch");
    }
    let tile = tile_bytes.max(8);
    let mut start = 0;
    loop {
        let end = (start + tile).min(len);
        xor_tile(&mut dst[start..end], indices, (start, end), &fetch);
        if end == len {
            break;
        }
        start = end;
    }
}

/// Gather-form multi-source XOR: `dst = fetch(i₀) ^ fetch(i₁) ^ …` for the
/// given indices, resolved through `fetch` so callers never build a
/// per-operation `Vec<&[u8]>`. This is the schedule executor's kernel:
/// overwrite semantics (the first source group is written with a set-form
/// kernel — `dst` is never pre-copied or pre-zeroed), cache-sized tiles,
/// and up to eight sources folded per pass. With no indices, `dst` is
/// zeroed.
pub(crate) fn xor_gather_into<'a, I: Copy, F>(dst: &mut [u8], indices: &[I], fetch: F)
where
    F: Fn(I) -> &'a [u8],
{
    xor_gather_tiled(dst, indices, fetch, TILE_BYTES);
}

/// XOR all `sources` into `dst` with multi-source unrolling: up to eight
/// sources are folded per pass in `[u64; 8]` lanes, and the block is
/// processed in cache-sized tiles so the destination stays hot while the
/// sources stream through. Overwrites `dst` (no pre-zeroing pass); with no
/// sources, `dst` becomes all-zero. Byte-identical to [`xor_many_into`].
pub fn xor_many_into_unrolled(dst: &mut [u8], sources: &[&[u8]]) {
    xor_gather_into(dst, sources, |s| s);
}

/// [`xor_many_into_unrolled`] with a caller-chosen tile size. Benchmark
/// tuning hook for [`TILE_BYTES`] — production callers should use
/// [`xor_many_into_unrolled`] (or the schedule executor), which bake in the
/// tuned default. `tile_bytes` is clamped to at least 8.
pub fn xor_many_into_tiled(dst: &mut [u8], sources: &[&[u8]], tile_bytes: usize) {
    xor_gather_tiled(dst, sources, |s| s, tile_bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference semantics: zero, then accumulate one source at a time.
    fn xor_many_naive(dst: &mut [u8], sources: &[&[u8]]) {
        dst.fill(0);
        for src in sources {
            assert_eq!(dst.len(), src.len());
            for (d, s) in dst.iter_mut().zip(*src) {
                *d ^= s;
            }
        }
    }

    #[test]
    fn xor_roundtrip() {
        let a: Vec<u8> = (0..=255u8).collect();
        let b: Vec<u8> = (0..=255u8).rev().collect();
        let mut d = a.clone();
        xor_into(&mut d, &b);
        xor_into(&mut d, &b);
        assert_eq!(d, a);
    }

    #[test]
    fn odd_lengths_hit_the_tail() {
        // Lengths straddling both the 64-byte wide groups and the 8-byte
        // mid-loop: 63/65 exercise the wide→u64 handoff, 7/9 the u64→byte
        // handoff, 64/128 the pure wide path.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 127, 128, 129] {
            let a: Vec<u8> = (0..len as u32).map(|i| (i * 7 + 3) as u8).collect();
            let b: Vec<u8> = (0..len as u32).map(|i| (i * 13 + 1) as u8).collect();
            let mut d = a.clone();
            xor_into(&mut d, &b);
            let expect: Vec<u8> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
            assert_eq!(d, expect, "len={len}");
        }
    }

    #[test]
    fn xor_many_zero_sources_clears() {
        let mut d = vec![0xAA; 16];
        xor_many_into(&mut d, &[]);
        assert!(d.iter().all(|&b| b == 0));
    }

    #[test]
    fn xor_many_overwrites_stale_destination() {
        // Overwrite semantics must hold on every source-count path (empty,
        // single-copy, set2-opening): stale bytes in dst never leak through.
        for n_sources in 0..=5usize {
            let srcs: Vec<Vec<u8>> = (0..n_sources)
                .map(|k| (0..33u32).map(|i| ((i + k as u32) * 31) as u8).collect())
                .collect();
            let refs: Vec<&[u8]> = srcs.iter().map(std::vec::Vec::as_slice).collect();
            let mut d = vec![0x5Au8; 33];
            xor_many_into(&mut d, &refs);
            let mut expect = vec![0u8; 33];
            xor_many_naive(&mut expect, &refs);
            assert_eq!(d, expect, "n_sources={n_sources}");
        }
    }

    #[test]
    fn xor_many_matches_sequential() {
        let srcs: Vec<Vec<u8>> = (0..5)
            .map(|k| (0..33u32).map(|i| ((i + k) * 31) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(std::vec::Vec::as_slice).collect();
        let mut d = vec![0u8; 33];
        xor_many_into(&mut d, &refs);
        let mut expect = vec![0u8; 33];
        for s in &srcs {
            for (e, &x) in expect.iter_mut().zip(s) {
                *e ^= x;
            }
        }
        assert_eq!(d, expect);
    }

    #[test]
    fn xor_into_from_basic() {
        let a = [1u8, 2, 3];
        let b = [255u8, 0, 3];
        let mut d = [0u8; 3];
        xor_into_from(&mut d, &a, &b);
        assert_eq!(d, [254, 2, 0]);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut d = [0u8; 3];
        xor_into(&mut d, &[0u8; 4]);
    }

    #[test]
    fn unrolled_matches_naive_for_all_source_counts() {
        // 0..=20 sources covers: the empty/copy/set2/set4/set8 opening
        // groups, full 8-wide accumulate folds, and every 0..=7 remainder
        // branch after them. Odd lengths exercise the u64 and scalar tails;
        // 257 crosses several 64-byte wide groups.
        for n_sources in 0..=20usize {
            for len in [0usize, 1, 7, 8, 33, 65, 257] {
                let srcs: Vec<Vec<u8>> = (0..n_sources)
                    .map(|k| {
                        (0..len as u32)
                            .map(|i| ((i + 1) * (k as u32 + 3) * 97) as u8)
                            .collect()
                    })
                    .collect();
                let refs: Vec<&[u8]> = srcs.iter().map(std::vec::Vec::as_slice).collect();
                let mut naive = vec![0xAB; len];
                xor_many_naive(&mut naive, &refs);
                let mut unrolled = vec![0xCD; len];
                xor_many_into_unrolled(&mut unrolled, &refs);
                assert_eq!(naive, unrolled, "n_sources={n_sources} len={len}");
                let mut simple = vec![0xEF; len];
                xor_many_into(&mut simple, &refs);
                assert_eq!(naive, simple, "n_sources={n_sources} len={len}");
            }
        }
    }

    #[test]
    fn unrolled_crosses_tile_boundaries() {
        let len = TILE_BYTES * 2 + 17;
        let srcs: Vec<Vec<u8>> = (0..5)
            .map(|k| {
                (0..len as u32)
                    .map(|i| (i.wrapping_mul(k + 7) >> 3) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(std::vec::Vec::as_slice).collect();
        let mut naive = vec![0u8; len];
        xor_many_naive(&mut naive, &refs);
        let mut unrolled = vec![0u8; len];
        xor_many_into_unrolled(&mut unrolled, &refs);
        assert_eq!(naive, unrolled);
    }

    #[test]
    fn tiled_variant_matches_for_extreme_tile_sizes() {
        // Tiny tiles (clamped to 8), sub-block tiles, and tiles larger than
        // the whole block must all agree — the bench sweep relies on every
        // tile size being correct.
        let len = 3 * 1024 + 13;
        let srcs: Vec<Vec<u8>> = (0..11)
            .map(|k| {
                (0..len as u32)
                    .map(|i| (i.wrapping_mul(2 * k + 9) >> 2) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(std::vec::Vec::as_slice).collect();
        let mut naive = vec![0u8; len];
        xor_many_naive(&mut naive, &refs);
        for tile in [1usize, 8, 64, 1024, len, len * 4] {
            let mut out = vec![0x77u8; len];
            xor_many_into_tiled(&mut out, &refs, tile);
            assert_eq!(naive, out, "tile={tile}");
        }
    }

    #[test]
    fn gather_resolves_indices() {
        let pool: Vec<Vec<u8>> = (0..4).map(|k| vec![1u8 << k; 11]).collect();
        let mut d = vec![0u8; 11];
        xor_gather_into(&mut d, &[0usize, 2, 3], |i| pool[i].as_slice());
        assert!(d.iter().all(|&b| b == 0b1101));
    }

    #[test]
    #[should_panic]
    fn unrolled_length_mismatch_panics() {
        let mut d = [0u8; 3];
        xor_many_into_unrolled(&mut d, &[&[0u8; 3], &[0u8; 4]]);
    }
}
