//! XOR kernels.
//!
//! Everything in a RAID-6 array code reduces to XOR over fixed-size blocks.
//! The hot loop here works in `u64` lanes via `chunks_exact` — the compiler
//! auto-vectorizes this shape well (see the Rust Performance Book's guidance
//! on bounds-check-free iteration) — with a scalar tail for odd lengths.

/// `dst ^= src`, element-wise. Panics if lengths differ.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into: length mismatch");
    let mut dst_chunks = dst.chunks_exact_mut(8);
    let mut src_chunks = src.chunks_exact(8);
    for (d, s) in dst_chunks.by_ref().zip(src_chunks.by_ref()) {
        let dw = u64::from_ne_bytes(d.try_into().expect("chunk is 8 bytes"));
        let sw = u64::from_ne_bytes(s.try_into().expect("chunk is 8 bytes"));
        d.copy_from_slice(&(dw ^ sw).to_ne_bytes());
    }
    for (d, s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d ^= s;
    }
}

/// `dst = a ^ b`, element-wise into a fresh output slice.
pub fn xor_into_from(dst: &mut [u8], a: &[u8], b: &[u8]) {
    assert_eq!(dst.len(), a.len(), "xor_into_from: length mismatch (a)");
    dst.copy_from_slice(a);
    xor_into(dst, b);
}

/// XOR all `sources` together into `dst` (which is first zeroed).
/// With no sources, `dst` becomes all-zero.
pub fn xor_many_into(dst: &mut [u8], sources: &[&[u8]]) {
    dst.fill(0);
    for src in sources {
        xor_into(dst, src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_roundtrip() {
        let a: Vec<u8> = (0..=255u8).collect();
        let b: Vec<u8> = (0..=255u8).rev().collect();
        let mut d = a.clone();
        xor_into(&mut d, &b);
        xor_into(&mut d, &b);
        assert_eq!(d, a);
    }

    #[test]
    fn odd_lengths_hit_the_tail() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 65] {
            let a: Vec<u8> = (0..len as u32).map(|i| (i * 7 + 3) as u8).collect();
            let b: Vec<u8> = (0..len as u32).map(|i| (i * 13 + 1) as u8).collect();
            let mut d = a.clone();
            xor_into(&mut d, &b);
            let expect: Vec<u8> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
            assert_eq!(d, expect, "len={len}");
        }
    }

    #[test]
    fn xor_many_zero_sources_clears() {
        let mut d = vec![0xAA; 16];
        xor_many_into(&mut d, &[]);
        assert!(d.iter().all(|&b| b == 0));
    }

    #[test]
    fn xor_many_matches_sequential() {
        let srcs: Vec<Vec<u8>> = (0..5)
            .map(|k| (0..33u32).map(|i| ((i + k) * 31) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(|v| v.as_slice()).collect();
        let mut d = vec![0u8; 33];
        xor_many_into(&mut d, &refs);
        let mut expect = vec![0u8; 33];
        for s in &srcs {
            for (e, &x) in expect.iter_mut().zip(s) {
                *e ^= x;
            }
        }
        assert_eq!(d, expect);
    }

    #[test]
    fn xor_into_from_basic() {
        let a = [1u8, 2, 3];
        let b = [255u8, 0, 3];
        let mut d = [0u8; 3];
        xor_into_from(&mut d, &a, &b);
        assert_eq!(d, [254, 2, 0]);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut d = [0u8; 3];
        xor_into(&mut d, &[0u8; 4]);
    }
}
