//! XOR kernels.
//!
//! Everything in a RAID-6 array code reduces to XOR over fixed-size blocks.
//! The hot loop here works in `u64` lanes via `chunks_exact` — the compiler
//! auto-vectorizes this shape well (see the Rust Performance Book's guidance
//! on bounds-check-free iteration) — with a scalar tail for odd lengths.
//!
//! Two kernel families cover the schedule executor's needs:
//!
//! * **accumulate** (`dst ^= s₀ ^ s₁ ^ …`): [`xor_into`] plus the wider
//!   [`xor_into2`]/[`xor_into4`]/[`xor_into8`] folds, which amortize the
//!   accumulator load/store over up to eight source streams;
//! * **set** (`dst = s₀ ^ s₁ ^ …`): [`xor_set2`]/[`xor_set4`]/[`xor_set8`],
//!   which never read `dst`. The multi-source entry points open with a set
//!   kernel instead of `fill(0)`-or-`copy_from_slice` followed by a separate
//!   XOR pass, saving one full write (or read-modify-write) pass over the
//!   destination.

/// `dst ^= src`, element-wise. Panics if lengths differ.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into: length mismatch");
    let mut dst_chunks = dst.chunks_exact_mut(8);
    let mut src_chunks = src.chunks_exact(8);
    for (d, s) in dst_chunks.by_ref().zip(src_chunks.by_ref()) {
        let dw = u64::from_ne_bytes(d.try_into().expect("chunk is 8 bytes"));
        let sw = u64::from_ne_bytes(s.try_into().expect("chunk is 8 bytes"));
        d.copy_from_slice(&(dw ^ sw).to_ne_bytes());
    }
    for (d, s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d ^= s;
    }
}

/// `dst = a ^ b`, element-wise into a fresh output slice. Single pass over
/// `dst` (set-form kernel; `dst` is never read).
pub fn xor_into_from(dst: &mut [u8], a: &[u8], b: &[u8]) {
    assert_eq!(dst.len(), a.len(), "xor_into_from: length mismatch (a)");
    assert_eq!(dst.len(), b.len(), "xor_into_from: length mismatch (b)");
    xor_set2(dst, a, b);
}

/// XOR all `sources` together into `dst` (overwrite semantics: previous
/// contents of `dst` do not contribute). With no sources, `dst` becomes
/// all-zero. The first two sources are folded into the initial overwrite
/// pass — there is no separate zeroing or copying pass over `dst`.
pub fn xor_many_into(dst: &mut [u8], sources: &[&[u8]]) {
    for src in sources {
        assert_eq!(dst.len(), src.len(), "xor_many_into: length mismatch");
    }
    match sources {
        [] => dst.fill(0),
        [a] => dst.copy_from_slice(a),
        [a, b, rest @ ..] => {
            xor_set2(dst, a, b);
            for src in rest {
                xor_into(dst, src);
            }
        }
    }
}

/// Tile size for the multi-source kernels: each destination tile stays
/// resident in L1 while several sources stream through it, so a parity
/// built from many members loads and stores its accumulator once per
/// source *group* instead of once per source. Tuned with the
/// `xor_kernel` bench's tile sweep (see EXPERIMENTS.md); 16 KiB leaves
/// room in a 32 KiB L1d for the destination tile plus streaming sources.
pub const TILE_BYTES: usize = 16 * 1024;

#[inline]
fn load_u64(bytes: &[u8]) -> u64 {
    u64::from_ne_bytes(bytes.try_into().expect("chunk is 8 bytes"))
}

/// `dst ^= a ^ b` over equal-length slices.
#[inline]
fn xor_into2(dst: &mut [u8], a: &[u8], b: &[u8]) {
    debug_assert!(dst.len() == a.len() && dst.len() == b.len());
    let mut d = dst.chunks_exact_mut(8);
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    for ((d, a), b) in d.by_ref().zip(ac.by_ref()).zip(bc.by_ref()) {
        let w = load_u64(d) ^ load_u64(a) ^ load_u64(b);
        d.copy_from_slice(&w.to_ne_bytes());
    }
    for ((d, a), b) in d
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *d ^= a ^ b;
    }
}

/// `dst ^= a ^ b ^ c ^ e` over equal-length slices — four source streams
/// folded per accumulator load/store.
#[inline]
fn xor_into4(dst: &mut [u8], a: &[u8], b: &[u8], c: &[u8], e: &[u8]) {
    debug_assert!(
        dst.len() == a.len()
            && dst.len() == b.len()
            && dst.len() == c.len()
            && dst.len() == e.len()
    );
    let mut d = dst.chunks_exact_mut(8);
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    let mut cc = c.chunks_exact(8);
    let mut ec = e.chunks_exact(8);
    for ((((d, a), b), c), e) in d
        .by_ref()
        .zip(ac.by_ref())
        .zip(bc.by_ref())
        .zip(cc.by_ref())
        .zip(ec.by_ref())
    {
        let w = load_u64(d) ^ load_u64(a) ^ load_u64(b) ^ load_u64(c) ^ load_u64(e);
        d.copy_from_slice(&w.to_ne_bytes());
    }
    for ((((d, a), b), c), e) in d
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
        .zip(cc.remainder())
        .zip(ec.remainder())
    {
        *d ^= a ^ b ^ c ^ e;
    }
}

/// `dst ^= s0 ^ … ^ s7` over equal-length slices — eight source streams
/// folded per accumulator load/store. D-Code and X-Code parities at p = 13
/// have 10–11 members, so one eight-wide fold plus a short remainder covers
/// a whole equation in two passes over the destination tile.
#[inline]
#[allow(clippy::too_many_arguments)]
fn xor_into8(
    dst: &mut [u8],
    s0: &[u8],
    s1: &[u8],
    s2: &[u8],
    s3: &[u8],
    s4: &[u8],
    s5: &[u8],
    s6: &[u8],
    s7: &[u8],
) {
    debug_assert!(
        dst.len() == s0.len()
            && dst.len() == s1.len()
            && dst.len() == s2.len()
            && dst.len() == s3.len()
            && dst.len() == s4.len()
            && dst.len() == s5.len()
            && dst.len() == s6.len()
            && dst.len() == s7.len()
    );
    let mut d = dst.chunks_exact_mut(8);
    let mut c0 = s0.chunks_exact(8);
    let mut c1 = s1.chunks_exact(8);
    let mut c2 = s2.chunks_exact(8);
    let mut c3 = s3.chunks_exact(8);
    let mut c4 = s4.chunks_exact(8);
    let mut c5 = s5.chunks_exact(8);
    let mut c6 = s6.chunks_exact(8);
    let mut c7 = s7.chunks_exact(8);
    for ((((((((d, a), b), c), e), f), g), h), k) in d
        .by_ref()
        .zip(c0.by_ref())
        .zip(c1.by_ref())
        .zip(c2.by_ref())
        .zip(c3.by_ref())
        .zip(c4.by_ref())
        .zip(c5.by_ref())
        .zip(c6.by_ref())
        .zip(c7.by_ref())
    {
        let w = load_u64(d)
            ^ load_u64(a)
            ^ load_u64(b)
            ^ load_u64(c)
            ^ load_u64(e)
            ^ load_u64(f)
            ^ load_u64(g)
            ^ load_u64(h)
            ^ load_u64(k);
        d.copy_from_slice(&w.to_ne_bytes());
    }
    for ((((((((d, a), b), c), e), f), g), h), k) in d
        .into_remainder()
        .iter_mut()
        .zip(c0.remainder())
        .zip(c1.remainder())
        .zip(c2.remainder())
        .zip(c3.remainder())
        .zip(c4.remainder())
        .zip(c5.remainder())
        .zip(c6.remainder())
        .zip(c7.remainder())
    {
        *d ^= a ^ b ^ c ^ e ^ f ^ g ^ h ^ k;
    }
}

/// `dst = a ^ b` (set form: `dst` is written, never read).
#[inline]
fn xor_set2(dst: &mut [u8], a: &[u8], b: &[u8]) {
    debug_assert!(dst.len() == a.len() && dst.len() == b.len());
    let mut d = dst.chunks_exact_mut(8);
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    for ((d, a), b) in d.by_ref().zip(ac.by_ref()).zip(bc.by_ref()) {
        let w = load_u64(a) ^ load_u64(b);
        d.copy_from_slice(&w.to_ne_bytes());
    }
    for ((d, a), b) in d
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *d = a ^ b;
    }
}

/// `dst = a ^ b ^ c ^ e` (set form: `dst` is written, never read).
#[inline]
fn xor_set4(dst: &mut [u8], a: &[u8], b: &[u8], c: &[u8], e: &[u8]) {
    debug_assert!(
        dst.len() == a.len()
            && dst.len() == b.len()
            && dst.len() == c.len()
            && dst.len() == e.len()
    );
    let mut d = dst.chunks_exact_mut(8);
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    let mut cc = c.chunks_exact(8);
    let mut ec = e.chunks_exact(8);
    for ((((d, a), b), c), e) in d
        .by_ref()
        .zip(ac.by_ref())
        .zip(bc.by_ref())
        .zip(cc.by_ref())
        .zip(ec.by_ref())
    {
        let w = load_u64(a) ^ load_u64(b) ^ load_u64(c) ^ load_u64(e);
        d.copy_from_slice(&w.to_ne_bytes());
    }
    for ((((d, a), b), c), e) in d
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
        .zip(cc.remainder())
        .zip(ec.remainder())
    {
        *d = a ^ b ^ c ^ e;
    }
}

/// `dst = s0 ^ … ^ s7` (set form: `dst` is written, never read).
#[inline]
#[allow(clippy::too_many_arguments)]
fn xor_set8(
    dst: &mut [u8],
    s0: &[u8],
    s1: &[u8],
    s2: &[u8],
    s3: &[u8],
    s4: &[u8],
    s5: &[u8],
    s6: &[u8],
    s7: &[u8],
) {
    debug_assert!(
        dst.len() == s0.len()
            && dst.len() == s1.len()
            && dst.len() == s2.len()
            && dst.len() == s3.len()
            && dst.len() == s4.len()
            && dst.len() == s5.len()
            && dst.len() == s6.len()
            && dst.len() == s7.len()
    );
    let mut d = dst.chunks_exact_mut(8);
    let mut c0 = s0.chunks_exact(8);
    let mut c1 = s1.chunks_exact(8);
    let mut c2 = s2.chunks_exact(8);
    let mut c3 = s3.chunks_exact(8);
    let mut c4 = s4.chunks_exact(8);
    let mut c5 = s5.chunks_exact(8);
    let mut c6 = s6.chunks_exact(8);
    let mut c7 = s7.chunks_exact(8);
    for ((((((((d, a), b), c), e), f), g), h), k) in d
        .by_ref()
        .zip(c0.by_ref())
        .zip(c1.by_ref())
        .zip(c2.by_ref())
        .zip(c3.by_ref())
        .zip(c4.by_ref())
        .zip(c5.by_ref())
        .zip(c6.by_ref())
        .zip(c7.by_ref())
    {
        let w = load_u64(a)
            ^ load_u64(b)
            ^ load_u64(c)
            ^ load_u64(e)
            ^ load_u64(f)
            ^ load_u64(g)
            ^ load_u64(h)
            ^ load_u64(k);
        d.copy_from_slice(&w.to_ne_bytes());
    }
    for ((((((((d, a), b), c), e), f), g), h), k) in d
        .into_remainder()
        .iter_mut()
        .zip(c0.remainder())
        .zip(c1.remainder())
        .zip(c2.remainder())
        .zip(c3.remainder())
        .zip(c4.remainder())
        .zip(c5.remainder())
        .zip(c6.remainder())
        .zip(c7.remainder())
    {
        *d = a ^ b ^ c ^ e ^ f ^ g ^ h ^ k;
    }
}

/// One destination tile: overwrite `d` with the XOR of every fetched source
/// slice. Opens with the widest applicable *set* kernel (8/4/2/copy) so the
/// destination is never pre-zeroed or pre-copied, then folds the remaining
/// sources eight at a time, finishing with a 4/2/1 remainder.
fn xor_tile<'a, I: Copy, F>(d: &mut [u8], indices: &[I], range: (usize, usize), fetch: &F)
where
    F: Fn(I) -> &'a [u8],
{
    let (start, end) = range;
    let s = |i: I| &fetch(i)[start..end];
    // Opening set-form group: consume the widest prefix we have a kernel for.
    let rest = match indices {
        [] => {
            d.fill(0);
            return;
        }
        [a] => {
            d.copy_from_slice(s(*a));
            return;
        }
        [a0, a1, a2, a3, a4, a5, a6, a7, rest @ ..] => {
            xor_set8(
                d,
                s(*a0),
                s(*a1),
                s(*a2),
                s(*a3),
                s(*a4),
                s(*a5),
                s(*a6),
                s(*a7),
            );
            rest
        }
        [a0, a1, a2, a3, rest @ ..] => {
            xor_set4(d, s(*a0), s(*a1), s(*a2), s(*a3));
            rest
        }
        [a0, a1, rest @ ..] => {
            xor_set2(d, s(*a0), s(*a1));
            rest
        }
    };
    // Accumulate the rest, eight sources per pass.
    let mut octs = rest.chunks_exact(8);
    for o in octs.by_ref() {
        xor_into8(
            d,
            s(o[0]),
            s(o[1]),
            s(o[2]),
            s(o[3]),
            s(o[4]),
            s(o[5]),
            s(o[6]),
            s(o[7]),
        );
    }
    let mut tail = octs.remainder();
    if let [a, b, c, e, more @ ..] = tail {
        xor_into4(d, s(*a), s(*b), s(*c), s(*e));
        tail = more;
    }
    match tail {
        [] => {}
        [a] => xor_into(d, s(*a)),
        [a, b] => xor_into2(d, s(*a), s(*b)),
        [a, b, c] => {
            xor_into2(d, s(*a), s(*b));
            xor_into(d, s(*c));
        }
        _ => unreachable!("remainder after 8- and 4-wide folds has < 4 elements"),
    }
}

/// Gather-form multi-source XOR with a caller-chosen tile size: see
/// [`xor_gather_into`]. Exposed (with `fetch` specialized to plain slices
/// via [`xor_many_into_tiled`]) so the benchmark suite can sweep tile sizes
/// to tune [`TILE_BYTES`].
fn xor_gather_tiled<'a, I: Copy, F>(dst: &mut [u8], indices: &[I], fetch: F, tile_bytes: usize)
where
    F: Fn(I) -> &'a [u8],
{
    let len = dst.len();
    for &i in indices {
        assert_eq!(fetch(i).len(), len, "xor_gather_into: length mismatch");
    }
    let tile = tile_bytes.max(8);
    let mut start = 0;
    loop {
        let end = (start + tile).min(len);
        xor_tile(&mut dst[start..end], indices, (start, end), &fetch);
        if end == len {
            break;
        }
        start = end;
    }
}

/// Gather-form multi-source XOR: `dst = fetch(i₀) ^ fetch(i₁) ^ …` for the
/// given indices, resolved through `fetch` so callers never build a
/// per-operation `Vec<&[u8]>`. This is the schedule executor's kernel:
/// overwrite semantics (the first source group is written with a set-form
/// kernel — `dst` is never pre-copied or pre-zeroed), cache-sized tiles,
/// and up to eight sources folded per pass. With no indices, `dst` is
/// zeroed.
pub(crate) fn xor_gather_into<'a, I: Copy, F>(dst: &mut [u8], indices: &[I], fetch: F)
where
    F: Fn(I) -> &'a [u8],
{
    xor_gather_tiled(dst, indices, fetch, TILE_BYTES);
}

/// XOR all `sources` into `dst` with multi-source unrolling: up to eight
/// sources are folded per pass in `u64` lanes, and the block is processed
/// in cache-sized tiles so the destination stays hot while the sources
/// stream through. Overwrites `dst` (no pre-zeroing pass); with no sources,
/// `dst` becomes all-zero. Byte-identical to [`xor_many_into`].
pub fn xor_many_into_unrolled(dst: &mut [u8], sources: &[&[u8]]) {
    xor_gather_into(dst, sources, |s| s);
}

/// [`xor_many_into_unrolled`] with a caller-chosen tile size. Benchmark
/// tuning hook for [`TILE_BYTES`] — production callers should use
/// [`xor_many_into_unrolled`] (or the schedule executor), which bake in the
/// tuned default. `tile_bytes` is clamped to at least 8.
pub fn xor_many_into_tiled(dst: &mut [u8], sources: &[&[u8]], tile_bytes: usize) {
    xor_gather_tiled(dst, sources, |s| s, tile_bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference semantics: zero, then accumulate one source at a time.
    fn xor_many_naive(dst: &mut [u8], sources: &[&[u8]]) {
        dst.fill(0);
        for src in sources {
            assert_eq!(dst.len(), src.len());
            for (d, s) in dst.iter_mut().zip(*src) {
                *d ^= s;
            }
        }
    }

    #[test]
    fn xor_roundtrip() {
        let a: Vec<u8> = (0..=255u8).collect();
        let b: Vec<u8> = (0..=255u8).rev().collect();
        let mut d = a.clone();
        xor_into(&mut d, &b);
        xor_into(&mut d, &b);
        assert_eq!(d, a);
    }

    #[test]
    fn odd_lengths_hit_the_tail() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 65] {
            let a: Vec<u8> = (0..len as u32).map(|i| (i * 7 + 3) as u8).collect();
            let b: Vec<u8> = (0..len as u32).map(|i| (i * 13 + 1) as u8).collect();
            let mut d = a.clone();
            xor_into(&mut d, &b);
            let expect: Vec<u8> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
            assert_eq!(d, expect, "len={len}");
        }
    }

    #[test]
    fn xor_many_zero_sources_clears() {
        let mut d = vec![0xAA; 16];
        xor_many_into(&mut d, &[]);
        assert!(d.iter().all(|&b| b == 0));
    }

    #[test]
    fn xor_many_overwrites_stale_destination() {
        // Overwrite semantics must hold on every source-count path (empty,
        // single-copy, set2-opening): stale bytes in dst never leak through.
        for n_sources in 0..=5usize {
            let srcs: Vec<Vec<u8>> = (0..n_sources)
                .map(|k| (0..33u32).map(|i| ((i + k as u32) * 31) as u8).collect())
                .collect();
            let refs: Vec<&[u8]> = srcs.iter().map(std::vec::Vec::as_slice).collect();
            let mut d = vec![0x5Au8; 33];
            xor_many_into(&mut d, &refs);
            let mut expect = vec![0u8; 33];
            xor_many_naive(&mut expect, &refs);
            assert_eq!(d, expect, "n_sources={n_sources}");
        }
    }

    #[test]
    fn xor_many_matches_sequential() {
        let srcs: Vec<Vec<u8>> = (0..5)
            .map(|k| (0..33u32).map(|i| ((i + k) * 31) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(std::vec::Vec::as_slice).collect();
        let mut d = vec![0u8; 33];
        xor_many_into(&mut d, &refs);
        let mut expect = vec![0u8; 33];
        for s in &srcs {
            for (e, &x) in expect.iter_mut().zip(s) {
                *e ^= x;
            }
        }
        assert_eq!(d, expect);
    }

    #[test]
    fn xor_into_from_basic() {
        let a = [1u8, 2, 3];
        let b = [255u8, 0, 3];
        let mut d = [0u8; 3];
        xor_into_from(&mut d, &a, &b);
        assert_eq!(d, [254, 2, 0]);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut d = [0u8; 3];
        xor_into(&mut d, &[0u8; 4]);
    }

    #[test]
    fn unrolled_matches_naive_for_all_source_counts() {
        // 0..=20 sources covers: the empty/copy/set2/set4/set8 opening
        // groups, full 8-wide accumulate folds, and every 0..=7 remainder
        // branch after them. Odd lengths exercise the scalar tails.
        for n_sources in 0..=20usize {
            for len in [0usize, 1, 7, 8, 33, 257] {
                let srcs: Vec<Vec<u8>> = (0..n_sources)
                    .map(|k| {
                        (0..len as u32)
                            .map(|i| ((i + 1) * (k as u32 + 3) * 97) as u8)
                            .collect()
                    })
                    .collect();
                let refs: Vec<&[u8]> = srcs.iter().map(std::vec::Vec::as_slice).collect();
                let mut naive = vec![0xAB; len];
                xor_many_naive(&mut naive, &refs);
                let mut unrolled = vec![0xCD; len];
                xor_many_into_unrolled(&mut unrolled, &refs);
                assert_eq!(naive, unrolled, "n_sources={n_sources} len={len}");
                let mut simple = vec![0xEF; len];
                xor_many_into(&mut simple, &refs);
                assert_eq!(naive, simple, "n_sources={n_sources} len={len}");
            }
        }
    }

    #[test]
    fn unrolled_crosses_tile_boundaries() {
        let len = TILE_BYTES * 2 + 17;
        let srcs: Vec<Vec<u8>> = (0..5)
            .map(|k| {
                (0..len as u32)
                    .map(|i| (i.wrapping_mul(k + 7) >> 3) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(std::vec::Vec::as_slice).collect();
        let mut naive = vec![0u8; len];
        xor_many_naive(&mut naive, &refs);
        let mut unrolled = vec![0u8; len];
        xor_many_into_unrolled(&mut unrolled, &refs);
        assert_eq!(naive, unrolled);
    }

    #[test]
    fn tiled_variant_matches_for_extreme_tile_sizes() {
        // Tiny tiles (clamped to 8), sub-block tiles, and tiles larger than
        // the whole block must all agree — the bench sweep relies on every
        // tile size being correct.
        let len = 3 * 1024 + 13;
        let srcs: Vec<Vec<u8>> = (0..11)
            .map(|k| {
                (0..len as u32)
                    .map(|i| (i.wrapping_mul(2 * k + 9) >> 2) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(std::vec::Vec::as_slice).collect();
        let mut naive = vec![0u8; len];
        xor_many_naive(&mut naive, &refs);
        for tile in [1usize, 8, 64, 1024, len, len * 4] {
            let mut out = vec![0x77u8; len];
            xor_many_into_tiled(&mut out, &refs, tile);
            assert_eq!(naive, out, "tile={tile}");
        }
    }

    #[test]
    fn gather_resolves_indices() {
        let pool: Vec<Vec<u8>> = (0..4).map(|k| vec![1u8 << k; 11]).collect();
        let mut d = vec![0u8; 11];
        xor_gather_into(&mut d, &[0usize, 2, 3], |i| pool[i].as_slice());
        assert!(d.iter().all(|&b| b == 0b1101));
    }

    #[test]
    #[should_panic]
    fn unrolled_length_mismatch_panics() {
        let mut d = [0u8; 3];
        xor_many_into_unrolled(&mut d, &[&[0u8; 3], &[0u8; 4]]);
    }
}
