//! Differential property tests for the optimizer tier: programs that
//! went through the full pass pipeline must be *byte-identical* to the
//! naive equation-by-equation oracles — `encode_naive` and
//! `apply_plan_naive` — across registry codes, primes, odd block sizes,
//! every 2-column erasure, and fused batch shapes. The symbolic
//! equivalence proofs live in `dcode-verify`; this file is the byte-level
//! cross-check that the proofs talk about the same executor semantics.

use dcode_baselines::registry::all_codes;
use dcode_codec::opt::{optimize, OptConfig};
use dcode_codec::{apply_plan_naive, encode_naive, FusedProgram, Stripe, XorProgram};
use dcode_core::decoder::plan_column_recovery;
use dcode_core::layout::CodeLayout;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| (seed.wrapping_mul(i as u64 | 1) >> 11) as u8)
        .collect()
}

fn pick_layout(p: usize, idx: usize) -> CodeLayout {
    let mut codes = all_codes(p);
    let n = codes.len();
    codes.swap_remove(idx % n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Optimized encode == the naive equation-by-equation encoder, for
    /// every registry code, sweep prime, and odd block size.
    #[test]
    fn optimized_encode_matches_naive_oracle(
        p_idx in 0usize..4,
        code_idx in 0usize..16,
        block_size in 1usize..120,
        seed in any::<u64>(),
    ) {
        let p = [5usize, 7, 11, 13][p_idx];
        let layout = pick_layout(p, code_idx);
        let program = XorProgram::compile_encode(&layout);
        let opt = optimize(&program, None, &OptConfig::full());
        prop_assert!(opt.certificate.holds(), "{}", layout.name());

        let data = payload(layout.data_len() * block_size, seed);
        let mut via_opt = Stripe::from_data(&layout, block_size, &data);
        let mut via_naive = via_opt.clone();
        opt.program.run(&mut via_opt);
        encode_naive(&layout, &mut via_naive);
        prop_assert_eq!(&via_opt, &via_naive, "{} p={p}", layout.name());
    }

    /// Optimized recovery programs == the naive plan replay, for every
    /// 2-column erasure of one (code, prime) draw — and both restore the
    /// pre-erasure bytes exactly.
    #[test]
    fn optimized_plans_match_naive_oracle_for_all_two_column_erasures(
        p_idx in 0usize..4,
        code_idx in 0usize..16,
        block_size in 1usize..48,
        seed in any::<u64>(),
    ) {
        let p = [5usize, 7, 11, 13][p_idx];
        let layout = pick_layout(p, code_idx);
        let grid = layout.grid();
        let mut golden = Stripe::from_data(
            &layout,
            block_size,
            &payload(layout.data_len() * block_size, seed),
        );
        encode_naive(&layout, &mut golden);

        for c1 in 0..layout.disks() {
            for c2 in c1 + 1..layout.disks() {
                let Ok(plan) = plan_column_recovery(&layout, &[c1, c2]) else {
                    continue; // a baseline outside its coverage; rank pass owns this
                };
                let program = XorProgram::compile_plan(grid, &plan);
                let outputs: BTreeSet<usize> =
                    plan.erased.iter().map(|&c| grid.index(c)).collect();
                let opt = optimize(&program, Some(&outputs), &OptConfig::full());
                prop_assert!(opt.certificate.holds(), "{} ({c1},{c2})", layout.name());

                let mut via_opt = golden.clone();
                via_opt.erase_columns(&[c1, c2]);
                let mut via_naive = via_opt.clone();
                opt.program.run(&mut via_opt);
                apply_plan_naive(&mut via_naive, &plan);
                prop_assert_eq!(&via_opt, &via_naive, "{} p={p} ({c1},{c2})", layout.name());
                prop_assert_eq!(&via_opt, &golden, "{} p={p} ({c1},{c2})", layout.name());
            }
        }
    }

    /// Fusing the *optimized* encode at batch shapes {1, 3, 16} stays
    /// byte-identical to the naive oracle on every stripe of the batch.
    #[test]
    fn fused_optimized_encode_matches_naive_oracle(
        p_idx in 0usize..4,
        code_idx in 0usize..16,
        batch_idx in 0usize..3,
        block_size in 1usize..64,
        seed in any::<u64>(),
    ) {
        let p = [5usize, 7, 11, 13][p_idx];
        let batch = [1usize, 3, 16][batch_idx];
        let layout = pick_layout(p, code_idx);
        let program = XorProgram::compile_encode(&layout);
        let opt = optimize(&program, None, &OptConfig::full());
        let fused = FusedProgram::fuse(&opt.program, batch);

        let per = layout.data_len() * block_size;
        let mut stripes: Vec<Stripe> = (0..batch)
            .map(|k| Stripe::from_data(&layout, block_size, &payload(per, seed ^ (k as u64) << 9)))
            .collect();
        let mut expect = stripes.clone();
        for s in &mut expect {
            encode_naive(&layout, s);
        }
        fused.run(&mut stripes);
        prop_assert_eq!(&stripes, &expect, "{} p={p} batch={batch}", layout.name());
    }
}
