//! Property-based tests for the byte engine: XOR kernel algebra, stripe
//! storage, and encoder equivalences under random payloads.

use dcode_codec::xor::{
    xor_into, xor_into_from, xor_many_into, xor_many_into_tiled, xor_many_into_unrolled,
};
use dcode_codec::{encode, encode_parallel, encode_with_matrix, generator_matrix, Stripe};
use proptest::prelude::*;

/// Scalar reference: fold all sources into a fresh buffer, byte by byte.
fn xor_many_scalar(len: usize, sources: &[&[u8]]) -> Vec<u8> {
    let mut out = vec![0u8; len];
    for s in sources {
        for (d, &b) in out.iter_mut().zip(s.iter()) {
            *d ^= b;
        }
    }
    out
}

fn pseudo_sources(len: usize, seeds: &[u64]) -> Vec<Vec<u8>> {
    seeds
        .iter()
        .map(|&s| {
            (0..len)
                .map(|i| (s.wrapping_mul(i as u64 | 1) >> 9) as u8)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// XOR is an involution: x ^= y twice restores x.
    #[test]
    fn xor_involution(a in prop::collection::vec(any::<u8>(), 0..512),
                      b_seed in any::<u64>()) {
        let b: Vec<u8> = a.iter().enumerate()
            .map(|(i, _)| (b_seed.wrapping_mul(i as u64 + 1) >> 13) as u8)
            .collect();
        let mut d = a.clone();
        xor_into(&mut d, &b);
        xor_into(&mut d, &b);
        prop_assert_eq!(d, a);
    }

    /// Kernel matches the scalar definition byte for byte.
    #[test]
    fn xor_matches_scalar(a in prop::collection::vec(any::<u8>(), 0..300),
                          seed in any::<u64>()) {
        let b: Vec<u8> = a.iter().enumerate()
            .map(|(i, _)| (seed.wrapping_add(i as u64 * 7919) >> 21) as u8)
            .collect();
        let mut d = a.clone();
        xor_into(&mut d, &b);
        let scalar: Vec<u8> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
        prop_assert_eq!(d, scalar);
    }

    /// `xor_many_into` is order-independent (XOR commutes).
    #[test]
    fn xor_many_commutes(len in 1usize..200, seeds in prop::collection::vec(any::<u64>(), 1..6)) {
        let sources: Vec<Vec<u8>> = seeds.iter()
            .map(|&s| (0..len).map(|i| (s.wrapping_mul(i as u64 + 3) >> 17) as u8).collect())
            .collect();
        let fwd: Vec<&[u8]> = sources.iter().map(std::vec::Vec::as_slice).collect();
        let rev: Vec<&[u8]> = sources.iter().rev().map(std::vec::Vec::as_slice).collect();
        let mut d1 = vec![0u8; len];
        let mut d2 = vec![0u8; len];
        xor_many_into(&mut d1, &fwd);
        xor_many_into(&mut d2, &rev);
        prop_assert_eq!(d1, d2);
    }

    /// `xor_into_from(d, a, b)` equals xoring into a copy.
    #[test]
    fn xor_into_from_consistent(a in prop::collection::vec(any::<u8>(), 0..128),
                                seed in any::<u64>()) {
        let b: Vec<u8> = a.iter().enumerate()
            .map(|(i, _)| (seed ^ (i as u64 * 2654435761)) as u8)
            .collect();
        let mut d1 = vec![0u8; a.len()];
        xor_into_from(&mut d1, &a, &b);
        let mut d2 = a.clone();
        xor_into(&mut d2, &b);
        prop_assert_eq!(d1, d2);
    }

    /// `xor_many_into` overwrites the destination: whatever garbage is in
    /// `dst` beforehand, the result is exactly the scalar fold of the
    /// sources. Exercises every fold tier (8/4/2/1) and odd tails — source
    /// counts up to 20, lengths not multiples of 8.
    #[test]
    fn xor_many_overwrites_dst(len in 0usize..600,
                               seeds in prop::collection::vec(any::<u64>(), 0..=20),
                               garbage in any::<u8>()) {
        let sources = pseudo_sources(len, &seeds);
        let refs: Vec<&[u8]> = sources.iter().map(std::vec::Vec::as_slice).collect();
        let mut d = vec![garbage; len];
        xor_many_into(&mut d, &refs);
        prop_assert_eq!(d, xor_many_scalar(len, &refs));
    }

    /// The unrolled and tiled gather variants are byte-identical to
    /// `xor_many_into` for any tile size, source count, and tail length.
    #[test]
    fn xor_many_variants_agree(len in 0usize..600,
                               seeds in prop::collection::vec(any::<u64>(), 0..=20),
                               tile in 1usize..2048) {
        let sources = pseudo_sources(len, &seeds);
        let refs: Vec<&[u8]> = sources.iter().map(std::vec::Vec::as_slice).collect();
        let expect = xor_many_scalar(len, &refs);
        let mut unrolled = vec![0xAAu8; len];
        xor_many_into_unrolled(&mut unrolled, &refs);
        prop_assert_eq!(&unrolled, &expect);
        let mut tiled = vec![0x55u8; len];
        xor_many_into_tiled(&mut tiled, &refs, tile);
        prop_assert_eq!(&tiled, &expect);
    }

    /// Stripe data roundtrip for random payload lengths (with padding).
    #[test]
    fn stripe_payload_roundtrip(frac in 0.0f64..1.0, block in 1usize..64, seed in any::<u64>()) {
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let max = layout.data_len() * block;
        let len = (max as f64 * frac) as usize;
        let payload: Vec<u8> = (0..len)
            .map(|i| (seed.wrapping_mul(i as u64 | 1) >> 11) as u8)
            .collect();
        let s = Stripe::from_data(&layout, block, &payload);
        let out = s.data_bytes(&layout);
        prop_assert_eq!(&out[..len], payload.as_slice());
        prop_assert!(out[len..].iter().all(|&b| b == 0));
    }

    /// All three encoder backends agree on random data for D-Code and a
    /// parity-cascading code (RDP).
    #[test]
    fn encoder_backends_agree(seed in any::<u64>(), use_rdp in any::<bool>()) {
        let layout = if use_rdp {
            dcode_baselines::rdp::rdp(7).unwrap()
        } else {
            dcode_core::dcode::dcode(7).unwrap()
        };
        let block = 24;
        let payload: Vec<u8> = (0..layout.data_len() * block)
            .map(|i| (seed.wrapping_mul(i as u64 + 11) >> 19) as u8)
            .collect();
        let base = Stripe::from_data(&layout, block, &payload);
        let mut a = base.clone();
        encode(&layout, &mut a);
        let mut b = base.clone();
        encode_parallel(&layout, &mut b, 3);
        let mut c = base.clone();
        encode_with_matrix(&layout, &generator_matrix(&layout), &mut c);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }
}
