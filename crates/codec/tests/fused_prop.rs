//! Property-based tests for the fused batch encoder: the fused tile-major
//! replay must be byte-identical to sequential per-stripe replay for
//! every payload, block size, batch shape, and tile size — and mixed
//! batches (degraded placeholders, foreign grids) must fall back to the
//! unfused path and still come out correct.

use dcode_codec::fused::FusedProgram;
use dcode_codec::{
    encode_stripes_arena, encode_stripes_pooled, recover_stripes, verify_parities, EncodeArena,
    Stripe, XorProgram,
};
use dcode_core::dcode::dcode;
use dcode_core::decoder::plan_column_recovery;
use dcode_core::layout::CodeLayout;
use proptest::prelude::*;
use std::sync::Arc;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| (seed.wrapping_mul(i as u64 | 1) >> 11) as u8)
        .collect()
}

fn stripes_for(layout: &CodeLayout, block_size: usize, batch: usize, seed: u64) -> Vec<Stripe> {
    let per = layout.data_len() * block_size;
    (0..batch)
        .map(|k| Stripe::from_data(layout, block_size, &payload(per, seed ^ (k as u64) << 7)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fused replay == sequential replay, across odd block sizes, primes,
    /// batch shapes, and tile sizes.
    #[test]
    fn fused_matches_sequential_everywhere(
        p_idx in 0usize..2,
        block_size in 1usize..200,
        batch_idx in 0usize..4,
        tile in prop::sample::select(vec![8usize, 63, 64, 1024, 16 * 1024]),
        seed in any::<u64>(),
    ) {
        let p = [5usize, 7][p_idx];
        let batch = [1usize, 2, 3, 16][batch_idx];
        let layout = dcode(p).unwrap();
        let program = XorProgram::compile_encode(&layout);
        let mut fused_stripes = stripes_for(&layout, block_size, batch, seed);
        let mut seq_stripes = fused_stripes.clone();
        for s in &mut seq_stripes {
            program.run(s);
        }
        FusedProgram::fuse(&program, batch).run_with_tile(&mut fused_stripes, tile);
        prop_assert_eq!(&fused_stripes, &seq_stripes);
        for s in &fused_stripes {
            prop_assert!(verify_parities(&layout, s));
        }
    }

    /// Fused replay of a *recovery* program == sequential per-stripe
    /// replay, and both restore the batch to its pre-erasure bytes,
    /// across primes, odd block sizes, batch shapes {1, 3, 16}, and tile
    /// sizes — plus the public `recover_stripes` bulk entry point, which
    /// picks the fused path itself.
    #[test]
    fn fused_recovery_matches_sequential_and_restores(
        p_idx in 0usize..2,
        block_size in 1usize..160,
        batch_idx in 0usize..3,
        tile in prop::sample::select(vec![8usize, 63, 1024]),
        seed in any::<u64>(),
    ) {
        let p = [5usize, 7][p_idx];
        let batch = [1usize, 3, 16][batch_idx];
        let layout = dcode(p).unwrap();
        let cols = [0usize, 2];
        let plan = plan_column_recovery(&layout, &cols).unwrap();
        let program = XorProgram::compile_plan(layout.grid(), &plan);
        let encode = XorProgram::compile_encode(&layout);
        let mut golden = stripes_for(&layout, block_size, batch, seed);
        for s in &mut golden {
            encode.run(s);
        }
        let mut degraded = golden.clone();
        for s in &mut degraded {
            s.erase_columns(&cols);
        }
        let mut seq_stripes = degraded.clone();
        for s in &mut seq_stripes {
            program.run(s);
        }
        let mut fused_stripes = degraded.clone();
        FusedProgram::fuse(&program, batch).run_with_tile(&mut fused_stripes, tile);
        prop_assert_eq!(&fused_stripes, &seq_stripes);
        prop_assert_eq!(&fused_stripes, &golden);
        let mut via_bulk = degraded;
        recover_stripes(&layout, &cols, &mut via_bulk, 2).unwrap();
        prop_assert_eq!(&via_bulk, &golden);
    }

    /// The public bulk entry points (which pick the fused path themselves)
    /// agree with per-stripe replay across fan-outs, and arena reuse does
    /// not change bytes.
    #[test]
    fn bulk_entry_points_match_per_stripe_replay(
        block_size in 1usize..96,
        batch in 1usize..10,
        threads in 1usize..6,
        seed in any::<u64>(),
    ) {
        let layout = dcode(7).unwrap();
        let program = Arc::new(XorProgram::compile_encode(&layout));
        let pool = minipool::WorkerPool::with_workers(2);
        let mut expect = stripes_for(&layout, block_size, batch, seed);
        for s in &mut expect {
            program.run(s);
        }
        let mut via_pooled = stripes_for(&layout, block_size, batch, seed);
        encode_stripes_pooled(&program, &mut via_pooled, &pool, threads);
        prop_assert_eq!(&via_pooled, &expect);
        let mut arena = EncodeArena::new();
        for _ in 0..2 {
            let mut via_arena = stripes_for(&layout, block_size, batch, seed);
            encode_stripes_arena(&program, &mut via_arena, &pool, threads, &mut arena);
            prop_assert_eq!(&via_arena, &expect);
        }
    }

    /// A batch whose stripes have *different* block sizes still fuses
    /// (the executor reads each stripe's own size) and stays correct.
    #[test]
    fn heterogeneous_block_sizes_fuse_correctly(
        sizes in prop::collection::vec(1usize..130, 1..6),
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let layout = dcode(5).unwrap();
        let program = Arc::new(XorProgram::compile_encode(&layout));
        let pool = minipool::WorkerPool::with_workers(2);
        let mut stripes: Vec<Stripe> = sizes
            .iter()
            .enumerate()
            .map(|(k, &bs)| {
                Stripe::from_data(
                    &layout,
                    bs,
                    &payload(layout.data_len() * bs, seed ^ k as u64),
                )
            })
            .collect();
        let mut expect = stripes.clone();
        for s in &mut expect {
            program.run(s);
        }
        encode_stripes_pooled(&program, &mut stripes, &pool, threads);
        prop_assert_eq!(&stripes, &expect);
    }

    /// A batch with a foreign-grid stripe (a degraded/mismatched member)
    /// must skip the fused path and take the legacy per-stripe fallback,
    /// which panics on the mismatch exactly as it always has — and the
    /// unwind must leave every healthy stripe's data intact, never a
    /// placeholder.
    #[test]
    fn mixed_grid_batch_leaves_healthy_stripes_correct_after_unwind(
        block_size in 1usize..64,
        poison_pos in 0usize..4,
        seed in any::<u64>(),
    ) {
        let layout = dcode(7).unwrap();
        let small = dcode(5).unwrap();
        let program = Arc::new(XorProgram::compile_encode(&layout));
        let pool = minipool::WorkerPool::with_workers(2);
        let mut stripes = stripes_for(&layout, block_size, 4, seed);
        let mut expect = stripes.clone();
        for s in &mut expect {
            program.run(s);
        }
        let poison_payload = payload(small.data_len() * block_size, seed ^ 0xDEAD);
        stripes[poison_pos] = Stripe::from_data(&small, block_size, &poison_payload);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            encode_stripes_pooled(&program, &mut stripes, &pool, 2);
        }));
        prop_assert!(caught.is_err(), "foreign-grid stripe must panic the replay");
        // Every healthy stripe is restored; stripes in chunks that did
        // not contain the poison are fully encoded.
        for (i, s) in stripes.iter().enumerate() {
            if i == poison_pos {
                prop_assert_eq!(s.grid(), small.grid());
                continue;
            }
            prop_assert_eq!(
                s.data_bytes(&layout),
                expect[i].data_bytes(&layout),
                "stripe {} lost data across the unwind",
                i
            );
        }
    }
}
