//! Differential properties for the schedule compiler: a compiled
//! [`XorProgram`] must be byte-identical to the naive interpreters for
//! every registry code, random block sizes (odd lengths hit the kernels'
//! scalar tails), and every 2-column erasure.

use dcode_baselines::registry::all_codes;
use dcode_codec::schedule::XorProgram;
use dcode_codec::{apply_plan_naive, encode_naive, verify_parities, Stripe};
use dcode_core::decoder::plan_column_recovery;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 51) as u8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Compiled encode (sequential and parallel) equals the naive
    /// interpreter for every code in the registry.
    #[test]
    fn compiled_encode_matches_naive(p in prop::sample::select(vec![5usize, 7, 11, 13]),
                                     block in 1usize..40,
                                     threads in 2usize..6,
                                     seed in any::<u64>()) {
        for layout in all_codes(p) {
            let data = payload(layout.data_len() * block, seed);
            let base = Stripe::from_data(&layout, block, &data);

            let mut naive = base.clone();
            encode_naive(&layout, &mut naive);

            let program = XorProgram::compile_encode(&layout);
            let mut compiled = base.clone();
            program.run(&mut compiled);
            prop_assert_eq!(&compiled, &naive, "{} p={} block={}", layout.name(), p, block);
            prop_assert!(verify_parities(&layout, &compiled));

            let mut parallel = base.clone();
            program.run_parallel(&mut parallel, threads);
            prop_assert_eq!(&parallel, &naive, "{} p={} threads={}", layout.name(), p, threads);
        }
    }

    /// Compiled plan replay equals naive replay for every 2-column erasure
    /// of every registry code.
    #[test]
    fn compiled_decode_matches_naive_for_all_double_erasures(
            p in prop::sample::select(vec![5usize, 7, 11, 13]),
            block in 1usize..24,
            seed in any::<u64>()) {
        for layout in all_codes(p) {
            let data = payload(layout.data_len() * block, seed ^ p as u64);
            let mut golden = Stripe::from_data(&layout, block, &data);
            encode_naive(&layout, &mut golden);
            for c1 in 0..layout.disks() {
                for c2 in c1 + 1..layout.disks() {
                    let plan = plan_column_recovery(&layout, &[c1, c2])
                        .expect("RAID-6 codes tolerate any double failure");

                    let mut naive = golden.clone();
                    naive.erase_columns(&[c1, c2]);
                    apply_plan_naive(&mut naive, &plan);

                    let program = XorProgram::compile_plan(layout.grid(), &plan);
                    let mut compiled = golden.clone();
                    compiled.erase_columns(&[c1, c2]);
                    program.run(&mut compiled);

                    prop_assert_eq!(&compiled, &naive,
                        "{} p={} cols=({},{})", layout.name(), p, c1, c2);
                    prop_assert_eq!(&compiled, &golden,
                        "{} p={} cols=({},{}) lost data", layout.name(), p, c1, c2);
                }
            }
        }
    }
}

/// Replaying a `subplan_for` through a compiled schedule reconstructs
/// exactly the wanted cells: wanted cells match the original stripe, and
/// erased cells outside the subplan's reach stay zeroed.
#[test]
fn subplan_replay_reconstructs_exactly_wanted_cells() {
    for layout in all_codes(7) {
        let block = 17; // odd: scalar tail in play
        let data = payload(layout.data_len() * block, 0xD0C0DE);
        let mut golden = Stripe::from_data(&layout, block, &data);
        encode_naive(&layout, &mut golden);

        let cols = [1usize, 3];
        let plan = plan_column_recovery(&layout, &cols).unwrap();
        // Want only the erased cells of the first failed column.
        let wanted: BTreeSet<_> = plan
            .erased
            .iter()
            .copied()
            .filter(|c| c.col == cols[0])
            .collect();
        assert!(!wanted.is_empty());
        let sub = plan.subplan_for(&wanted);

        let mut stripe = golden.clone();
        stripe.erase_columns(&cols);
        XorProgram::compile_plan(layout.grid(), &sub).run(&mut stripe);

        let targets: BTreeSet<_> = sub.steps.iter().map(|s| s.target).collect();
        assert!(
            targets.is_superset(&wanted),
            "{}: subplan missing wanted targets",
            layout.name()
        );
        for &cell in &wanted {
            assert_eq!(
                stripe.block(cell),
                golden.block(cell),
                "{}: wanted cell {:?} not reconstructed",
                layout.name(),
                cell
            );
        }
        // Erased cells the subplan never targeted must still be zero.
        for &cell in &plan.erased {
            if !targets.contains(&cell) {
                assert!(
                    stripe.block(cell).iter().all(|&b| b == 0),
                    "{}: untargeted cell {:?} was written",
                    layout.name(),
                    cell
                );
            }
        }
    }
}
