use minisim::CheckOptions;

#[test]
#[ignore = "measurement probe"]
fn measure() {
    for pb in [1usize, 2, 3] {
        for inv in dcode_race::invariants() {
            let opts = CheckOptions {
                preemption_bound: pb,
                spurious_wakeups: 1,
                max_interleavings: 25_000,
                max_steps: 200_000,
            };
            let t = std::time::Instant::now();
            let report = minisim::check(&opts, inv.model);
            println!(
                "pb={pb} {:<20} {:>7} interleavings complete={} violation={:?} in {:?}",
                inv.name,
                report.interleavings,
                report.complete,
                report.violation.as_ref().map(|v| (&v.kind, &v.message)),
                t.elapsed()
            );
        }
    }
}
