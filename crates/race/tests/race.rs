//! The dcode-race suite: every invariant holds across its whole
//! interleaving tree, every mutation is caught with a replayable seed,
//! and the lock-discipline tier maps registry evidence into verify
//! diagnostics. Under `--features dcode-sim` the invariants run at the
//! deep (`dcode race --all`) budgets and must clear the interleaving
//! floor; without it they run the quick smoke budgets.

use dcode_race::{
    invariants, lockdisc, run_all, run_mutation, test_options, MIN_DEEP_INTERLEAVINGS,
};
use dcode_verify::diag::{DiagKind, Severity};
use minisim::lockorder::{LockOrderReport, WaitWhileHolding};
use minisim::sync::{Arc, Condvar, Mutex};
use minisim::ViolationKind;

fn floor() -> u64 {
    if cfg!(feature = "dcode-sim") {
        MIN_DEEP_INTERLEAVINGS
    } else {
        1
    }
}

fn check_invariant(name: &str) {
    let inv = invariants()
        .into_iter()
        .find(|i| i.name == name)
        .expect("registered invariant");
    let report = minisim::check(&test_options(), inv.model);
    assert!(
        report.violation.is_none(),
        "{name} violated: {:#?}",
        report.violation
    );
    assert!(
        report.interleavings >= floor(),
        "{name} explored only {} interleavings (floor {})",
        report.interleavings,
        floor()
    );
}

#[test]
fn ack_after_durable_holds() {
    check_invariant("ack_after_durable");
}

#[test]
fn busy_not_hang_holds() {
    check_invariant("busy_not_hang");
}

#[test]
fn shutdown_joins_all_holds() {
    check_invariant("shutdown_joins_all");
}

#[test]
fn stat_never_queued_holds() {
    check_invariant("stat_never_queued");
}

#[test]
fn cache_race_adopt_holds() {
    check_invariant("cache_race_adopt");
}

#[test]
fn submit_vs_drop_holds() {
    check_invariant("submit_vs_drop");
}

fn check_mutation(name: &str, expect_kind: ViolationKind) {
    let inv = invariants()
        .into_iter()
        .find(|i| i.mutation.name == name)
        .expect("registered mutation");
    let out = run_mutation(&inv.mutation);
    assert!(out.caught, "mutation {name} was not caught");
    assert_eq!(out.kind, Some(expect_kind), "mutation {name}");
    assert!(
        out.replay_reproduced,
        "mutation {name}'s seed did not replay to a violation"
    );
    let seed = out.seed.expect("caught mutations carry a seed");
    assert!(seed.starts_with('p') && seed.contains(':'), "seed {seed}");
}

#[test]
fn mutation_reply_before_publish_is_caught() {
    check_mutation("reply_before_publish", ViolationKind::Panic);
}

#[test]
fn mutation_blocking_push_is_caught() {
    check_mutation("blocking_push", ViolationKind::Deadlock);
}

#[test]
fn mutation_drop_without_notify_is_caught() {
    check_mutation("drop_without_notify", ViolationKind::Deadlock);
}

#[test]
fn mutation_stat_through_queue_is_caught() {
    check_mutation("stat_through_queue", ViolationKind::Deadlock);
}

#[test]
fn mutation_adopt_overwrite_is_caught() {
    check_mutation("adopt_overwrite", ViolationKind::Panic);
}

#[test]
fn mutation_exit_before_drain_is_caught() {
    check_mutation("exit_before_drain", ViolationKind::Panic);
}

#[test]
fn counterexamples_carry_a_trace() {
    let inv = invariants()
        .into_iter()
        .find(|i| i.mutation.name == "reply_before_publish")
        .expect("registered");
    let report = minisim::check(&dcode_race::mutation_options(), inv.mutation.model);
    let violation = report.violation.expect("mutation caught");
    assert!(
        !violation.trace.is_empty(),
        "counterexample must list its interleaving's visible ops"
    );
    let replayed = minisim::replay(&violation.seed, inv.mutation.model).expect("seed parses");
    assert!(replayed.violation.is_some(), "replay reproduces the bug");
}

/// The checker's spurious-wakeup injection catches a condvar wait whose
/// predicate is checked with `if` instead of a loop — the wait-predicate
/// discipline the ISSUE calls out, demonstrated on facade primitives.
#[test]
fn unlooped_condvar_wait_is_caught_by_spurious_wakeups() {
    fn unlooped() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let setter = minisim::thread::spawn(move || {
            *p2.0.lock().expect("flag lock") = true;
            p2.1.notify_one();
        });
        let (lock, cv) = (&pair.0, &pair.1);
        let mut ready = lock.lock().expect("flag lock");
        if !*ready {
            // BUG: predicate not rechecked in a loop.
            ready = cv.wait(ready).expect("flag lock");
        }
        assert!(*ready, "woke without the predicate holding");
        drop(ready);
        setter.join().expect("setter exits");
    }
    let report = minisim::check(&dcode_race::mutation_options(), unlooped);
    let violation = report.violation.expect("unlooped wait must be caught");
    assert_eq!(violation.kind, ViolationKind::Panic);
    assert!(
        violation.message.contains("predicate"),
        "{}",
        violation.message
    );
}

#[test]
fn lock_discipline_workload_is_cycle_free() {
    let (report, diags) = lockdisc::analyze();
    assert!(
        report.cycles.is_empty(),
        "production lock order has a cycle: {:?}",
        report.cycles
    );
    assert!(
        diags.iter().all(|d| d.severity != Severity::Error),
        "{diags:?}"
    );
}

#[test]
fn diagnose_maps_registry_evidence_to_verify_diagnostics() {
    let synthetic = LockOrderReport {
        edges: vec![("a".into(), "b".into(), 3), ("b".into(), "a".into(), 1)],
        cycles: vec![vec!["a".into(), "b".into()]],
        waits_while_holding: vec![WaitWhileHolding {
            condvar: "cv".into(),
            waiting_lock: "inner".into(),
            held: vec!["outer".into()],
        }],
        max_hold_micros: vec![("slow".into(), 120), ("fast".into(), 3)],
    };
    let diags = lockdisc::diagnose(&synthetic, 50);
    assert!(diags.iter().any(|d| {
        d.severity == Severity::Error
            && matches!(&d.kind, DiagKind::LockOrderCycle { chain } if chain == &vec!["a".to_string(), "b".to_string()])
    }));
    assert!(diags.iter().any(|d| {
        matches!(&d.kind, DiagKind::CondvarWaitWhileHolding { condvar, released, held }
            if condvar == "cv" && released == "inner" && held == &vec!["outer".to_string()])
    }));
    assert!(diags.iter().any(
        |d| matches!(&d.kind, DiagKind::LongLockHold { lock, micros, budget_micros }
            if lock == "slow" && *micros == 120 && *budget_micros == 50)
    ));
    // The fast lock stays under budget: exactly one hold diagnostic.
    assert_eq!(
        diags
            .iter()
            .filter(|d| matches!(d.kind, DiagKind::LongLockHold { .. }))
            .count(),
        1
    );
    // Human renderings carry the lock names.
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        rendered
            .iter()
            .any(|s| s.contains("lock-order cycle: a -> b -> a")),
        "{rendered:?}"
    );
}

#[test]
fn full_report_passes_and_renders() {
    let report = run_all(false);
    assert!(report.passed(), "failures: {:?}", report.failures());
    let json = report.to_json();
    for needle in [
        "\"passed\":true",
        "\"ack_after_durable\"",
        "\"busy_not_hang\"",
        "\"shutdown_joins_all\"",
        "\"stat_never_queued\"",
        "\"cache_race_adopt\"",
        "\"submit_vs_drop\"",
        "\"mutation\"",
        "\"lock_order\"",
        "\"replay_reproduced\":true",
    ] {
        assert!(json.contains(needle), "JSON missing {needle}: {json}");
    }
    let text = report.to_string();
    assert!(text.contains("race: PASS"), "{text}");
    assert!(text.contains("lock order:"), "{text}");
}
