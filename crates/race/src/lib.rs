#![warn(missing_docs)]
//! # dcode-race
//!
//! Exhaustive concurrency model checking and lock-discipline analysis
//! for the workspace's pool/cache/shard layer, surfaced by the CLI as
//! `dcode race [--all] [--json]`.
//!
//! Two tiers, both fully static (no wall-clock races, no stress loops):
//!
//! 1. **Model checking** ([`models`]): six invariants over the *real*
//!    [`minipool::WorkerPool`], [`dcode_codec::cache::ScheduleCache`],
//!    and `dcode-server` shard queue/worker state machines, executed
//!    under [`minisim::check`]'s deterministic DFS scheduler. Every
//!    interleaving up to the preemption bound is enumerated; violations
//!    come back with a seed that [`minisim::replay`]s the exact
//!    counterexample interleaving. Each invariant ships with a
//!    **mutation self-test** ([`mutations`]) — a deliberately buggy
//!    re-implementation of the protocol that the checker must catch,
//!    proving the invariant has teeth.
//! 2. **Lock discipline** ([`lockdisc`]): a representative workload runs
//!    on the production `std::sync` path with `minisim`'s lock-order
//!    registry enabled; the recorded acquisition-order graph is checked
//!    for cycles, condvar waits entered while holding other locks, and
//!    over-budget hold times, reported through `dcode-verify`'s
//!    [`Diagnostic`] vocabulary.
//!
//! The `dcode-sim` cargo feature only *enlarges exploration bounds* (the
//! in-crate tests then run at the deep `--all` budgets); it changes no
//! production code path.

pub mod lockdisc;
pub mod models;
pub mod mutations;

use dcode_verify::diag::{Diagnostic, Severity};
use minisim::lockorder::LockOrderReport;
use minisim::{check, replay, CheckOptions, Report, ViolationKind};
use std::fmt;

/// The interleaving floor each invariant must clear in deep (`--all`)
/// mode: fewer than this means the model is too small to mean anything.
pub const MIN_DEEP_INTERLEAVINGS: u64 = 1000;

/// Exploration budgets. Quick mode (`dcode race`) is a smoke pass;
/// deep mode (`dcode race --all`) is the CI gate and must push every
/// invariant past [`MIN_DEEP_INTERLEAVINGS`] distinct interleavings.
pub fn check_options(deep: bool) -> CheckOptions {
    if deep {
        CheckOptions {
            preemption_bound: 3,
            spurious_wakeups: 1,
            max_interleavings: 25_000,
            max_steps: 200_000,
        }
    } else {
        CheckOptions {
            preemption_bound: 2,
            spurious_wakeups: 1,
            max_interleavings: 4_000,
            max_steps: 100_000,
        }
    }
}

/// The budgets the in-crate tests run at: quick normally, deep when the
/// `dcode-sim` feature is enabled (CI's race job).
pub fn test_options() -> CheckOptions {
    check_options(cfg!(feature = "dcode-sim"))
}

/// Budgets for mutation self-tests: the point is *catching* the bug, not
/// enumerating the whole tree, and every mutant falls within a couple of
/// preemptions.
pub fn mutation_options() -> CheckOptions {
    CheckOptions {
        preemption_bound: 2,
        spurious_wakeups: 1,
        max_interleavings: 20_000,
        max_steps: 100_000,
    }
}

/// A deliberately buggy protocol the checker must catch.
pub struct Mutation {
    /// Short identifier (e.g. `reply_before_publish`).
    pub name: &'static str,
    /// The bug class it reintroduces.
    pub description: &'static str,
    /// The buggy model.
    pub model: fn(),
}

/// One model-checked invariant plus its mutation self-test.
pub struct Invariant {
    /// Short identifier (e.g. `ack_after_durable`).
    pub name: &'static str,
    /// What the invariant asserts.
    pub description: &'static str,
    /// The model over the real code.
    pub model: fn(),
    /// The buggy counterpart that must be caught.
    pub mutation: Mutation,
}

/// The full invariant registry, in report order.
pub fn invariants() -> Vec<Invariant> {
    vec![
        Invariant {
            name: "ack_after_durable",
            description: "no PUT reply before the store op completed and the snapshot published",
            model: models::ack_after_durable,
            mutation: Mutation {
                name: "reply_before_publish",
                description: "worker acks before publishing the snapshot",
                model: mutations::reply_before_publish,
            },
        },
        Invariant {
            name: "busy_not_hang",
            description: "a full shard queue rejects with Busy(depth) instead of blocking",
            model: models::busy_not_hang,
            mutation: Mutation {
                name: "blocking_push",
                description: "push blocks on a full queue behind a stalled worker",
                model: mutations::blocking_push,
            },
        },
        Invariant {
            name: "shutdown_joins_all",
            description: "pool drop joins every worker and drains every accepted job",
            model: models::shutdown_joins_all,
            mutation: Mutation {
                name: "drop_without_notify",
                description: "teardown sets shutdown without notifying parked workers",
                model: mutations::drop_without_notify,
            },
        },
        Invariant {
            name: "stat_never_queued",
            description: "STAT completes from published snapshots while the shard is wedged",
            model: models::stat_never_queued,
            mutation: Mutation {
                name: "stat_through_queue",
                description: "stat is served by queueing an op behind the stalled worker",
                model: mutations::stat_through_queue,
            },
        },
        Invariant {
            name: "cache_race_adopt",
            description: "racing schedule-cache misses converge on one pointer-identical program",
            model: models::cache_race_adopt,
            mutation: Mutation {
                name: "adopt_overwrite",
                description: "insert-race loser overwrites the winner's entry",
                model: mutations::adopt_overwrite,
            },
        },
        Invariant {
            name: "submit_vs_drop",
            description: "submit racing pool teardown completes or is rejected, never hangs",
            model: models::submit_vs_drop,
            mutation: Mutation {
                name: "exit_before_drain",
                description: "worker honors shutdown before draining accepted jobs",
                model: mutations::exit_before_drain,
            },
        },
    ]
}

/// The outcome of one mutation self-test.
#[derive(Clone, Debug)]
pub struct MutationOutcome {
    /// The mutation's identifier.
    pub name: &'static str,
    /// The bug class it reintroduces.
    pub description: &'static str,
    /// Whether the checker found a violating interleaving.
    pub caught: bool,
    /// The violation kind, when caught.
    pub kind: Option<ViolationKind>,
    /// The counterexample seed, when caught.
    pub seed: Option<String>,
    /// Whether replaying the seed reproduced a violation.
    pub replay_reproduced: bool,
    /// Interleavings explored before the catch (or the budget).
    pub interleavings: u64,
}

/// The outcome of one invariant: the checker's report on the real code
/// plus its mutation self-test.
#[derive(Clone, Debug)]
pub struct InvariantOutcome {
    /// The invariant's identifier.
    pub name: &'static str,
    /// What it asserts.
    pub description: &'static str,
    /// The model-checking report over the real code.
    pub report: Report,
    /// The mutation self-test outcome.
    pub mutation: MutationOutcome,
}

/// Everything `dcode race` reports.
pub struct RaceReport {
    /// Whether this was a deep (`--all`) run.
    pub deep: bool,
    /// The interleaving floor applied per invariant (0 in quick mode).
    pub min_interleavings: u64,
    /// Per-invariant outcomes.
    pub invariants: Vec<InvariantOutcome>,
    /// The recorded lock-order graph from the production-path workload.
    pub lock_order: LockOrderReport,
    /// Lock-discipline findings mapped into the verify vocabulary.
    pub diagnostics: Vec<Diagnostic>,
}

/// Run one mutation self-test: check it, and if caught, replay the seed
/// to confirm the counterexample is deterministic.
pub fn run_mutation(mutation: &Mutation) -> MutationOutcome {
    let report = check(&mutation_options(), mutation.model);
    match report.violation {
        Some(v) => {
            let replay_reproduced =
                replay(&v.seed, mutation.model).is_ok_and(|r| r.violation.is_some());
            MutationOutcome {
                name: mutation.name,
                description: mutation.description,
                caught: true,
                kind: Some(v.kind),
                seed: Some(v.seed),
                replay_reproduced,
                interleavings: report.interleavings,
            }
        }
        None => MutationOutcome {
            name: mutation.name,
            description: mutation.description,
            caught: false,
            kind: None,
            seed: None,
            replay_reproduced: false,
            interleavings: report.interleavings,
        },
    }
}

/// Model-check one invariant (and its mutation) at the given budgets.
pub fn run_invariant(invariant: &Invariant, opts: &CheckOptions) -> InvariantOutcome {
    InvariantOutcome {
        name: invariant.name,
        description: invariant.description,
        report: check(opts, invariant.model),
        mutation: run_mutation(&invariant.mutation),
    }
}

/// Run both tiers: every invariant + mutation under the model checker,
/// then the lock-discipline workload on the production path.
pub fn run_all(deep: bool) -> RaceReport {
    let opts = check_options(deep);
    let invariants = invariants()
        .iter()
        .map(|inv| run_invariant(inv, &opts))
        .collect();
    let (lock_order, diagnostics) = lockdisc::analyze();
    RaceReport {
        deep,
        min_interleavings: if deep { MIN_DEEP_INTERLEAVINGS } else { 0 },
        invariants,
        lock_order,
        diagnostics,
    }
}

fn kind_name(kind: ViolationKind) -> &'static str {
    match kind {
        ViolationKind::Panic => "panic",
        ViolationKind::Deadlock => "deadlock",
        ViolationKind::StepLimit => "step-limit",
        ViolationKind::ScheduleDivergence => "schedule-divergence",
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl RaceReport {
    /// Why this report fails, one reason per line; empty means pass.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for inv in &self.invariants {
            if let Some(v) = &inv.report.violation {
                out.push(format!(
                    "invariant {} violated ({}): {} [seed {}]",
                    inv.name,
                    kind_name(v.kind),
                    v.message,
                    v.seed
                ));
            }
            if inv.report.interleavings < self.min_interleavings {
                out.push(format!(
                    "invariant {} explored only {} interleavings (floor {})",
                    inv.name, inv.report.interleavings, self.min_interleavings
                ));
            }
            if !inv.mutation.caught {
                out.push(format!(
                    "mutation {} was NOT caught — the {} invariant has gone blind",
                    inv.mutation.name, inv.name
                ));
            } else if !inv.mutation.replay_reproduced {
                out.push(format!(
                    "mutation {} was caught but its seed did not replay",
                    inv.mutation.name
                ));
            }
        }
        for d in &self.diagnostics {
            if d.severity == Severity::Error {
                out.push(d.to_string());
            }
        }
        out
    }

    /// True when every invariant holds, every mutation is caught with a
    /// replayable seed, the interleaving floor is met, and the lock-order
    /// graph is cycle-free.
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }

    /// The machine-readable report `dcode race --json` prints (and CI
    /// archives as `race-report.json`).
    pub fn to_json(&self) -> String {
        let invariants: Vec<String> = self
            .invariants
            .iter()
            .map(|inv| {
                let violation = match &inv.report.violation {
                    Some(v) => format!(
                        "{{\"kind\":\"{}\",\"message\":\"{}\",\"seed\":\"{}\",\"trace_len\":{}}}",
                        kind_name(v.kind),
                        esc(&v.message),
                        esc(&v.seed),
                        v.trace.len()
                    ),
                    None => "null".to_string(),
                };
                let m = &inv.mutation;
                format!(
                    "{{\"name\":\"{}\",\"description\":\"{}\",\"interleavings\":{},\
                     \"complete\":{},\"preemption_bound\":{},\"violation\":{},\
                     \"mutation\":{{\"name\":\"{}\",\"caught\":{},\"kind\":{},\
                     \"seed\":{},\"replay_reproduced\":{},\"interleavings\":{}}}}}",
                    inv.name,
                    esc(inv.description),
                    inv.report.interleavings,
                    inv.report.complete,
                    inv.report.preemption_bound,
                    violation,
                    m.name,
                    m.caught,
                    m.kind
                        .map_or("null".to_string(), |k| format!("\"{}\"", kind_name(k))),
                    m.seed
                        .as_deref()
                        .map_or("null".to_string(), |s| format!("\"{}\"", esc(s))),
                    m.replay_reproduced,
                    m.interleavings,
                )
            })
            .collect();
        let edges: Vec<String> = self
            .lock_order
            .edges
            .iter()
            .map(|(from, to, n)| {
                format!(
                    "{{\"from\":\"{}\",\"to\":\"{}\",\"count\":{n}}}",
                    esc(from),
                    esc(to)
                )
            })
            .collect();
        let cycles: Vec<String> = self
            .lock_order
            .cycles
            .iter()
            .map(|c| {
                let names: Vec<String> = c.iter().map(|n| format!("\"{}\"", esc(n))).collect();
                format!("[{}]", names.join(","))
            })
            .collect();
        let waits: Vec<String> = self
            .lock_order
            .waits_while_holding
            .iter()
            .map(|w| {
                let held: Vec<String> = w.held.iter().map(|h| format!("\"{}\"", esc(h))).collect();
                format!(
                    "{{\"condvar\":\"{}\",\"released\":\"{}\",\"held\":[{}]}}",
                    esc(&w.condvar),
                    esc(&w.waiting_lock),
                    held.join(",")
                )
            })
            .collect();
        let holds: Vec<String> = self
            .lock_order
            .max_hold_micros
            .iter()
            .map(|(name, us)| format!("\"{}\":{us}", esc(name)))
            .collect();
        let diags: Vec<String> = self
            .diagnostics
            .iter()
            .map(|d| format!("\"{}\"", esc(&d.to_string())))
            .collect();
        format!(
            "{{\"deep\":{},\"min_interleavings\":{},\"passed\":{},\n \
             \"invariants\":[{}],\n \
             \"lock_order\":{{\"edges\":[{}],\"cycles\":[{}],\
             \"waits_while_holding\":[{}],\"max_hold_micros\":{{{}}}}},\n \
             \"diagnostics\":[{}]}}",
            self.deep,
            self.min_interleavings,
            self.passed(),
            invariants.join(",\n  "),
            edges.join(","),
            cycles.join(","),
            waits.join(","),
            holds.join(","),
            diags.join(",")
        )
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "race: {} invariant(s), preemption bound {}, {} mode",
            self.invariants.len(),
            check_options(self.deep).preemption_bound,
            if self.deep { "deep" } else { "quick" }
        )?;
        for inv in &self.invariants {
            let status = match &inv.report.violation {
                Some(v) => format!("VIOLATED ({})", kind_name(v.kind)),
                None => "ok".to_string(),
            };
            let mutation = if inv.mutation.caught && inv.mutation.replay_reproduced {
                format!(
                    "mutation {} caught ({}) + replayed in {} interleaving(s)",
                    inv.mutation.name,
                    inv.mutation.kind.map_or("?", kind_name),
                    inv.mutation.interleavings
                )
            } else if inv.mutation.caught {
                format!(
                    "mutation {} caught but seed did NOT replay",
                    inv.mutation.name
                )
            } else {
                format!("mutation {} NOT caught", inv.mutation.name)
            };
            writeln!(
                f,
                "  {:<20} {:>6} interleavings{} — {status}; {mutation}",
                inv.name,
                inv.report.interleavings,
                if inv.report.complete {
                    " (tree exhausted)"
                } else {
                    ""
                },
            )?;
        }
        writeln!(
            f,
            "lock order: {} edge(s), {} cycle(s), {} condvar-wait(s) while holding, {} named lock(s) timed",
            self.lock_order.edges.len(),
            self.lock_order.cycles.len(),
            self.lock_order.waits_while_holding.len(),
            self.lock_order.max_hold_micros.len()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        let failures = self.failures();
        if failures.is_empty() {
            write!(f, "race: PASS")
        } else {
            for reason in &failures {
                writeln!(f, "  FAIL {reason}")?;
            }
            write!(f, "race: FAIL ({} reason(s))", failures.len())
        }
    }
}
