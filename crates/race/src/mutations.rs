//! Mutation self-tests: deliberately buggy re-implementations of each
//! invariant's protocol, built from the same facade primitives the real
//! code uses. Each one reintroduces a bug class the corresponding
//! invariant guards against; [`minisim::check`] must find a violating
//! interleaving, and its seed must [`minisim::replay`] to the same
//! violation. A mutation that stops being caught means the checker — or
//! the invariant — has gone blind, so `dcode race` fails on it.
//!
//! The mutants are local on purpose: the production crates stay correct,
//! and the checker is validated against the *bug shape* (reply before
//! publish, blocking push, lost shutdown wakeup, stat behind the queue,
//! adopt-overwrite, exit-before-drain) rather than against a specific
//! broken revision.

use minisim::sync::{mpsc, Arc, Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// M1 (vs I1 `ack_after_durable`): the worker acks *before* publishing.
/// An observer that trusts the ack can then read a stale snapshot.
pub fn reply_before_publish() {
    let published = Arc::new(Mutex::new(0u64));
    let (req_tx, req_rx) = mpsc::channel::<mpsc::Sender<()>>();
    let p2 = Arc::clone(&published);
    let worker = minisim::thread::spawn(move || {
        while let Ok(reply) = req_rx.recv() {
            // BUG: the reply races ahead of the publish.
            let _ = reply.send(());
            *p2.lock().expect("publish lock") += 1;
        }
    });
    let (reply_tx, reply_rx) = mpsc::channel();
    req_tx.send(reply_tx).expect("worker is alive");
    reply_rx.recv().expect("worker acks");
    assert!(
        *published.lock().expect("publish lock") >= 1,
        "acked op not yet published"
    );
    drop(req_tx);
    worker.join().expect("worker exits");
}

/// M2 (vs I2 `busy_not_hang`): a *blocking* push on a full queue. With
/// the consumer stalled, the producer parks on a condvar nobody will
/// signal — a deadlock the checker must report.
pub fn blocking_push() {
    struct Q {
        jobs: usize,
        stalled: bool,
    }
    let state = Arc::new((
        Mutex::new(Q {
            jobs: 0,
            stalled: true,
        }),
        Condvar::new(), // ready: consumer waits for work / unstall
        Condvar::new(), // not_full: producer waits for room
    ));
    let cap = 1usize;
    let s2 = Arc::clone(&state);
    let consumer = minisim::thread::spawn(move || {
        let (lock, ready, not_full) = (&s2.0, &s2.1, &s2.2);
        let mut g = lock.lock().expect("queue lock");
        while g.stalled || g.jobs == 0 {
            g = ready.wait(g).expect("queue lock");
        }
        g.jobs -= 1;
        not_full.notify_all();
    });
    let (lock, _ready, not_full) = (&state.0, &state.1, &state.2);
    let mut g = lock.lock().expect("queue lock");
    g.jobs += 1; // first push fits
                 // BUG: second push blocks until there is room instead of rejecting.
    while g.jobs >= cap {
        g = not_full.wait(g).expect("queue lock");
    }
    g.jobs += 1;
    drop(g);
    consumer.join().expect("consumer exits");
}

/// M3 (vs I3 `shutdown_joins_all`): teardown sets the shutdown flag but
/// never notifies — a parked worker misses the wakeup and the join
/// blocks forever (the classic lost wakeup).
pub fn drop_without_notify() {
    struct Q {
        jobs: VecDeque<u32>,
        shutdown: bool,
    }
    let state = Arc::new((
        Mutex::new(Q {
            jobs: VecDeque::new(),
            shutdown: false,
        }),
        Condvar::new(),
    ));
    let s2 = Arc::clone(&state);
    let worker = minisim::thread::spawn(move || {
        let (lock, cv) = (&s2.0, &s2.1);
        let mut g = lock.lock().expect("queue lock");
        loop {
            if g.jobs.pop_front().is_some() {
                continue;
            }
            if g.shutdown {
                return;
            }
            g = cv.wait(g).expect("queue lock");
        }
    });
    {
        let mut g = state.0.lock().expect("queue lock");
        g.shutdown = true;
        // BUG: no notify_all() here.
    }
    worker.join().expect("worker observed shutdown");
}

/// M4 (vs I4 `stat_never_queued`): STAT is served by queueing an op
/// behind the stalled worker, so observability deadlocks exactly when
/// the shard is wedged.
pub fn stat_through_queue() {
    struct Q {
        jobs: VecDeque<mpsc::Sender<u64>>,
        stalled: bool,
        ops_done: u64,
    }
    let state = Arc::new((
        Mutex::new(Q {
            jobs: VecDeque::new(),
            stalled: true,
            ops_done: 0,
        }),
        Condvar::new(),
    ));
    let s2 = Arc::clone(&state);
    let worker = minisim::thread::spawn(move || {
        let (lock, cv) = (&s2.0, &s2.1);
        let mut g = lock.lock().expect("queue lock");
        loop {
            if !g.stalled {
                if let Some(reply) = g.jobs.pop_front() {
                    g.ops_done += 1;
                    let done = g.ops_done;
                    drop(g);
                    let _ = reply.send(done);
                    g = lock.lock().expect("queue lock");
                    continue;
                }
                return; // empty + unstalled = this mutant's shutdown
            }
            g = cv.wait(g).expect("queue lock");
        }
    });
    let s3 = Arc::clone(&state);
    let stat = minisim::thread::spawn(move || {
        // BUG: the stat probe goes through the queue and waits for the
        // stalled worker to answer it.
        let (tx, rx) = mpsc::channel();
        s3.0.lock().expect("queue lock").jobs.push_back(tx);
        s3.1.notify_all();
        rx.recv().expect("stat answered")
    });
    // The invariant's shape: STAT must complete while the shard is
    // stalled — so join it before unstalling.
    let ops = stat.join().expect("stat completes while stalled");
    assert_eq!(ops, 1);
    state.0.lock().expect("queue lock").stalled = false;
    state.1.notify_all();
    worker.join().expect("worker exits");
}

/// M5 (vs I5 `cache_race_adopt`): the insert-race loser *overwrites* the
/// winner's entry instead of adopting it, so two concurrent lookups can
/// return different (non-pointer-equal) programs.
pub fn adopt_overwrite() {
    fn get(slot: &Mutex<Option<Arc<u64>>>, id: u64) -> Arc<u64> {
        {
            let g = slot.lock().expect("cache lock");
            if let Some(p) = g.as_ref() {
                return Arc::clone(p);
            }
        }
        let mine = Arc::new(id); // "compile" outside the lock
        let mut g = slot.lock().expect("cache lock");
        // BUG: unconditional overwrite; the correct protocol adopts an
        // entry inserted while the lock was released.
        *g = Some(Arc::clone(&mine));
        mine
    }
    let slot = Arc::new(Mutex::new(None::<Arc<u64>>));
    let s2 = Arc::clone(&slot);
    let racer = minisim::thread::spawn(move || get(&s2, 1));
    let a = get(&slot, 2);
    let b = racer.join().expect("racer completes");
    assert!(
        Arc::ptr_eq(&a, &b),
        "concurrent misses must converge on one program"
    );
}

/// M6 (vs I6 `submit_vs_drop`): the worker honors shutdown *before*
/// draining the queue, stranding a job that submit() had accepted.
pub fn exit_before_drain() {
    struct Q {
        jobs: VecDeque<Box<dyn FnOnce() + Send>>,
        shutdown: bool,
    }
    let state = Arc::new((
        Mutex::new(Q {
            jobs: VecDeque::new(),
            shutdown: false,
        }),
        Condvar::new(),
    ));
    let s2 = Arc::clone(&state);
    let worker = minisim::thread::spawn(move || {
        let (lock, cv) = (&s2.0, &s2.1);
        let mut g = lock.lock().expect("queue lock");
        loop {
            // BUG: shutdown checked before the queue is drained.
            if g.shutdown {
                return;
            }
            if let Some(jb) = g.jobs.pop_front() {
                drop(g);
                jb();
                g = lock.lock().expect("queue lock");
                continue;
            }
            g = cv.wait(g).expect("queue lock");
        }
    });
    let ran = Arc::new(AtomicUsize::new(0));
    let accepted = {
        let mut g = state.0.lock().expect("queue lock");
        if g.shutdown {
            false
        } else {
            let ran = Arc::clone(&ran);
            g.jobs.push_back(Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
            true
        }
    };
    state.1.notify_all();
    {
        let mut g = state.0.lock().expect("queue lock");
        g.shutdown = true;
    }
    state.1.notify_all();
    worker.join().expect("worker exits");
    assert_eq!(
        ran.load(Ordering::SeqCst),
        usize::from(accepted),
        "accepted job was stranded by shutdown"
    );
}
