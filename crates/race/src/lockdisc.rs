//! The fully static second tier: run a representative pool + cache +
//! shard workload on the **production** (`std::sync`) path with the
//! `minisim` lock-order registry enabled, then report the observed
//! lock-acquisition order graph — cycles, condvar waits entered while
//! other locks were held, and long hold times — through `dcode-verify`'s
//! [`Diagnostic`] vocabulary.

use crate::models::{job, StubEngine};
use dcode_server::{spawn_engine_worker, ServerMetrics, ShardOp, ShardQueue, ShardSnapshot};
use dcode_verify::diag::{DiagKind, Diagnostic};
use minipool::WorkerPool;
use minisim::lockorder::{self, LockOrderReport};
use minisim::sync::{Arc, Mutex};
use std::sync::atomic::AtomicBool;
use std::sync::Mutex as StdMutex;

/// Hold-time budget: a named lock held longer than this (per acquisition)
/// earns a [`DiagKind::LongLockHold`] warning. Every lock in the
/// workspace guards queue/snapshot bookkeeping, never I/O or XOR, so
/// 50ms is generous by orders of magnitude.
pub const HOLD_BUDGET_MICROS: u64 = 50_000;

/// The registry is process-global; serialize analyzer runs so two
/// concurrent callers (parallel tests) cannot interleave their evidence.
fn gate() -> &'static StdMutex<()> {
    static GATE: StdMutex<()> = StdMutex::new(());
    &GATE
}

/// Exercise every named lock role in the workspace on the std path:
/// minipool batch + detached submit + drop-join, schedule-cache miss and
/// hit, and a shard worker serving ops while a STAT-style probe reads
/// the published snapshot and queue depth.
fn workload() {
    // pool.queue / pool.available / pool.workers
    let pool = WorkerPool::with_workers(2);
    let squares = pool.run((0..4u64).map(|i| move || i * i).collect::<Vec<_>>());
    assert_eq!(squares, vec![0, 1, 4, 9]);
    let _ = pool.submit(|| {});
    drop(pool);

    // codec.cache.entries — one miss, one hit
    let cache = dcode_codec::cache::ScheduleCache::new();
    let layout = dcode_core::dcode::dcode(5).expect("5 is prime");
    let a = cache.encode_program(&layout);
    let b = cache.encode_program(&layout);
    assert!(std::sync::Arc::ptr_eq(&a, &b));

    // server.shard.queue / server.shard.ready / server.shard.snapshot
    let queue = Arc::new(ShardQueue::new(4));
    let snapshot = Arc::new(Mutex::named(
        "server.shard.snapshot",
        ShardSnapshot::default(),
    ));
    let worker = spawn_engine_worker(
        "lockdisc-shard".to_string(),
        StubEngine::new(Arc::new(AtomicBool::new(false))),
        Arc::clone(&queue),
        Arc::clone(&snapshot),
        Arc::new(ServerMetrics::new()),
    );
    let (put, rx) = job(ShardOp::Put {
        name: "k".into(),
        value: vec![1],
    });
    queue.try_push(put).expect("below cap");
    rx.recv().expect("worker replies");
    let snap = snapshot.lock().expect("snapshot lock").clone();
    assert_eq!(snap.ops_done, 1);
    assert_eq!(queue.depth(), 0);
    queue.shutdown();
    worker.join().expect("worker exits");
}

/// Run the workload under the registry and return the recorded report.
pub fn observe() -> LockOrderReport {
    let _gate = gate()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    lockorder::reset();
    lockorder::enable();
    workload();
    lockorder::disable();
    let report = lockorder::snapshot();
    lockorder::reset();
    report
}

/// Map a lock-order report to diagnostics: cycles are errors (a real
/// deadlock recipe), condvar-waits-while-holding and over-budget holds
/// are warnings.
pub fn diagnose(report: &LockOrderReport, hold_budget_micros: u64) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for cycle in &report.cycles {
        diags.push(Diagnostic::error(DiagKind::LockOrderCycle {
            chain: cycle.clone(),
        }));
    }
    for w in &report.waits_while_holding {
        diags.push(Diagnostic::warning(DiagKind::CondvarWaitWhileHolding {
            condvar: w.condvar.clone(),
            released: w.waiting_lock.clone(),
            held: w.held.clone(),
        }));
    }
    for (lock, micros) in &report.max_hold_micros {
        if *micros > hold_budget_micros {
            diags.push(Diagnostic::warning(DiagKind::LongLockHold {
                lock: lock.clone(),
                micros: *micros,
                budget_micros: hold_budget_micros,
            }));
        }
    }
    diags
}

/// [`observe`] + [`diagnose`] with the default budget.
pub fn analyze() -> (LockOrderReport, Vec<Diagnostic>) {
    let report = observe();
    let diags = diagnose(&report, HOLD_BUDGET_MICROS);
    (report, diags)
}
