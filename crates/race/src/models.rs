//! The model-checked invariants, each a closure over the *real*
//! production state machines — [`minipool::WorkerPool`],
//! [`dcode_codec::cache::ScheduleCache`], and the shard queue/worker in
//! `dcode-server` — executed under [`minisim::check`]'s deterministic
//! scheduler. Nothing here reimplements the code under test; the models
//! only build inputs, drive the public API from a couple of threads, and
//! assert the invariant. The buggy counterparts that prove the checker
//! *would* catch a regression live in [`crate::mutations`].

use dcode_codec::cache::ScheduleCache;
use dcode_server::{
    spawn_engine_worker, Response, ServerMetrics, ShardEngine, ShardJob, ShardOp, ShardQueue,
    ShardSnapshot,
};
use minipool::WorkerPool;
use minisim::sync::{mpsc, Arc, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// A deterministic stand-in for the storage half of a shard worker: no
/// disks, no XOR — just a "durable" flag flipped when an op executes, so
/// the ack-after-durable ordering is observable to the checker. The
/// concurrency skeleton around it (`worker_loop` via
/// [`spawn_engine_worker`]) is the production one.
pub(crate) struct StubEngine {
    durable: Arc<AtomicBool>,
}

impl StubEngine {
    pub(crate) fn new(durable: Arc<AtomicBool>) -> Self {
        StubEngine { durable }
    }
}

impl ShardEngine for StubEngine {
    fn execute(&mut self, op: &ShardOp) -> Response {
        match op {
            ShardOp::Put { .. } => {
                self.durable.store(true, Ordering::SeqCst);
                Response::Ok
            }
            ShardOp::Get { .. } => Response::NotFound,
            ShardOp::Delete { .. } => Response::NotFound,
            ShardOp::Scrub => Response::Report("{}".to_string()),
        }
    }

    fn snapshot(&self, ops_done: u64) -> ShardSnapshot {
        ShardSnapshot {
            ops_done,
            ..ShardSnapshot::default()
        }
    }
}

pub(crate) fn job(op: ShardOp) -> (ShardJob, mpsc::Receiver<Response>) {
    let (reply, rx) = mpsc::channel();
    (
        ShardJob {
            op,
            queued_at: Instant::now(),
            reply,
        },
        rx,
    )
}

fn shard_fixture(cap: usize) -> (Arc<ShardQueue>, Arc<Mutex<ShardSnapshot>>, Arc<AtomicBool>) {
    (
        Arc::new(ShardQueue::new(cap)),
        Arc::new(Mutex::new(ShardSnapshot::default())),
        Arc::new(AtomicBool::new(false)),
    )
}

/// I1 `ack_after_durable` — when a client sees the reply to a PUT, the
/// store operation has completed (the stub's durable flag is set) *and*
/// the published snapshot already reflects it (`ops_done >= 1`). This is
/// the publish-before-reply ordering in `worker_loop`.
pub fn ack_after_durable() {
    let (queue, snapshot, durable) = shard_fixture(4);
    let worker = spawn_engine_worker(
        "sim-shard".to_string(),
        StubEngine::new(Arc::clone(&durable)),
        Arc::clone(&queue),
        Arc::clone(&snapshot),
        Arc::new(ServerMetrics::new()),
    );
    let (put, rx) = job(ShardOp::Put {
        name: "k".into(),
        value: vec![1],
    });
    queue.try_push(put).expect("queue below cap");
    assert_eq!(rx.recv().expect("worker replies"), Response::Ok);
    assert!(
        durable.load(Ordering::SeqCst),
        "reply arrived before the store op completed"
    );
    let published = snapshot.lock().expect("snapshot lock").ops_done;
    assert!(
        published >= 1,
        "reply arrived before the snapshot publish (ops_done={published})"
    );
    queue.shutdown();
    worker.join().expect("worker exits cleanly");
}

/// I2 `busy_not_hang` — pushing into a full shard queue returns
/// `Err(depth)` immediately instead of blocking; releasing the stall
/// drains the queued op. A blocking push would show up as a deadlock in
/// some interleaving (producer waiting on a stalled consumer).
pub fn busy_not_hang() {
    let (queue, snapshot, durable) = shard_fixture(1);
    let worker = spawn_engine_worker(
        "sim-shard".to_string(),
        StubEngine::new(durable),
        Arc::clone(&queue),
        Arc::clone(&snapshot),
        Arc::new(ServerMetrics::new()),
    );
    queue.set_stalled(true);
    let (first, rx) = job(ShardOp::Put {
        name: "a".into(),
        value: vec![1],
    });
    queue.try_push(first).expect("first job fits cap 1");
    let (second, _rx2) = job(ShardOp::Get { name: "b".into() });
    let depth = queue
        .try_push(second)
        .expect_err("full queue must reject, not block");
    assert_eq!(depth, 1, "rejection reports the observed depth");
    queue.set_stalled(false);
    assert_eq!(rx.recv().expect("queued op completes"), Response::Ok);
    queue.shutdown();
    worker.join().expect("worker exits cleanly");
}

/// I3 `shutdown_joins_all` — dropping a [`WorkerPool`] returns only
/// after every worker has exited, and every job accepted before the
/// drop has run (workers drain the queue before honoring shutdown).
pub fn shutdown_joins_all() {
    let pool = WorkerPool::with_workers(2);
    let ran = Arc::new(AtomicUsize::new(0));
    let mut accepted = 0usize;
    for _ in 0..2 {
        let ran = Arc::clone(&ran);
        if pool
            .submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
            .is_ok()
        {
            accepted += 1;
        }
    }
    assert_eq!(accepted, 2, "a live pool accepts every submission");
    drop(pool);
    assert_eq!(
        ran.load(Ordering::SeqCst),
        accepted,
        "drop returned before every accepted job ran"
    );
}

/// I4 `stat_never_queued` — a STAT-style observer (snapshot read + queue
/// depth probe) completes even while the worker is stalled with an op
/// sitting in the queue. If observability went through the queue it
/// would deadlock here: the root joins the observer before unstalling.
pub fn stat_never_queued() {
    let (queue, snapshot, durable) = shard_fixture(1);
    let worker = spawn_engine_worker(
        "sim-shard".to_string(),
        StubEngine::new(durable),
        Arc::clone(&queue),
        Arc::clone(&snapshot),
        Arc::new(ServerMetrics::new()),
    );
    queue.set_stalled(true);
    let (put, rx) = job(ShardOp::Put {
        name: "k".into(),
        value: vec![1],
    });
    queue.try_push(put).expect("job fits cap 1");
    let (q2, s2) = (Arc::clone(&queue), Arc::clone(&snapshot));
    let stat = minisim::thread::spawn(move || {
        let snap = s2.lock().expect("snapshot lock").clone();
        (snap.ops_done, q2.depth())
    });
    // Joining *before* unstalling is the invariant: STAT must not need
    // the worker to make progress.
    let (ops_done, depth) = stat.join().expect("stat thread completes");
    assert_eq!(ops_done, 0, "nothing executed while stalled");
    assert!(depth <= 1, "depth probe sees at most the queued op");
    queue.set_stalled(false);
    assert_eq!(rx.recv().expect("queued op completes"), Response::Ok);
    queue.shutdown();
    worker.join().expect("worker exits cleanly");
}

/// I5 `cache_race_adopt` — two threads racing a [`ScheduleCache`] miss
/// for the same layout end up with pointer-identical programs (the
/// insert-race loser adopts the winner's entry), and a later lookup
/// returns that same program.
pub fn cache_race_adopt() {
    let layout = dcode_core::dcode::dcode(5).expect("5 is prime");
    let cache = Arc::new(ScheduleCache::new());
    let racers: Vec<_> = (0..2)
        .map(|_| {
            let (c2, l2) = (Arc::clone(&cache), layout.clone());
            minisim::thread::spawn(move || c2.encode_program(&l2))
        })
        .collect();
    let a = cache.encode_program(&layout);
    for racer in racers {
        let b = racer.join().expect("racer completes");
        assert!(
            Arc::ptr_eq(&a, &b),
            "concurrent misses must converge on one program"
        );
    }
    let c = cache.encode_program(&layout);
    assert!(
        Arc::ptr_eq(&a, &c),
        "steady state returns the adopted program"
    );
}

/// I6 `submit_vs_drop` — a submission racing pool teardown either
/// completes (the accepted job runs before `Drop` returns) or is
/// rejected outright; no interleaving hangs and no accepted job is
/// stranded. Teardown and submission contend on a shared slot, which is
/// how safe Rust serializes `&pool` use against `Drop` in production.
pub fn submit_vs_drop() {
    let slot = Arc::new(Mutex::new(Some(WorkerPool::with_workers(1))));
    let ran = Arc::new(AtomicUsize::new(0));
    let (slot2, ran2) = (Arc::clone(&slot), Arc::clone(&ran));
    let submitter = minisim::thread::spawn(move || {
        let guard = slot2.lock().expect("slot lock");
        match guard.as_ref() {
            Some(pool) => pool
                .submit(move || {
                    ran2.fetch_add(1, Ordering::SeqCst);
                })
                .is_ok(),
            None => false,
        }
    });
    // Teardown: take the pool out of the slot and drop it (joins the
    // worker, draining anything accepted).
    let pool = slot.lock().expect("slot lock").take();
    drop(pool);
    let accepted = submitter.join().expect("submitter completes");
    assert_eq!(
        ran.load(Ordering::SeqCst),
        usize::from(accepted),
        "accepted implies ran; rejected implies not ran"
    );
}
