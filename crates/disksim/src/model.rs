//! First-order rotating-disk service-time model.
//!
//! The paper measures read speed on a real array of Seagate Savvio 10K.3
//! drives (10 000 RPM, 300 GB SAS) with codes implemented on Jerasure 1.2.
//! This model substitutes that hardware (DESIGN.md §6).
//!
//! The paper's absolute figures (≈ 9–14 MB/s per busy spindle) show each
//! element access behaving as an independent random I/O — consistent with a
//! Jerasure-style implementation issuing element-granular reads with no
//! request coalescing. [`Coalescing::None`] (the default) models that:
//! every element pays a full positioning (seek + rotational latency) plus
//! its transfer. [`Coalescing::Settle`] is the ablation knob: physically
//! adjacent elements (consecutive rows of one column) stream back-to-back
//! for a small settle cost, which amortizes positioning and compresses the
//! cross-code gaps — the `ablation_coalescing` bench quantifies this.

/// How physically adjacent elements of one request are charged.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum Coalescing {
    /// Every element is an independent random I/O (matches the paper's
    /// measured per-spindle throughput).
    None,
    /// Consecutive elements in a run pay only this settle (ms) plus
    /// transfer; each run pays one full positioning.
    Settle(f64),
}

/// Service-time constants for one disk.
#[derive(Copy, Clone, Debug)]
pub struct DiskModel {
    /// Average seek time in milliseconds.
    pub seek_ms: f64,
    /// Average rotational latency in milliseconds (half a revolution).
    pub rotational_ms: f64,
    /// Sustained transfer rate in MB/s (1 MB = 10^6 bytes).
    pub transfer_mb_s: f64,
    /// Whether adjacent elements coalesce.
    pub coalescing: Coalescing,
}

impl Default for DiskModel {
    fn default() -> Self {
        // Savvio 10K.3: 10k RPM → 3 ms average rotational latency; ~4 ms
        // average read seek; ~125 MB/s sustained transfer.
        DiskModel {
            seek_ms: 4.0,
            rotational_ms: 3.0,
            transfer_mb_s: 125.0,
            coalescing: Coalescing::None,
        }
    }
}

impl DiskModel {
    /// Time to move one element's bytes, in milliseconds.
    pub fn transfer_ms(&self, block_bytes: usize) -> f64 {
        block_bytes as f64 / (self.transfer_mb_s * 1e6) * 1e3
    }

    /// Service time for one disk in one request: `runs` contiguous runs
    /// totalling `elements` blocks of `block_bytes` each. Zero elements
    /// costs nothing (the disk is not involved).
    pub fn service_ms(&self, runs: usize, elements: usize, block_bytes: usize) -> f64 {
        if elements == 0 {
            return 0.0;
        }
        debug_assert!(runs >= 1 && runs <= elements);
        let positioning = self.seek_ms + self.rotational_ms;
        let transfer = elements as f64 * self.transfer_ms(block_bytes);
        match self.coalescing {
            Coalescing::None => elements as f64 * positioning + transfer,
            Coalescing::Settle(settle_ms) => {
                runs as f64 * positioning + (elements - runs) as f64 * settle_ms + transfer
            }
        }
    }
}

/// Count contiguous runs among a disk's element rows (sorted ascending):
/// rows `r` and `r+1` stream back-to-back, anything else breaks the run.
pub fn count_runs(sorted_rows: &[usize]) -> usize {
    if sorted_rows.is_empty() {
        return 0;
    }
    1 + sorted_rows.windows(2).filter(|w| w[1] != w[0] + 1).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_elements_no_time() {
        let m = DiskModel::default();
        assert_eq!(m.service_ms(0, 0, 65536), 0.0);
    }

    #[test]
    fn element_random_io_cost() {
        let m = DiskModel::default();
        let t = m.service_ms(1, 1, 65536);
        assert!(t > 7.0 && t < 8.0, "one 64 KiB element ≈ 7.5 ms, got {t}");
        // Per-element accounting: two elements cost exactly twice.
        assert!((m.service_ms(1, 2, 65536) - 2.0 * t).abs() < 1e-9);
    }

    #[test]
    fn coalescing_amortizes_positioning() {
        let m = DiskModel {
            coalescing: Coalescing::Settle(0.8),
            ..Default::default()
        };
        let contiguous = m.service_ms(1, 4, 65536);
        let fragmented = m.service_ms(4, 4, 65536);
        assert!(fragmented > contiguous);
        // 3 extra positionings replace 3 settles.
        assert!((fragmented - contiguous - 3.0 * (7.0 - 0.8)).abs() < 1e-9);
        // Coalesced runs are much cheaper than element-random I/O.
        let random = DiskModel::default().service_ms(1, 4, 65536);
        assert!(contiguous < random);
    }

    #[test]
    fn transfer_scales_linearly() {
        let m = DiskModel::default();
        let t1 = m.service_ms(1, 1, 1_000_000);
        let t2 = m.service_ms(1, 2, 1_000_000);
        // Second element adds a positioning (7 ms) plus 8 ms transfer.
        assert!((t2 - t1 - 15.0).abs() < 1e-9);
    }

    #[test]
    fn run_counting() {
        assert_eq!(count_runs(&[]), 0);
        assert_eq!(count_runs(&[3]), 1);
        assert_eq!(count_runs(&[0, 1, 2]), 1);
        assert_eq!(count_runs(&[0, 2, 3]), 2);
        assert_eq!(count_runs(&[0, 2, 4]), 3);
    }
}
