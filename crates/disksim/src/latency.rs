//! Per-request latency distributions.
//!
//! The throughput experiments (Figures 6–7) measure a saturated array; a
//! lightly loaded array cares about *request latency* instead — especially
//! the tail, where degraded-mode reconstruction reads hurt most. This
//! module runs the paper's request mix at queue depth 1 and reports the
//! latency distribution per code.

use crate::array::ArraySim;
use crate::experiment::{data_disks, ExperimentParams};
use dcode_core::layout::CodeLayout;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Summary statistics of a latency sample, in milliseconds.
#[derive(Clone, Copy, Debug)]
pub struct LatencyStats {
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Maximum observed.
    pub max_ms: f64,
}

/// Compute summary statistics from raw latencies.
pub fn summarize(mut samples: Vec<f64>) -> LatencyStats {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pct = |q: f64| -> f64 {
        let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
        samples[idx]
    };
    LatencyStats {
        mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
        max_ms: *samples.last().expect("non-empty"),
    }
}

/// Latency distribution of normal-mode reads at queue depth 1.
pub fn normal_read_latency(
    layout: &CodeLayout,
    params: ExperimentParams,
    seed: u64,
) -> LatencyStats {
    let sim = ArraySim::new(layout, params.model, params.block_bytes);
    let mut rng = StdRng::seed_from_u64(seed);
    let samples: Vec<f64> = (0..params.normal_trials)
        .map(|_| {
            let start = (rng.next_u64() % layout.data_len() as u64) as usize;
            let len = params.len_range.0
                + (rng.next_u64() % (params.len_range.1 - params.len_range.0 + 1) as u64) as usize;
            sim.normal_read_ms(start, len)
        })
        .collect();
    summarize(samples)
}

/// Latency distribution of degraded-mode reads (every data-disk failure
/// case pooled) at queue depth 1.
pub fn degraded_read_latency(
    layout: &CodeLayout,
    params: ExperimentParams,
    seed: u64,
) -> LatencyStats {
    let sim = ArraySim::new(layout, params.model, params.block_bytes);
    let mut samples = Vec::new();
    for failed in data_disks(layout) {
        let mut rng = StdRng::seed_from_u64(seed ^ (failed as u64) << 24);
        for _ in 0..params.degraded_trials_per_case {
            let start = (rng.next_u64() % layout.data_len() as u64) as usize;
            let len = params.len_range.0
                + (rng.next_u64() % (params.len_range.1 - params.len_range.0 + 1) as u64) as usize;
            samples.push(sim.degraded_read_ms(start, len, failed));
        }
    }
    summarize(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::dcode;

    fn quick() -> ExperimentParams {
        ExperimentParams {
            normal_trials: 200,
            degraded_trials_per_case: 40,
            ..Default::default()
        }
    }

    #[test]
    fn summarize_orders_percentiles() {
        let s = summarize(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.p50_ms, 3.0);
        assert_eq!(s.max_ms, 5.0);
        assert!(s.p95_ms <= s.max_ms && s.p50_ms <= s.p95_ms);
        assert!((s.mean_ms - 3.0).abs() < 1e-9);
    }

    #[test]
    fn degraded_tail_is_heavier() {
        let layout = dcode(7).unwrap();
        let n = normal_read_latency(&layout, quick(), 3);
        let d = degraded_read_latency(&layout, quick(), 3);
        assert!(d.mean_ms >= n.mean_ms);
        assert!(d.p99_ms >= n.p99_ms);
    }

    #[test]
    fn deterministic() {
        let layout = dcode(7).unwrap();
        let a = normal_read_latency(&layout, quick(), 9);
        let b = normal_read_latency(&layout, quick(), 9);
        assert_eq!(a.mean_ms, b.mean_ms);
    }
}
