//! Event-driven queueing simulation: response time under offered load.
//!
//! Figures 6–7 measure a saturated array (throughput) and the [`latency`]
//! module measures queue depth 1. Real arrays live in between: requests
//! arrive continuously and queue per disk. This module runs a discrete
//! event simulation — Poisson arrivals, FCFS per-disk queues, a request
//! completing when its last disk finishes — and reports the response-time
//! curve as the offered load rises toward saturation. The knee of that
//! curve is where parity-idle disks (RDP, H-Code) hurt: their data disks
//! saturate earlier, so the curve lifts at lower offered load than
//! D-Code's.
//!
//! [`latency`]: crate::latency

use crate::array::ArraySim;
use crate::experiment::ExperimentParams;
use dcode_core::layout::CodeLayout;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Result of one offered-load point.
#[derive(Clone, Copy, Debug)]
pub struct LoadPoint {
    /// Offered load in requests per second.
    pub arrival_rate: f64,
    /// Mean response time (queueing + service) in ms.
    pub mean_response_ms: f64,
    /// 95th-percentile response time in ms.
    pub p95_response_ms: f64,
    /// Fraction of the busiest disk's time spent serving.
    pub peak_utilization: f64,
}

/// Simulate `n_requests` read requests arriving Poisson at `arrival_rate`
/// (requests/s) against a `layout` array, in normal mode or with one failed
/// disk.
pub fn simulate_load(
    layout: &CodeLayout,
    params: ExperimentParams,
    arrival_rate: f64,
    n_requests: usize,
    failed: Option<usize>,
    seed: u64,
) -> LoadPoint {
    assert!(arrival_rate > 0.0 && n_requests > 0);
    let sim = ArraySim::new(layout, params.model, params.block_bytes);
    let mut rng = StdRng::seed_from_u64(seed);
    let unit = |rng: &mut StdRng| (rng.next_u64() as f64 + 1.0) / (u64::MAX as f64 + 2.0);

    let disks = layout.disks();
    // Next instant each disk becomes free (ms).
    let mut disk_free = vec![0f64; disks];
    let mut busy_total = vec![0f64; disks];
    let mut clock_ms = 0f64;
    let mut responses = Vec::with_capacity(n_requests);

    for _ in 0..n_requests {
        // Poisson arrivals: exponential inter-arrival times.
        let dt_ms = -unit(&mut rng).ln() / arrival_rate * 1e3;
        clock_ms += dt_ms;

        let start = (rng.next_u64() % layout.data_len() as u64) as usize;
        let len = params.len_range.0
            + (rng.next_u64() % (params.len_range.1 - params.len_range.0 + 1) as u64) as usize;
        let work = match failed {
            None => sim.normal_read_work(start, len),
            Some(f) => sim.degraded_read_work(start, len, f),
        };

        // Each involved disk serves this request FCFS after its queue.
        let mut finish = clock_ms;
        for (d, w) in work.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            let begin = disk_free[d].max(clock_ms);
            let end = begin + w;
            disk_free[d] = end;
            busy_total[d] += w;
            finish = finish.max(end);
        }
        responses.push(finish - clock_ms);
    }

    let horizon = disk_free.iter().copied().fold(clock_ms, f64::max).max(1e-9);
    let peak_utilization = busy_total.iter().map(|&b| b / horizon).fold(0.0, f64::max);

    responses.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean = responses.iter().sum::<f64>() / responses.len() as f64;
    let p95 = responses[((responses.len() - 1) as f64 * 0.95).round() as usize];
    LoadPoint {
        arrival_rate,
        mean_response_ms: mean,
        p95_response_ms: p95,
        peak_utilization,
    }
}

/// Sweep arrival rates and return the response curve.
pub fn load_sweep(
    layout: &CodeLayout,
    params: ExperimentParams,
    rates: &[f64],
    n_requests: usize,
    failed: Option<usize>,
    seed: u64,
) -> Vec<LoadPoint> {
    rates
        .iter()
        .map(|&r| simulate_load(layout, params, r, n_requests, failed, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::{build, CodeId};
    use dcode_core::dcode::dcode;

    fn quick() -> ExperimentParams {
        ExperimentParams::default()
    }

    #[test]
    fn response_time_rises_with_load() {
        let layout = dcode(7).unwrap();
        let pts = load_sweep(&layout, quick(), &[5.0, 30.0, 60.0], 800, None, 3);
        assert!(pts[0].mean_response_ms < pts[2].mean_response_ms);
        assert!(pts[0].peak_utilization < pts[2].peak_utilization);
    }

    #[test]
    fn low_load_response_matches_service_time_scale() {
        // At nearly idle load, responses are pure service times: a few to
        // tens of ms for 1–20 element requests under the default model.
        let layout = dcode(7).unwrap();
        let pt = simulate_load(&layout, quick(), 1.0, 400, None, 9);
        assert!(
            pt.mean_response_ms > 5.0 && pt.mean_response_ms < 40.0,
            "{}",
            pt.mean_response_ms
        );
    }

    #[test]
    fn parity_idle_codes_saturate_earlier() {
        // At a rate chosen near RDP's knee, RDP's busiest (data) disk is
        // more utilized than D-Code's, so its response time is worse.
        let rate = 55.0;
        let d = simulate_load(
            &build(CodeId::DCode, 7).unwrap(),
            quick(),
            rate,
            2000,
            None,
            11,
        );
        let r = simulate_load(
            &build(CodeId::Rdp, 7).unwrap(),
            quick(),
            rate,
            2000,
            None,
            11,
        );
        assert!(r.peak_utilization > d.peak_utilization);
        assert!(r.mean_response_ms > d.mean_response_ms);
    }

    #[test]
    fn degraded_mode_amplifies_response_time() {
        let layout = dcode(7).unwrap();
        let normal = simulate_load(&layout, quick(), 30.0, 1500, None, 5);
        let degraded = simulate_load(&layout, quick(), 30.0, 1500, Some(2), 5);
        assert!(degraded.mean_response_ms > normal.mean_response_ms);
    }

    #[test]
    fn deterministic() {
        let layout = dcode(5).unwrap();
        let a = simulate_load(&layout, quick(), 20.0, 300, None, 1);
        let b = simulate_load(&layout, quick(), 20.0, 300, None, 1);
        assert_eq!(a.mean_response_ms, b.mean_response_ms);
    }
}
