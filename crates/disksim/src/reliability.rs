//! Reliability modeling: from rebuild throughput to MTTDL.
//!
//! The classic Markov argument for a 2-fault-tolerant array of `n` disks
//! with per-disk failure rate `λ = 1/MTTF` and repair rate `μ = 1/MTTR`:
//!
//! ```text
//! MTTDL ≈ μ² / (n·(n−1)·(n−2)·λ³)        (μ ≫ λ)
//! ```
//!
//! MTTR comes from the rebuild simulation: rebuilding a failed disk of
//! `capacity_gb` at the scheme's rebuild throughput. This closes the loop
//! the paper leaves implicit — faster recovery (Section III-D's hybrid
//! scheme) is not just an I/O optimization, it multiplies mean time to
//! data loss quadratically.

use crate::model::DiskModel;
use crate::rebuild::{average_rebuild, RebuildScheme};
use dcode_core::layout::CodeLayout;

/// Inputs to the MTTDL estimate.
#[derive(Clone, Copy, Debug)]
pub struct ReliabilityParams {
    /// Per-disk mean time to failure, in hours (Savvio 10K.3 datasheet
    /// order of magnitude: 1.6M hours).
    pub disk_mttf_hours: f64,
    /// Disk capacity to rebuild, in GB (the paper's disks: 300 GB).
    pub capacity_gb: f64,
    /// Element block size for the rebuild simulation.
    pub block_bytes: usize,
    /// Drive model for the rebuild simulation.
    pub model: DiskModel,
}

impl Default for ReliabilityParams {
    fn default() -> Self {
        ReliabilityParams {
            disk_mttf_hours: 1_600_000.0,
            capacity_gb: 300.0,
            block_bytes: 64 * 1024,
            model: DiskModel::default(),
        }
    }
}

/// One scheme's reliability estimate.
#[derive(Clone, Copy, Debug)]
pub struct ReliabilityEstimate {
    /// Mean time to repair one disk, in hours.
    pub mttr_hours: f64,
    /// Mean time to data loss, in hours.
    pub mttdl_hours: f64,
}

/// Estimate MTTR and MTTDL for a code under a recovery scheme.
pub fn estimate(
    layout: &CodeLayout,
    scheme: RebuildScheme,
    params: ReliabilityParams,
) -> ReliabilityEstimate {
    let rebuild = average_rebuild(layout, scheme, params.model, params.block_bytes);
    let mttr_hours = params.capacity_gb * 1e3 / rebuild.rebuild_mb_s / 3600.0;
    let n = layout.disks() as f64;
    let lambda = 1.0 / params.disk_mttf_hours;
    let mu = 1.0 / mttr_hours;
    let mttdl_hours = mu * mu / (n * (n - 1.0) * (n - 2.0) * lambda * lambda * lambda);
    ReliabilityEstimate {
        mttr_hours,
        mttdl_hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::dcode;

    #[test]
    fn mttr_is_hours_scale() {
        let l = dcode(13).unwrap();
        let e = estimate(&l, RebuildScheme::Optimized, ReliabilityParams::default());
        // 300 GB at ~10 MB/s ≈ 8.3 hours.
        assert!(
            e.mttr_hours > 1.0 && e.mttr_hours < 48.0,
            "{}",
            e.mttr_hours
        );
    }

    #[test]
    fn faster_rebuild_means_quadratically_better_mttdl() {
        let l = dcode(13).unwrap();
        let conv = estimate(
            &l,
            RebuildScheme::Conventional,
            ReliabilityParams::default(),
        );
        let opt = estimate(&l, RebuildScheme::Optimized, ReliabilityParams::default());
        assert!(opt.mttr_hours < conv.mttr_hours);
        let speedup = conv.mttr_hours / opt.mttr_hours;
        let mttdl_gain = opt.mttdl_hours / conv.mttdl_hours;
        assert!(
            (mttdl_gain - speedup * speedup).abs() / mttdl_gain < 1e-9,
            "MTTDL gain {mttdl_gain} should be the square of the speedup {speedup}"
        );
        assert!(mttdl_gain > 1.5);
    }

    #[test]
    fn more_disks_lower_mttdl() {
        let small = estimate(
            &dcode(5).unwrap(),
            RebuildScheme::Optimized,
            ReliabilityParams::default(),
        );
        let large = estimate(
            &dcode(13).unwrap(),
            RebuildScheme::Optimized,
            ReliabilityParams::default(),
        );
        assert!(small.mttdl_hours > large.mttdl_hours);
    }
}
