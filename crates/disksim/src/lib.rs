#![warn(missing_docs)]
//! # dcode-disksim
//!
//! The hardware substitution for the paper's read-performance experiments
//! (Section V): the authors ran on a 16-disk array of Seagate Savvio 10K.3
//! drives; we simulate that array with a first-order service-time
//! [`mod@model`], a parallel [`mod@array`] request model, and the paper's
//! [`experiment`] protocol (2000 normal-mode reads; 200 degraded-mode reads
//! per failure case). See DESIGN.md §6 for why this substitution preserves
//! the mechanisms Figures 6–7 measure.
//!
//! ## Quick example
//!
//! ```
//! use dcode_core::dcode::dcode;
//! use dcode_disksim::experiment::{normal_read_speed, ExperimentParams};
//!
//! let code = dcode(7).unwrap();
//! let params = ExperimentParams { normal_trials: 100, ..Default::default() };
//! let speed = normal_read_speed(&code, params, 42);
//! assert!(speed.mb_s > 0.0);
//! ```

pub mod array;
pub mod experiment;
pub mod latency;
pub mod model;
pub mod queue;
pub mod rebuild;
pub mod reliability;

pub use array::ArraySim;
pub use experiment::{
    data_disks, degraded_read_speed, normal_read_speed, ExperimentParams, ReadSpeed,
};
pub use latency::{degraded_read_latency, normal_read_latency, summarize, LatencyStats};
pub use model::{count_runs, Coalescing, DiskModel};
pub use queue::{load_sweep, simulate_load, LoadPoint};
pub use rebuild::{average_rebuild, estimate_rebuild, RebuildEstimate, RebuildScheme};
pub use reliability::{estimate as estimate_reliability, ReliabilityEstimate, ReliabilityParams};
