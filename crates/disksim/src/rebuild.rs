//! Whole-disk rebuild time estimation.
//!
//! Connects the recovery optimizer (`dcode-recovery`) to the drive model:
//! a failed disk's stripes are rebuilt one after another; in each stripe
//! the surviving disks deliver the recovery read set in parallel while the
//! spare absorbs the writes. Rebuild time per stripe is the maximum of the
//! busiest reader and the spare's write stream; the ~25% read reduction of
//! hybrid recovery (Section III-D) translates directly into shorter
//! rebuild windows, which is the reliability argument for it.

use crate::model::DiskModel;
use dcode_core::layout::CodeLayout;
use dcode_recovery::{conventional_rebuild, optimal_rebuild, RebuildPlan};

/// Which recovery scheme drives the rebuild.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RebuildScheme {
    /// One fixed parity family per element, equations streamed
    /// independently.
    Conventional,
    /// Minimum-read hybrid selection with a shared stripe buffer.
    Optimized,
}

/// Estimated rebuild characteristics for one failed disk.
#[derive(Clone, Debug)]
pub struct RebuildEstimate {
    /// Element reads per stripe.
    pub reads_per_stripe: usize,
    /// Simulated time to rebuild one stripe, in milliseconds.
    pub stripe_ms: f64,
    /// Rebuild throughput in MB/s of reconstructed (lost) data.
    pub rebuild_mb_s: f64,
}

/// Estimate the rebuild of `failed_col` under the given scheme.
pub fn estimate_rebuild(
    layout: &CodeLayout,
    failed_col: usize,
    scheme: RebuildScheme,
    model: DiskModel,
    block_bytes: usize,
) -> RebuildEstimate {
    let plan: RebuildPlan = match scheme {
        RebuildScheme::Conventional => conventional_rebuild(layout, failed_col),
        RebuildScheme::Optimized => optimal_rebuild(layout, failed_col),
    };
    let (reads_per_stripe, per_disk_reads) = match scheme {
        RebuildScheme::Conventional => {
            // Equations streamed independently: count with multiplicity.
            let mut per_disk = vec![0usize; layout.disks()];
            for (_, eq_idx) in &plan.choices {
                for cell in layout.equation(*eq_idx).cells() {
                    if cell.col != failed_col {
                        per_disk[cell.col] += 1;
                    }
                }
            }
            (plan.reads_with_multiplicity, per_disk)
        }
        RebuildScheme::Optimized => {
            let mut per_disk = vec![0usize; layout.disks()];
            for cell in &plan.reads {
                per_disk[cell.col] += 1;
            }
            (plan.read_count(), per_disk)
        }
    };

    // Readers work in parallel; the spare disk streams the rebuilt column
    // sequentially (one positioning, then contiguous writes), regardless of
    // how fragmented the *reads* are.
    let reader_ms = per_disk_reads
        .iter()
        .map(|&k| model.service_ms(1.max(k), k, block_bytes))
        .fold(0.0, f64::max);
    let streaming = DiskModel {
        coalescing: crate::model::Coalescing::Settle(0.0),
        ..model
    };
    let spare_ms = streaming.service_ms(1, layout.rows(), block_bytes);
    let stripe_ms = reader_ms.max(spare_ms);
    let rebuilt_bytes = (layout.rows() * block_bytes) as f64;
    RebuildEstimate {
        reads_per_stripe,
        stripe_ms,
        rebuild_mb_s: rebuilt_bytes / 1e6 / (stripe_ms / 1e3),
    }
}

/// Average estimate over every disk of the array.
pub fn average_rebuild(
    layout: &CodeLayout,
    scheme: RebuildScheme,
    model: DiskModel,
    block_bytes: usize,
) -> RebuildEstimate {
    let disks = layout.disks();
    let mut reads = 0usize;
    let mut ms = 0f64;
    let mut mbs = 0f64;
    for col in 0..disks {
        let e = estimate_rebuild(layout, col, scheme, model, block_bytes);
        reads += e.reads_per_stripe;
        ms += e.stripe_ms;
        mbs += e.rebuild_mb_s;
    }
    RebuildEstimate {
        reads_per_stripe: reads / disks,
        stripe_ms: ms / disks as f64,
        rebuild_mb_s: mbs / disks as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::dcode;

    #[test]
    fn optimized_rebuild_is_never_slower() {
        let model = DiskModel::default();
        for p in [5usize, 7, 11] {
            let layout = dcode(p).unwrap();
            for col in 0..p {
                let c = estimate_rebuild(&layout, col, RebuildScheme::Conventional, model, 65536);
                let o = estimate_rebuild(&layout, col, RebuildScheme::Optimized, model, 65536);
                assert!(o.reads_per_stripe <= c.reads_per_stripe);
                assert!(o.stripe_ms <= c.stripe_ms + 1e-9);
            }
        }
    }

    #[test]
    fn hybrid_recovery_speeds_up_rebuild_meaningfully() {
        let model = DiskModel::default();
        let layout = dcode(11).unwrap();
        let c = average_rebuild(&layout, RebuildScheme::Conventional, model, 65536);
        let o = average_rebuild(&layout, RebuildScheme::Optimized, model, 65536);
        assert!(
            o.rebuild_mb_s > 1.10 * c.rebuild_mb_s,
            "optimized {:.1} MB/s vs conventional {:.1} MB/s",
            o.rebuild_mb_s,
            c.rebuild_mb_s
        );
    }
}
