//! The paper's read-speed experiments (Section V).
//!
//! * Normal mode: 2000 experiments per code per prime, random start and
//!   random size in 1..=20 elements (Section V-B).
//! * Degraded mode: every data-disk failure case, 200 experiments each
//!   (Section V-C).
//!
//! Reported metrics are read speed (MB/s) and *average* read speed — speed
//! divided by the number of disks — because the codes span different disk
//! counts (Section V-B's normalization).

use crate::array::ArraySim;
use crate::model::DiskModel;
use dcode_core::layout::CodeLayout;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Result of one read-speed experiment series.
#[derive(Clone, Copy, Debug)]
pub struct ReadSpeed {
    /// Aggregate read speed in MB/s.
    pub mb_s: f64,
    /// Per-disk average speed in MB/s (speed / disks).
    pub avg_mb_s: f64,
}

/// Parameters shared by both experiment kinds; defaults match Section V.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentParams {
    /// Experiments per series in normal mode.
    pub normal_trials: usize,
    /// Experiments per failure case in degraded mode.
    pub degraded_trials_per_case: usize,
    /// Inclusive read-size range in elements.
    pub len_range: (usize, usize),
    /// Element size in bytes.
    pub block_bytes: usize,
    /// Drive constants.
    pub model: DiskModel,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            normal_trials: 2000,
            degraded_trials_per_case: 200,
            len_range: (1, 20),
            block_bytes: 64 * 1024,
            model: DiskModel::default(),
        }
    }
}

fn draw(rng: &mut StdRng, lo: usize, hi: usize) -> usize {
    lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
}

/// Normal-mode read speed (Figure 6).
///
/// Models a saturated array (the paper issues its 2000 experiments against
/// a real array whose disks overlap work): per-disk service times accumulate
/// independently and the series finishes when the busiest disk drains, so
/// `speed = total bytes / max_disk(Σ service)`. Idle parity disks (RDP,
/// H-Code) directly cost aggregate throughput, and fragmented layouts
/// (H-Code/HDP parities inside the stripe) pay extra settles — exactly the
/// paper's two explanations for Figure 6.
pub fn normal_read_speed(layout: &CodeLayout, params: ExperimentParams, seed: u64) -> ReadSpeed {
    let sim = ArraySim::new(layout, params.model, params.block_bytes);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total_bytes = 0f64;
    let mut busy = vec![0f64; layout.disks()];
    for _ in 0..params.normal_trials {
        let start = (rng.next_u64() % layout.data_len() as u64) as usize;
        let len = draw(&mut rng, params.len_range.0, params.len_range.1);
        total_bytes += (len * params.block_bytes) as f64;
        for (b, w) in busy.iter_mut().zip(sim.normal_read_work(start, len)) {
            *b += w;
        }
    }
    let makespan_ms = busy.into_iter().fold(0.0, f64::max);
    let mb_s = total_bytes / 1e6 / (makespan_ms / 1e3);
    ReadSpeed {
        mb_s,
        avg_mb_s: mb_s / layout.disks() as f64,
    }
}

/// The disks that hold at least one data element — the paper's "k different
/// data disk failure cases".
pub fn data_disks(layout: &CodeLayout) -> Vec<usize> {
    (0..layout.disks())
        .filter(|&c| layout.data_count_in_col(c) > 0)
        .collect()
}

/// Degraded-mode read speed (Figure 7): average over every data-disk
/// failure case.
pub fn degraded_read_speed(layout: &CodeLayout, params: ExperimentParams, seed: u64) -> ReadSpeed {
    let sim = ArraySim::new(layout, params.model, params.block_bytes);
    let mut total_bytes = 0f64;
    let mut makespan_ms = 0f64;
    for failed in data_disks(layout) {
        // Each failure case is a separate saturated series on the surviving
        // disks (the failed disk serves nothing).
        let mut rng = StdRng::seed_from_u64(seed ^ (failed as u64) << 32);
        let mut busy = vec![0f64; layout.disks()];
        for _ in 0..params.degraded_trials_per_case {
            let start = (rng.next_u64() % layout.data_len() as u64) as usize;
            let len = draw(&mut rng, params.len_range.0, params.len_range.1);
            total_bytes += (len * params.block_bytes) as f64;
            for (b, w) in busy
                .iter_mut()
                .zip(sim.degraded_read_work(start, len, failed))
            {
                *b += w;
            }
        }
        makespan_ms += busy.into_iter().fold(0.0, f64::max);
    }
    let mb_s = total_bytes / 1e6 / (makespan_ms / 1e3);
    ReadSpeed {
        mb_s,
        avg_mb_s: mb_s / layout.disks() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::{build, CodeId};

    fn quick() -> ExperimentParams {
        ExperimentParams {
            normal_trials: 300,
            degraded_trials_per_case: 50,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let l = build(CodeId::DCode, 7).unwrap();
        let a = normal_read_speed(&l, quick(), 1);
        let b = normal_read_speed(&l, quick(), 1);
        assert_eq!(a.mb_s, b.mb_s);
    }

    #[test]
    fn data_disk_enumeration() {
        assert_eq!(data_disks(&build(CodeId::DCode, 7).unwrap()).len(), 7);
        assert_eq!(data_disks(&build(CodeId::Rdp, 7).unwrap()).len(), 6);
        assert_eq!(data_disks(&build(CodeId::HCode, 7).unwrap()).len(), 7);
        assert_eq!(data_disks(&build(CodeId::Hdp, 7).unwrap()).len(), 6);
    }

    #[test]
    fn dcode_normal_read_beats_rdp() {
        // The paper's headline: all n disks contribute to D-Code reads,
        // while RDP idles two parity disks.
        let p = 7;
        let d = normal_read_speed(&build(CodeId::DCode, p).unwrap(), quick(), 3);
        let r = normal_read_speed(&build(CodeId::Rdp, p).unwrap(), quick(), 3);
        assert!(d.mb_s > r.mb_s, "D-Code {} vs RDP {}", d.mb_s, r.mb_s);
    }

    #[test]
    fn degraded_slower_than_normal() {
        let l = build(CodeId::DCode, 7).unwrap();
        let n = normal_read_speed(&l, quick(), 5);
        let d = degraded_read_speed(&l, quick(), 5);
        assert!(d.mb_s < n.mb_s);
    }

    #[test]
    fn dcode_degraded_beats_xcode() {
        // Figure 7's headline: D-Code 11.6%–26.0% above X-Code.
        let p = 11;
        let d = degraded_read_speed(&build(CodeId::DCode, p).unwrap(), quick(), 9);
        let x = degraded_read_speed(&build(CodeId::XCode, p).unwrap(), quick(), 9);
        assert!(d.mb_s > x.mb_s, "D-Code {} vs X-Code {}", d.mb_s, x.mb_s);
    }
}
