//! Array-level request timing: disks serve their element lists in parallel,
//! so a request completes when the busiest disk does.

use crate::model::{count_runs, DiskModel};
use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use dcode_iosim::access::{plan_degraded_segment, segments};

/// A simulated disk array running one code.
#[derive(Clone, Debug)]
pub struct ArraySim<'a> {
    layout: &'a CodeLayout,
    model: DiskModel,
    block_bytes: usize,
}

impl<'a> ArraySim<'a> {
    /// Build an array for `layout` with the given drive model and element
    /// (block) size in bytes.
    pub fn new(layout: &'a CodeLayout, model: DiskModel, block_bytes: usize) -> Self {
        assert!(block_bytes > 0);
        ArraySim {
            layout,
            model,
            block_bytes,
        }
    }

    /// The code this array runs.
    pub fn layout(&self) -> &CodeLayout {
        self.layout
    }

    /// Element size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Per-disk service time for one request fetching the given cells.
    /// `result[d]` is how long disk `d` is busy; zero when not involved.
    pub fn work_per_disk(&self, cells: &[Cell]) -> Vec<f64> {
        let disks = self.layout.disks();
        let mut rows_per_disk: Vec<Vec<usize>> = vec![Vec::new(); disks];
        for &c in cells {
            rows_per_disk[c.col].push(c.row);
        }
        rows_per_disk
            .into_iter()
            .map(|mut rows| {
                if rows.is_empty() {
                    return 0.0;
                }
                rows.sort_unstable();
                rows.dedup();
                self.model
                    .service_ms(count_runs(&rows), rows.len(), self.block_bytes)
            })
            .collect()
    }

    /// Request latency when each disk must fetch the given cells: the
    /// maximum per-disk service time (disks operate in parallel).
    pub fn request_ms(&self, cells: &[Cell]) -> f64 {
        self.work_per_disk(cells).into_iter().fold(0.0, f64::max)
    }

    /// Per-disk work of a normal-mode read (see [`ArraySim::work_per_disk`]).
    pub fn normal_read_work(&self, start: usize, len: usize) -> Vec<f64> {
        let data_len = self.layout.data_len();
        let (full, segs) = segments(data_len, start, len);
        let mut acc = vec![0.0; self.layout.disks()];
        let mut add = |work: Vec<f64>, times: usize| {
            for (a, w) in acc.iter_mut().zip(&work) {
                *a += w * times as f64;
            }
        };
        if full > 0 {
            let all: Vec<Cell> = self.layout.data_cells().to_vec();
            add(self.work_per_disk(&all), full);
        }
        for (s, l) in segs {
            let cells: Vec<Cell> = (s..s + l).map(|i| self.layout.logical_to_cell(i)).collect();
            add(self.work_per_disk(&cells), 1);
        }
        acc
    }

    /// Per-disk work of a degraded-mode read with `failed_col` down.
    pub fn degraded_read_work(&self, start: usize, len: usize, failed_col: usize) -> Vec<f64> {
        let data_len = self.layout.data_len();
        let (full, segs) = segments(data_len, start, len);
        let mut all_segs = segs;
        for _ in 0..full {
            all_segs.push((0, data_len));
        }
        let mut acc = vec![0.0; self.layout.disks()];
        for (s, l) in all_segs {
            let plan = plan_degraded_segment(self.layout, s, l, failed_col);
            let mut cells = plan.surviving_requested.clone();
            cells.extend(plan.extra_reads.iter().copied());
            for (a, w) in acc.iter_mut().zip(self.work_per_disk(&cells)) {
                *a += w;
            }
        }
        acc
    }

    /// Latency of a normal-mode read of `len` continuous logical elements
    /// starting at `start`. Requests longer than a stripe decompose into
    /// per-stripe sub-requests served back-to-back.
    pub fn normal_read_ms(&self, start: usize, len: usize) -> f64 {
        let data_len = self.layout.data_len();
        let (full, segs) = segments(data_len, start, len);
        let mut total = 0.0;
        if full > 0 {
            let all: Vec<Cell> = self.layout.data_cells().to_vec();
            total += full as f64 * self.request_ms(&all);
        }
        for (s, l) in segs {
            let cells: Vec<Cell> = (s..s + l).map(|i| self.layout.logical_to_cell(i)).collect();
            total += self.request_ms(&cells);
        }
        total
    }

    /// Latency of a degraded-mode read with `failed_col` down: surviving
    /// requested elements plus the reconstruction reads chosen by the
    /// degraded-read planner.
    pub fn degraded_read_ms(&self, start: usize, len: usize, failed_col: usize) -> f64 {
        let data_len = self.layout.data_len();
        let (full, segs) = segments(data_len, start, len);
        let mut all_segs = segs;
        for _ in 0..full {
            all_segs.push((0, data_len));
        }
        let mut total = 0.0;
        for (s, l) in all_segs {
            let plan = plan_degraded_segment(self.layout, s, l, failed_col);
            let mut cells = plan.surviving_requested.clone();
            cells.extend(plan.extra_reads.iter().copied());
            total += self.request_ms(&cells);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::dcode;

    #[test]
    fn parallel_disks_bound_by_busiest() {
        let l = dcode(7).unwrap();
        let sim = ArraySim::new(&l, DiskModel::default(), 65536);
        // One full row: 1 element on each of 7 disks → same latency as one
        // element on one disk.
        let row = sim.normal_read_ms(0, 7);
        let single = sim.normal_read_ms(0, 1);
        assert!((row - single).abs() < 1e-9);
        // Two rows: 2 elements per disk — exactly 2× under element-granular
        // random I/O (the default), strictly less under coalescing.
        let two_rows = sim.normal_read_ms(0, 14);
        assert!((two_rows - 2.0 * row).abs() < 1e-9);
        let coalescing = DiskModel {
            coalescing: crate::model::Coalescing::Settle(0.8),
            ..Default::default()
        };
        let sim2 = ArraySim::new(&l, coalescing, 65536);
        let two_rows2 = sim2.normal_read_ms(0, 14);
        assert!(two_rows2 < 2.0 * sim2.normal_read_ms(0, 7));
    }

    #[test]
    fn degraded_never_faster_than_normal() {
        let l = dcode(7).unwrap();
        let sim = ArraySim::new(&l, DiskModel::default(), 65536);
        for start in [0usize, 5, 12] {
            for len in [1usize, 4, 9] {
                let n = sim.normal_read_ms(start, len);
                for failed in 0..7 {
                    let d = sim.degraded_read_ms(start, len, failed);
                    assert!(
                        d >= n - 1e-9,
                        "degraded {d} < normal {n} (start={start}, len={len}, failed={failed})"
                    );
                }
            }
        }
    }

    #[test]
    fn work_vector_matches_latency_view() {
        let l = dcode(7).unwrap();
        let sim = ArraySim::new(&l, DiskModel::default(), 65536);
        for (start, len) in [(0usize, 3usize), (5, 10), (20, 7)] {
            let work = sim.normal_read_work(start, len);
            let max = work.iter().copied().fold(0.0, f64::max);
            assert!((max - sim.normal_read_ms(start, len)).abs() < 1e-9);
        }
    }

    #[test]
    fn degraded_work_loads_surviving_disks_only() {
        let l = dcode(7).unwrap();
        let sim = ArraySim::new(&l, DiskModel::default(), 65536);
        let work = sim.degraded_read_work(0, 10, 3);
        assert_eq!(work[3], 0.0, "failed disk serves nothing");
        assert!(work.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn degraded_read_missing_nothing_equals_normal() {
        let l = dcode(7).unwrap();
        let sim = ArraySim::new(&l, DiskModel::default(), 65536);
        // Elements 0..4 live on columns 0..4; disk 6 is not involved, but
        // the request may still pay reconstruction if any requested element
        // were lost — it is not, so latency matches the normal read.
        let n = sim.normal_read_ms(0, 5);
        let d = sim.degraded_read_ms(0, 5, 6);
        assert!((n - d).abs() < 1e-9);
    }
}
