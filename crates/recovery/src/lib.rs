#![warn(missing_docs)]
//! # dcode-recovery
//!
//! Single-disk failure recovery optimization (Section III-D's last claim).
//!
//! Rebuilding a failed disk conventionally recovers every lost data element
//! through one fixed parity family, reading that equation's surviving
//! members. Xu et al. (IEEE ToC 2013) showed that *mixing* the two parity
//! families — choosing per lost element which equation to use so that the
//! chosen equations overlap in the surviving elements they read — cuts disk
//! reads by about 25% for X-Code. The D-Code paper claims the same saving
//! carries over to D-Code by Theorem 1. This crate implements both the
//! conventional scheme and an exact minimum-read hybrid optimizer (exhaustive
//! over the 2^(n−2) family assignments, with a greedy + local-search
//! fallback for large stripes) and measures the saving for every code.

use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use std::collections::BTreeSet;

/// One recovery option for a lost cell: the equation index and the
/// surviving cells it reads.
type EqOption = (usize, BTreeSet<Cell>);
/// All recovery options for every lost cell of a failed column.
type ColumnOptions = Vec<(Cell, Vec<EqOption>)>;

/// The read set of one whole-disk rebuild.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RebuildPlan {
    /// The failed disk.
    pub failed_col: usize,
    /// Chosen equation per lost *data* cell (parity cells always use their
    /// own stored equation).
    pub choices: Vec<(Cell, usize)>,
    /// Surviving cells read from disk, deduplicated (a recovery engine with
    /// a shared stripe buffer reads each element once).
    pub reads: BTreeSet<Cell>,
    /// Total reads when every chosen equation streams its members
    /// independently, with no shared cache — the *conventional* scheme's
    /// accounting in Xiang et al. (RDP) and Xu et al. (X-Code).
    pub reads_with_multiplicity: usize,
}

impl RebuildPlan {
    /// Number of element reads issued with a shared stripe buffer.
    pub fn read_count(&self) -> usize {
        self.reads.len()
    }
}

/// Candidate equations and their read sets for each lost cell of a column.
fn column_options(layout: &CodeLayout, failed_col: usize) -> ColumnOptions {
    layout
        .grid()
        .column(failed_col)
        .map(|cell| {
            let eqs: Vec<usize> = match layout.storing_eq(cell) {
                // A lost parity is recomputed from its own equation.
                Some(eq) => vec![eq],
                None => layout.member_eqs(cell).to_vec(),
            };
            assert!(!eqs.is_empty(), "cell {cell} has no recovery equation");
            let options = eqs
                .into_iter()
                .map(|eq_idx| {
                    let reads: BTreeSet<Cell> = layout
                        .equation(eq_idx)
                        .cells()
                        .filter(|&c| c.col != failed_col)
                        .collect();
                    (eq_idx, reads)
                })
                .collect();
            (cell, options)
        })
        .collect()
}

fn assemble(
    failed_col: usize,
    options: &ColumnOptions,
    pick: impl Fn(usize) -> usize,
) -> RebuildPlan {
    let mut reads = BTreeSet::new();
    let mut choices = Vec::with_capacity(options.len());
    let mut with_multiplicity = 0;
    for (i, (cell, opts)) in options.iter().enumerate() {
        let (eq_idx, set) = &opts[pick(i)];
        choices.push((*cell, *eq_idx));
        with_multiplicity += set.len();
        reads.extend(set.iter().copied());
    }
    RebuildPlan {
        failed_col,
        choices,
        reads,
        reads_with_multiplicity: with_multiplicity,
    }
}

/// Conventional rebuild: every lost data element uses its *first* parity
/// family (the horizontal/row equation for every code in this workspace,
/// or the diagonal family for X-Code, matching the conventional schemes in
/// the literature).
pub fn conventional_rebuild(layout: &CodeLayout, failed_col: usize) -> RebuildPlan {
    let options = column_options(layout, failed_col);
    assemble(failed_col, &options, |_| 0)
}

/// Exact minimum-read hybrid rebuild.
///
/// Exhaustive over all family assignments when the product of choice counts
/// is at most `2^20`; otherwise greedy seeding plus 1-flip local search
/// (which is already optimal in practice for these codes' structure).
pub fn optimal_rebuild(layout: &CodeLayout, failed_col: usize) -> RebuildPlan {
    let options = column_options(layout, failed_col);
    let combos: f64 = options.iter().map(|(_, o)| o.len() as f64).product();

    if combos <= (1 << 20) as f64 {
        let mut idx = vec![0usize; options.len()];
        let mut best_idx = idx.clone();
        let mut best_count = usize::MAX;
        loop {
            let mut reads: BTreeSet<Cell> = BTreeSet::new();
            for (k, &i) in idx.iter().enumerate() {
                reads.extend(options[k].1[i].1.iter().copied());
            }
            if reads.len() < best_count {
                best_count = reads.len();
                best_idx = idx.clone();
            }
            // Mixed-radix increment.
            let mut k = 0;
            loop {
                if k == idx.len() {
                    break;
                }
                idx[k] += 1;
                if idx[k] < options[k].1.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
            if k == idx.len() {
                break;
            }
        }
        assemble(failed_col, &options, |i| best_idx[i])
    } else {
        // Greedy: process cells in order, picking the option overlapping
        // best with the accumulated read set; then 1-flip local search.
        let mut pick = vec![0usize; options.len()];
        let mut reads: BTreeSet<Cell> = BTreeSet::new();
        for (k, (_, opts)) in options.iter().enumerate() {
            let (i, (_, set)) = opts
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, set))| set.difference(&reads).count())
                .expect("non-empty options");
            pick[k] = i;
            reads.extend(set.iter().copied());
        }
        let union_count = |pick: &[usize]| -> usize {
            let mut u: BTreeSet<Cell> = BTreeSet::new();
            for (k, &i) in pick.iter().enumerate() {
                u.extend(options[k].1[i].1.iter().copied());
            }
            u.len()
        };
        let mut best = union_count(&pick);
        loop {
            let mut improved = false;
            for k in 0..pick.len() {
                let orig = pick[k];
                for alt in 0..options[k].1.len() {
                    if alt == orig {
                        continue;
                    }
                    pick[k] = alt;
                    let c = union_count(&pick);
                    if c < best {
                        best = c;
                        improved = true;
                    } else {
                        pick[k] = orig;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        assemble(failed_col, &options, |i| pick[i])
    }
}

/// Savings summary over every failed-disk case of one code.
#[derive(Clone, Debug)]
pub struct RecoverySavings {
    /// Code name.
    pub code: String,
    /// Prime parameter.
    pub prime: usize,
    /// Mean conventional reads per failed-disk rebuild.
    pub conventional_reads: f64,
    /// Mean optimized reads per failed-disk rebuild.
    pub optimized_reads: f64,
}

impl RecoverySavings {
    /// Percentage of reads saved by the hybrid scheme.
    pub fn reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.optimized_reads / self.conventional_reads)
    }
}

/// Measure conventional vs optimal rebuild reads averaged over all disks.
///
/// The conventional scheme streams each equation independently (reads with
/// multiplicity, no shared cache); the optimized scheme both chooses
/// equation families to overlap *and* reads each element once. This is the
/// comparison behind Xu et al.'s ≈25% figure for X-Code, which Section
/// III-D carries over to D-Code.
pub fn measure_savings(layout: &CodeLayout) -> RecoverySavings {
    let disks = layout.disks();
    let mut conv = 0usize;
    let mut opt = 0usize;
    for col in 0..disks {
        let c = conventional_rebuild(layout, col).reads_with_multiplicity;
        let o = optimal_rebuild(layout, col).read_count();
        debug_assert!(o <= c);
        conv += c;
        opt += o;
    }
    RecoverySavings {
        code: layout.name().to_string(),
        prime: layout.prime(),
        conventional_reads: conv as f64 / disks as f64,
        optimized_reads: opt as f64 / disks as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::{dcode, xcode};

    #[test]
    fn optimal_never_exceeds_conventional() {
        for n in [5usize, 7, 11, 13] {
            let l = dcode(n).unwrap();
            for col in 0..n {
                let c = conventional_rebuild(&l, col).read_count();
                let o = optimal_rebuild(&l, col).read_count();
                assert!(o <= c, "n={n} col={col}: {o} > {c}");
            }
        }
    }

    #[test]
    fn xcode_hybrid_saves_about_a_quarter() {
        // Xu et al.: ~25% fewer reads for X-Code single-failure recovery.
        for n in [7usize, 11, 13] {
            let s = measure_savings(&xcode(n).unwrap());
            assert!(
                s.reduction_pct() > 15.0 && s.reduction_pct() < 35.0,
                "n={n}: {:.1}%",
                s.reduction_pct()
            );
        }
    }

    #[test]
    fn dcode_savings_match_xcode() {
        // Theorem 1: identical structure ⇒ identical savings.
        for n in [5usize, 7, 11, 13] {
            let d = measure_savings(&dcode(n).unwrap());
            let x = measure_savings(&xcode(n).unwrap());
            assert!(
                (d.reduction_pct() - x.reduction_pct()).abs() < 1e-9,
                "n={n}"
            );
        }
    }

    #[test]
    fn conventional_reads_whole_stripe_for_dcode() {
        // Rebuilding via horizontal equations only: each of the n−2 lost
        // data elements reads its n−3 surviving members + 1 parity, and the
        // 2 lost parities read their members. The union is large.
        let l = dcode(7).unwrap();
        let plan = conventional_rebuild(&l, 0);
        assert!(plan.read_count() > 20);
        // No read comes from the failed disk.
        assert!(plan.reads.iter().all(|c| c.col != 0));
    }

    #[test]
    fn greedy_path_engages_for_large_stripes_and_stays_sane() {
        // n = 29 → 2^27 assignments: beyond the exhaustive cap, so the
        // greedy + local-search fallback runs. It must still beat the
        // conventional multiplicity count by a healthy margin.
        let l = dcode(29).unwrap();
        let conv = conventional_rebuild(&l, 0);
        let opt = optimal_rebuild(&l, 0);
        assert!(opt.read_count() <= conv.reads_with_multiplicity);
        let reduction = 1.0 - opt.read_count() as f64 / conv.reads_with_multiplicity as f64;
        assert!(
            reduction > 0.2,
            "greedy reduction only {:.1}%",
            reduction * 100.0
        );
    }

    #[test]
    fn conventional_reads_match_closed_form_for_dcode() {
        // Every lost element's equation reads n−2 surviving cells; a lost
        // column holds n cells → n(n−2) reads with multiplicity.
        for n in [5usize, 7, 11, 13] {
            let l = dcode(n).unwrap();
            let plan = conventional_rebuild(&l, 2);
            assert_eq!(plan.reads_with_multiplicity, n * (n - 2));
        }
    }

    #[test]
    fn savings_reports_name_and_prime() {
        let s = measure_savings(&dcode(7).unwrap());
        assert_eq!(s.code, "D-Code");
        assert_eq!(s.prime, 7);
        assert!(s.reduction_pct() > 0.0);
    }

    #[test]
    fn rebuild_covers_every_lost_cell() {
        let l = dcode(7).unwrap();
        for col in 0..7 {
            let plan = optimal_rebuild(&l, col);
            assert_eq!(plan.choices.len(), 7);
        }
    }
}
