//! Criterion: partial-stripe write (read-modify-write) throughput for every
//! code. The element-I/O counts behind Figure 5 translate directly into the
//! byte work measured here: codes whose continuous elements share parities
//! (D-Code, RDP, H-Code) move fewer parity bytes per written element.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcode_baselines::registry::{build, EVALUATED_CODES};
use dcode_codec::{encode, write_logical, Stripe};

const BLOCK: usize = 64 * 1024;
const P: usize = 13;
const WRITE_ELEMENTS: usize = 8;

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("partial_stripe_write");
    let new_bytes: Vec<u8> = (0..WRITE_ELEMENTS * BLOCK)
        .map(|i| (i * 131) as u8)
        .collect();
    for &code in &EVALUATED_CODES {
        let layout = build(code, P).unwrap();
        let data: Vec<u8> = (0..layout.data_len() * BLOCK)
            .map(|i| (i * 31) as u8)
            .collect();
        let mut stripe = Stripe::from_data(&layout, BLOCK, &data);
        encode(&layout, &mut stripe);
        group.throughput(Throughput::Bytes((WRITE_ELEMENTS * BLOCK) as u64));
        group.bench_with_input(BenchmarkId::new("write8", code.name()), &stripe, |b, s| {
            b.iter_batched(
                || s.clone(),
                |mut s| write_logical(&layout, &mut s, 3, &new_bytes),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
