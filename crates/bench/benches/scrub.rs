//! Criterion: parity scrubbing — full-stripe verification and
//! single-corruption localization + repair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcode_array::scrub::{failing_equations, scrub_stripe};
use dcode_baselines::registry::{build, CodeId};
use dcode_codec::{encode, Stripe};
use dcode_core::grid::Cell;

const BLOCK: usize = 64 * 1024;

fn bench_scrub(c: &mut Criterion) {
    let mut group = c.benchmark_group("scrub");
    for p in [7usize, 13] {
        let layout = build(CodeId::DCode, p).unwrap();
        let payload: Vec<u8> = (0..layout.data_len() * BLOCK)
            .map(|i| (i * 31) as u8)
            .collect();
        let mut stripe = Stripe::from_data(&layout, BLOCK, &payload);
        encode(&layout, &mut stripe);
        group.throughput(Throughput::Bytes((layout.grid().len() * BLOCK) as u64));

        group.bench_function(BenchmarkId::new("verify_clean", p), |b| {
            b.iter(|| failing_equations(&layout, &stripe));
        });

        group.bench_function(BenchmarkId::new("localize_and_repair", p), |b| {
            b.iter_batched(
                || {
                    let mut s = stripe.clone();
                    s.block_mut(Cell::new(1, 2))[5] ^= 0x40;
                    s
                },
                |mut s| scrub_stripe(&layout, &mut s),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scrub);
criterion_main!(benches);
