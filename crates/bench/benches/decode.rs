//! Criterion: double-disk-failure decode throughput for every code
//! (plan construction + byte reconstruction, naive replay vs compiled
//! schedule replay).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcode_baselines::registry::{build, EVALUATED_CODES};
use dcode_codec::schedule::XorProgram;
use dcode_codec::{apply_plan_naive, encode, Stripe};
use dcode_core::decoder::plan_column_recovery;

const BLOCK: usize = 64 * 1024;
const P: usize = 13;

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_double_failure");
    for &code in &EVALUATED_CODES {
        let layout = build(code, P).unwrap();
        let data: Vec<u8> = (0..layout.data_len() * BLOCK)
            .map(|i| (i * 31) as u8)
            .collect();
        let mut stripe = Stripe::from_data(&layout, BLOCK, &data);
        encode(&layout, &mut stripe);
        let cols = [0usize, 1];
        let plan = plan_column_recovery(&layout, &cols).unwrap();
        group.throughput(Throughput::Bytes((plan.erased.len() * BLOCK) as u64));

        group.bench_with_input(
            BenchmarkId::new("rebuild_naive", code.name()),
            &stripe,
            |b, s| {
                b.iter_batched(
                    || {
                        let mut broken = s.clone();
                        broken.erase_columns(&cols);
                        broken
                    },
                    |mut broken| apply_plan_naive(&mut broken, &plan),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        let program = XorProgram::compile_plan(layout.grid(), &plan);
        group.bench_with_input(
            BenchmarkId::new("rebuild_compiled", code.name()),
            &stripe,
            |b, s| {
                b.iter_batched(
                    || {
                        let mut broken = s.clone();
                        broken.erase_columns(&cols);
                        broken
                    },
                    |mut broken| program.run(&mut broken),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        group.bench_function(BenchmarkId::new("plan_only", code.name()), |b| {
            b.iter(|| plan_column_recovery(&layout, &cols).unwrap());
        });
        group.bench_function(BenchmarkId::new("compile_only", code.name()), |b| {
            b.iter(|| XorProgram::compile_plan(layout.grid(), &plan));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
