//! Criterion: the single-disk recovery optimizer — conventional planning vs
//! the exhaustive hybrid search (2^(n−2) assignments at D-Code scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcode_baselines::registry::{build, CodeId};
use dcode_recovery::{conventional_rebuild, measure_savings, optimal_rebuild};

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_optimizer");
    for p in [7usize, 11, 13] {
        let layout = build(CodeId::DCode, p).unwrap();
        group.bench_function(BenchmarkId::new("conventional", p), |b| {
            b.iter(|| conventional_rebuild(&layout, 0));
        });
        group.bench_function(BenchmarkId::new("optimal_exhaustive", p), |b| {
            b.iter(|| optimal_rebuild(&layout, 0));
        });
    }
    // The full savings measurement (every disk) at the paper's largest prime.
    let layout = build(CodeId::DCode, 13).unwrap();
    group.sample_size(10);
    group.bench_function("measure_savings_p13", |b| {
        b.iter(|| measure_savings(&layout));
    });
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
