//! Criterion: the array layer — degraded reads, whole-disk rebuild, and
//! scrubbing over a multi-stripe D-Code array.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcode_array::scrub::scrub_stripe;
use dcode_array::{Array, RotationScheme};
use dcode_core::dcode::dcode;

const BLOCK: usize = 16 * 1024;
const STRIPES: usize = 8;

fn make_array() -> Array {
    let mut a = Array::new(dcode(7).unwrap(), BLOCK, STRIPES, RotationScheme::PerStripe);
    let payload: Vec<u8> = (0..a.capacity_bytes()).map(|i| (i % 251) as u8).collect();
    a.write(0, &payload).unwrap();
    a
}

fn bench_array(c: &mut Criterion) {
    let mut group = c.benchmark_group("array_ops");
    let healthy = make_array();
    let elements = healthy.capacity_elements();
    group.throughput(Throughput::Bytes((elements * BLOCK) as u64));

    group.bench_function(BenchmarkId::new("full_read", "healthy"), |b| {
        b.iter(|| healthy.read(0, elements).unwrap());
    });

    let mut degraded = make_array();
    degraded.fail_disk(2).unwrap();
    degraded.fail_disk(5).unwrap();
    group.bench_function(BenchmarkId::new("full_read", "two_failed"), |b| {
        b.iter(|| degraded.read(0, elements).unwrap());
    });

    group.bench_function(BenchmarkId::new("rebuild_disk", "one_failed"), |b| {
        b.iter_batched(
            || {
                let mut a = make_array();
                a.fail_disk(3).unwrap();
                a
            },
            |mut a| a.rebuild_disk(3).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });

    let layout = dcode(7).unwrap();
    group.bench_function(BenchmarkId::new("scrub_stripe", "clean"), |b| {
        b.iter_batched(
            make_array,
            |mut a| scrub_stripe(&layout, a.stripe_mut(0)),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_array);
criterion_main!(benches);
