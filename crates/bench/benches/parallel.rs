//! Criterion: thread-scaling of the pool-parallel encode paths, emitting
//! `BENCH_parallel.json` at the repository root.
//!
//! Two shapes are measured per code, each on a dedicated
//! [`minipool::WorkerPool`] sized to the requested fan-out (so the pool
//! machinery is exercised even where the host clamp would collapse the
//! public API to sequential):
//!
//! * `level/…/tN` — one stripe, ops of each dependency level fanned out
//!   over N workers ([`XorProgram::run_pooled`]);
//! * `bulk/…/tN` — a batch of stripes fanned out whole-stripe per job
//!   ([`dcode_codec::bulk::encode_stripes_pooled`]).
//!
//! The JSON records `host_parallelism` alongside the medians: on a
//! single-core host the t2/t4/t8 rows measure pool overhead, not speedup,
//! and downstream tooling needs that context to read the numbers honestly.
//!
//! `DCODE_BENCH_FAST=1` shrinks blocks and sample counts for CI smoke.

use criterion::{BenchmarkId, Criterion, Throughput};
use dcode_baselines::registry::{build, EVALUATED_CODES};
use dcode_codec::bulk::encode_stripes_pooled;
use dcode_codec::schedule::XorProgram;
use dcode_codec::{cache, Stripe};
use minipool::WorkerPool;
use std::io::Write;
use std::sync::Arc;

const P: usize = 13;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn fast() -> bool {
    std::env::var("DCODE_BENCH_FAST").is_ok_and(|v| v == "1")
}

fn block_bytes() -> usize {
    if fast() {
        4 * 1024
    } else {
        64 * 1024
    }
}

fn bulk_stripes() -> usize {
    if fast() {
        4
    } else {
        16
    }
}

fn payload(len: usize) -> Vec<u8> {
    let mut x = 0x243F6A8885A308D3u64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 29) as u8
        })
        .collect()
}

fn bench_parallel(c: &mut Criterion) {
    let block = block_bytes();
    let mut group = c.benchmark_group("parallel");
    if fast() {
        group.sample_size(5);
    }
    for &code in &EVALUATED_CODES {
        let layout = build(code, P).unwrap();
        let program: Arc<XorProgram> = cache::global().encode_program(&layout);
        let data = payload(layout.data_len() * block);
        let stripe = Stripe::from_data(&layout, block, &data);
        let batch: Vec<Stripe> = (0..bulk_stripes()).map(|_| stripe.clone()).collect();
        for &t in &THREADS {
            let pool = WorkerPool::with_workers(t);
            group.throughput(Throughput::Bytes((layout.data_len() * block) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("level/{}", code.name()), format!("t{t}")),
                &stripe,
                |b, s| {
                    b.iter_batched(
                        || s.clone(),
                        |mut s| XorProgram::run_pooled(&program, &mut s, &pool, t),
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
            group.throughput(Throughput::Bytes(
                (layout.data_len() * block * batch.len()) as u64,
            ));
            group.bench_with_input(
                BenchmarkId::new(format!("bulk/{}", code.name()), format!("t{t}")),
                &batch,
                |b, stripes| {
                    b.iter_batched(
                        || stripes.clone(),
                        |mut ss| encode_stripes_pooled(&program, &mut ss, &pool, t),
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

/// Write `BENCH_parallel.json`: every measurement plus the host context a
/// reader needs to interpret thread-scaling on this machine.
fn emit_trajectory_point(c: &Criterion) {
    let results = c.results();
    let gib = |median_ns: f64, bytes: u64| -> f64 {
        if median_ns <= 0.0 {
            return 0.0;
        }
        bytes as f64 / median_ns * 1e9 / (1024.0 * 1024.0 * 1024.0)
    };
    let mut entries = String::new();
    for r in results {
        let bytes = match r.throughput {
            Some(criterion::Throughput::Bytes(b)) => b,
            _ => 0,
        };
        entries.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"gib_per_s\": {:.4}}},\n",
            r.id,
            r.median_ns,
            gib(r.median_ns, bytes)
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"p\": {P},\n  \"block_bytes\": {},\n  \
         \"bulk_stripes\": {},\n  \"threads\": [1, 2, 4, 8],\n  \
         \"host_parallelism\": {},\n  \"results\": [\n{}  ]\n}}\n",
        block_bytes(),
        bulk_stripes(),
        minipool::host_parallelism(),
        entries.trim_end_matches(",\n").to_string() + "\n",
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_parallel(&mut c);
    emit_trajectory_point(&c);
}
