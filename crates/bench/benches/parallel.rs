//! Criterion: thread-scaling of the pool-parallel encode paths, emitting
//! `BENCH_parallel.json` at the repository root.
//!
//! Three shapes are measured per code, each on a dedicated
//! [`minipool::WorkerPool`] sized to the requested fan-out (so the pool
//! machinery is exercised even where the host clamp would collapse the
//! public API to sequential):
//!
//! * `level/…/tN` — one stripe, ops of each dependency level fanned out
//!   over N workers ([`XorProgram::run_pooled`]);
//! * `bulk/…/tN` — the **pre-fusion** bulk path, kept measurable for
//!   before/after: each stripe replays the single-stripe program
//!   independently (op-major, so every source block streams from memory
//!   once per parity equation);
//! * `bulk_fused/…/tN` — the shipping bulk path
//!   ([`dcode_codec::bulk::encode_stripes_pooled`]): the batch replays
//!   one fused tile-major program, touching each source block once per
//!   batch.
//!
//! All three families measure **steady-state in-place** encode over the
//! **same working set** — a `bulk_stripes()`-deep stripe set, cloned once
//! per benchmark and re-encoded in place each iteration (encoding only
//! overwrites parity cells, so re-running is idempotent). The `level`
//! rows rotate through the set one stripe per iteration; the bulk rows
//! encode the whole set per iteration. Keeping the working set identical
//! matters more than it looks: the earlier clone-per-iteration scheme
//! handed the single-stripe rows a cache-warm input (the clone *is* the
//! warmup, and one stripe stays resident between iterations) while a
//! 16-stripe batch evicted itself before each timed run — so level/bulk
//! ratios measured cache capacity, not the encoder. With both families
//! streaming the same footprint, the ratio isolates what the bulk path
//! actually adds or removes per stripe.
//!
//! The JSON records `host_parallelism` alongside the medians: on a
//! single-core host the t2/t4/t8 rows measure pool overhead, not speedup,
//! and downstream tooling needs that context to read the numbers honestly.
//!
//! * `DCODE_BENCH_FAST=1` shrinks blocks and sample counts for CI smoke.
//! * `DCODE_BENCH_ASSERT=1` asserts, per code at t1: in full mode, fused
//!   bulk throughput is at least 90% of the `level` single-stripe
//!   throughput — the bulk/level gap the fused path exists to close. In
//!   fast mode that bar is structurally unreachable (a ~570 KiB stripe is
//!   L2-resident and clocks 26-31 GiB/s; any multi-stripe batch exceeds
//!   L2), so the smoke asserts a catastrophic-regression canary instead:
//!   fused bulk ≥ 70% of the unfused bulk replay (70%, not ~100%,
//!   because five samples at µs scale on a shared vCPU jitter by ±30%).

use criterion::{BenchmarkId, Criterion, Throughput};
use dcode_baselines::registry::{build, EVALUATED_CODES};
use dcode_codec::bulk::encode_stripes_pooled;
use dcode_codec::schedule::XorProgram;
use dcode_codec::{cache, Stripe};
use minipool::WorkerPool;
use std::io::Write;
use std::sync::Arc;

const P: usize = 13;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn fast() -> bool {
    std::env::var("DCODE_BENCH_FAST").is_ok_and(|v| v == "1")
}

fn block_bytes() -> usize {
    if fast() {
        4 * 1024
    } else {
        64 * 1024
    }
}

fn bulk_stripes() -> usize {
    if fast() {
        4
    } else {
        16
    }
}

fn payload(len: usize) -> Vec<u8> {
    let mut x = 0x243F6A8885A308D3u64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 29) as u8
        })
        .collect()
}

/// The pre-fusion bulk path, reproduced here so the before/after rows
/// keep measuring the same thing after the library switched to fused
/// replay: chunk the batch across jobs, each job replaying the
/// single-stripe program per stripe. Takes the `Vec` by mutable borrow
/// and moves chunks through the pool (jobs need `'static` ownership),
/// reassembling in order afterwards.
fn encode_stripes_unfused(
    program: &Arc<XorProgram>,
    stripes: &mut Vec<Stripe>,
    pool: &WorkerPool,
    threads: usize,
) {
    let threads = threads.max(1).min(stripes.len().max(1));
    if threads <= 1 {
        for s in stripes.iter_mut() {
            program.run(s);
        }
        return;
    }
    let chunk = stripes.len().div_ceil(threads);
    let mut jobs = Vec::with_capacity(threads);
    let mut rest = std::mem::take(stripes);
    while !rest.is_empty() {
        let tail = rest.split_off(chunk.min(rest.len()));
        let mut owned = std::mem::replace(&mut rest, tail);
        let prog = Arc::clone(program);
        jobs.push(move || {
            for s in &mut owned {
                prog.run(s);
            }
            owned
        });
    }
    stripes.extend(pool.run(jobs).into_iter().flatten());
}

fn bench_parallel(c: &mut Criterion) {
    let block = block_bytes();
    let mut group = c.benchmark_group("parallel");
    if fast() {
        group.sample_size(5);
    }
    for &code in &EVALUATED_CODES {
        let layout = build(code, P).unwrap();
        let program: Arc<XorProgram> = cache::global().encode_program(&layout);
        let data = payload(layout.data_len() * block);
        let stripe = Stripe::from_data(&layout, block, &data);
        let batch: Vec<Stripe> = (0..bulk_stripes()).map(|_| stripe.clone()).collect();
        for &t in &THREADS {
            let pool = WorkerPool::with_workers(t);
            group.throughput(Throughput::Bytes((layout.data_len() * block) as u64));
            group.bench_function(
                BenchmarkId::new(format!("level/{}", code.name()), format!("t{t}")),
                |b| {
                    let mut set = batch.clone();
                    let mut k = 0;
                    b.iter(|| {
                        XorProgram::run_pooled(&program, &mut set[k], &pool, t);
                        k = (k + 1) % set.len();
                    });
                },
            );
            group.throughput(Throughput::Bytes(
                (layout.data_len() * block * batch.len()) as u64,
            ));
            group.bench_function(
                BenchmarkId::new(format!("bulk/{}", code.name()), format!("t{t}")),
                |b| {
                    let mut ss = batch.clone();
                    b.iter(|| encode_stripes_unfused(&program, &mut ss, &pool, t));
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("bulk_fused/{}", code.name()), format!("t{t}")),
                |b| {
                    let mut ss = batch.clone();
                    b.iter(|| encode_stripes_pooled(&program, &mut ss, &pool, t));
                },
            );
        }
    }
    group.finish();
}

fn gib(median_ns: f64, bytes: u64) -> f64 {
    if median_ns <= 0.0 {
        return 0.0;
    }
    bytes as f64 / median_ns * 1e9 / (1024.0 * 1024.0 * 1024.0)
}

/// Write `BENCH_parallel.json`: every measurement plus the host context a
/// reader needs to interpret thread-scaling on this machine.
fn emit_trajectory_point(c: &Criterion) {
    let results = c.results();
    let mut entries = String::new();
    for r in results {
        let bytes = match r.throughput {
            Some(criterion::Throughput::Bytes(b)) => b,
            _ => 0,
        };
        entries.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"gib_per_s\": {:.4}}},\n",
            r.id,
            r.median_ns,
            gib(r.median_ns, bytes)
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"p\": {P},\n  \"block_bytes\": {},\n  \
         \"bulk_stripes\": {},\n  \"threads\": [1, 2, 4, 8],\n  \
         \"host_parallelism\": {},\n  \"fused_tile_bytes\": {},\n  \"results\": [\n{}  ]\n}}\n",
        block_bytes(),
        bulk_stripes(),
        minipool::host_parallelism(),
        dcode_codec::fused_tile_bytes(),
        entries.trim_end_matches(",\n").to_string() + "\n",
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// `DCODE_BENCH_ASSERT=1`: per code at t1, fused bulk must clear the
/// regime-appropriate bar. Full mode: ≥ 90% of the single-stripe `level`
/// throughput (the gap the fused tile-major path exists to close — the
/// unfused `bulk` rows historically sat at ~half of `level`). Fast mode:
/// ≥ 70% of the unfused bulk replay — the level bar is a cache-capacity
/// artifact at smoke shapes (see the module docs), so CI only checks
/// that fusing never catastrophically regresses the path it replaced.
fn assert_fused_closes_the_gap(c: &Criterion) {
    if std::env::var("DCODE_BENCH_ASSERT").map(|v| v == "1") != Ok(true) {
        return;
    }
    let results = c.results();
    let gib_of = |id: String| {
        results.iter().find(|r| r.id == id).map(|r| {
            let bytes = match r.throughput {
                Some(criterion::Throughput::Bytes(b)) => b,
                _ => 0,
            };
            gib(r.median_ns, bytes)
        })
    };
    for &code in &EVALUATED_CODES {
        let fused = gib_of(format!("parallel/bulk_fused/{}/t1", code.name()))
            .expect("bulk_fused t1 row was measured");
        let (baseline, frac, what) = if fast() {
            let bulk = gib_of(format!("parallel/bulk/{}/t1", code.name()))
                .expect("bulk t1 row was measured");
            (bulk, 0.7, "unfused bulk")
        } else {
            let level = gib_of(format!("parallel/level/{}/t1", code.name()))
                .expect("level t1 row was measured");
            (level, 0.9, "level")
        };
        assert!(
            fused >= frac * baseline,
            "{}: fused bulk {fused:.3} GiB/s < {:.0}% of {what} {baseline:.3} GiB/s — \
             the fused bulk path regressed below the gap-closing bar",
            code.name(),
            frac * 100.0
        );
        println!(
            "bench assert ok: {} fused bulk {fused:.3} GiB/s >= {:.0}% of {what} {baseline:.3} GiB/s",
            code.name(),
            frac * 100.0
        );
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_parallel(&mut c);
    emit_trajectory_point(&c);
    assert_fused_closes_the_gap(&c);
}
