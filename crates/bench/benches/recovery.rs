//! Criterion: recovery and degraded-read replay throughput for every
//! registry code, emitting `BENCH_recovery.json` at the repository root.
//!
//! For each code at p ∈ {7, 13}:
//!
//! * `single/…` — rebuild one erased column (column 0) by replaying the
//!   cached compiled recovery program;
//! * `double/…` — rebuild two erased columns (0 and 1) the same way;
//! * `degraded/…` — a degraded read: reconstruct only column 0's cells
//!   under the double erasure {0, 1}, via the cached subprogram — the
//!   `ResilientArray` steady-state path.
//!
//! All programs come from the global [`dcode_codec::ScheduleCache`], so
//! the measurements cover exactly what the array serves after warm-up:
//! replay only, no planning or compilation. Throughput is counted in
//! reconstructed bytes. The JSON also records each program's op/source
//! counts and its surviving-read footprint (the disk I/O the paper's
//! read-optimization argument is about).
//!
//! `DCODE_BENCH_FAST=1` shrinks blocks and sample counts for CI smoke.

use criterion::{BenchmarkId, Criterion, Throughput};
use dcode_baselines::registry::{build, ALL_CODES};
use dcode_codec::{cache, Stripe};
use dcode_core::grid::Cell;
use std::collections::BTreeSet;
use std::io::Write;

fn fast() -> bool {
    std::env::var("DCODE_BENCH_FAST").is_ok_and(|v| v == "1")
}

fn block_bytes() -> usize {
    if fast() {
        4 * 1024
    } else {
        64 * 1024
    }
}

fn primes() -> &'static [usize] {
    if fast() {
        &[7]
    } else {
        &[7, 13]
    }
}

fn payload(len: usize) -> Vec<u8> {
    let mut x = 0xD1B54A32D192ED03u64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 31) as u8
        })
        .collect()
}

/// One row of the JSON report.
struct Row {
    id: String,
    median_ns: f64,
    recovered_bytes: u64,
    ops: usize,
    sources: usize,
    surviving_reads: usize,
}

fn bench_recovery(c: &mut Criterion) {
    let block = block_bytes();
    let mut rows: Vec<Row> = Vec::new();
    let mut group = c.benchmark_group("recovery");
    if fast() {
        group.sample_size(5);
    }
    for &p in primes() {
        for &code in &ALL_CODES {
            let layout = build(code, p).unwrap();
            let grid = layout.grid();
            let data = payload(layout.data_len() * block);
            let mut encoded = Stripe::from_data(&layout, block, &data);
            cache::global().encode_program(&layout).run(&mut encoded);

            // (scenario, erased columns, cells the replay reconstructs)
            let single: BTreeSet<Cell> = grid.column(0).collect();
            let double: BTreeSet<Cell> = [0usize, 1]
                .iter()
                .flat_map(|&col| grid.column(col))
                .collect();
            let scenarios: [(&str, &[usize], &BTreeSet<Cell>); 3] = [
                ("single", &[0], &single),
                ("double", &[0, 1], &double),
                ("degraded", &[0, 1], &single),
            ];
            for (scenario, cols, targets) in scenarios {
                let compiled = if scenario == "degraded" {
                    cache::global()
                        .recovery_subprogram(&layout, cols.iter().copied(), targets)
                        .unwrap()
                } else {
                    cache::global().column_program(&layout, cols).unwrap()
                };
                let mut lost = encoded.clone();
                lost.erase_columns(cols);
                let recovered_bytes = (targets.len() * block) as u64;
                let label = format!("{}/{}", scenario, code.name());
                group.throughput(Throughput::Bytes(recovered_bytes));
                group.bench_with_input(BenchmarkId::new(label, format!("p{p}")), &lost, |b, s| {
                    b.iter_batched(
                        || s.clone(),
                        |mut s| compiled.program.run(&mut s),
                        criterion::BatchSize::LargeInput,
                    );
                });
                rows.push(Row {
                    id: format!("recovery/{}/{}/p{p}", scenario, code.name()),
                    median_ns: 0.0, // filled from Criterion results below
                    recovered_bytes,
                    ops: compiled.program.op_count(),
                    sources: compiled.program.source_count(),
                    surviving_reads: compiled.reads.len(),
                });
            }
        }
    }
    group.finish();
    // Pair program shape with the recorded medians and emit the report.
    for row in &mut rows {
        if let Some(r) = c.results().iter().find(|r| r.id == row.id) {
            row.median_ns = r.median_ns;
        }
    }
    emit_trajectory_point(&rows);
}

fn emit_trajectory_point(rows: &[Row]) {
    let gib = |median_ns: f64, bytes: u64| -> f64 {
        if median_ns <= 0.0 {
            return 0.0;
        }
        bytes as f64 / median_ns * 1e9 / (1024.0 * 1024.0 * 1024.0)
    };
    let mut entries = String::new();
    for r in rows {
        entries.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"gib_per_s\": {:.4}, \
             \"ops\": {}, \"sources\": {}, \"surviving_reads\": {}}},\n",
            r.id,
            r.median_ns,
            gib(r.median_ns, r.recovered_bytes),
            r.ops,
            r.sources,
            r.surviving_reads,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"recovery\",\n  \"primes\": {:?},\n  \"block_bytes\": {},\n  \
         \"host_parallelism\": {},\n  \"results\": [\n{}  ]\n}}\n",
        primes(),
        block_bytes(),
        minipool::host_parallelism(),
        entries.trim_end_matches(",\n").to_string() + "\n",
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_recovery(&mut c);
}
