//! Criterion: degraded-read planning cost — the per-request optimizer that
//! chooses reconstruction equations (the hot inner loop of the Figure 7
//! simulation) — plus the end-to-end accounting of a whole 2000-op workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcode_baselines::registry::{build, EVALUATED_CODES};
use dcode_iosim::access::{degraded_read_accesses, plan_degraded_segment};
use dcode_iosim::sim::run_workload;
use dcode_iosim::workload::{generate, WorkloadKind, WorkloadParams};

const P: usize = 13;

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("degraded_read_planner");
    for &code in &EVALUATED_CODES {
        let layout = build(code, P).unwrap();
        group.bench_function(BenchmarkId::new("plan_len16", code.name()), |b| {
            b.iter(|| plan_degraded_segment(&layout, 5, 16, 2));
        });
        group.bench_function(BenchmarkId::new("accesses_len16", code.name()), |b| {
            b.iter(|| degraded_read_accesses(&layout, 5, 16, 2));
        });
    }
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_accounting");
    group.sample_size(10);
    for &code in &EVALUATED_CODES {
        let layout = build(code, P).unwrap();
        let ops = generate(
            WorkloadKind::Mixed,
            layout.data_len(),
            WorkloadParams::default(),
            7,
        );
        group.bench_function(BenchmarkId::new("mixed_2000ops", code.name()), |b| {
            b.iter(|| run_workload(&layout, &ops));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planner, bench_workload);
criterion_main!(benches);
