//! Criterion: full-stripe encode throughput for every code, all backends —
//! the naive equation interpreter, the compiled `XorProgram` schedule
//! (sequential, from the global schedule cache), the pool-parallel public
//! path, the fused multi-stripe bulk path (`bulk_fused`, measured
//! steady-state in place on an 8-stripe batch), and the GF(2) bit-matrix —
//! plus a `BENCH_encode.json` trajectory point comparing naive vs
//! compiled.
//!
//! Environment knobs (used by the CI `bench-smoke` job):
//!
//! * `DCODE_BENCH_FAST=1` — tiny blocks and few samples; exercises every
//!   code path in seconds instead of minutes.
//! * `DCODE_BENCH_ASSERT=1` — after measuring, assert that the clamped
//!   pool-parallel encode at 4 threads is at least as fast as the
//!   sequential compiled replay on at least one code.

use criterion::{BenchmarkId, Criterion, Throughput};
use dcode_baselines::registry::{build, EVALUATED_CODES};
use dcode_codec::{
    cache, encode_naive, encode_parallel, encode_stripes, encode_with_matrix, generator_matrix,
    Stripe,
};
use std::io::Write;

const P: usize = 13;

fn fast() -> bool {
    std::env::var("DCODE_BENCH_FAST").is_ok_and(|v| v == "1")
}

fn block_bytes() -> usize {
    if fast() {
        4 * 1024
    } else {
        64 * 1024
    }
}

/// True when a 4-thread request collapses to the sequential path on this
/// host — `encode_parallel(…, 4)` and `program.run` are then the same code.
fn clamped_to_sequential() -> bool {
    minipool::effective_parallelism(4) == 1
}

fn payload(len: usize) -> Vec<u8> {
    let mut x = 0x9E3779B97F4A7C15u64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let block = block_bytes();
    let mut group = c.benchmark_group("encode");
    if fast() {
        group.sample_size(5);
    } else {
        // Medians over more samples: the parallel-vs-sequential comparison
        // below is a ~1% margin on a quiet host, well inside 15-sample noise.
        group.sample_size(41);
    }
    for &code in &EVALUATED_CODES {
        let layout = build(code, P).unwrap();
        let data = payload(layout.data_len() * block);
        let stripe = Stripe::from_data(&layout, block, &data);
        // The cached compile — what `encode` and `encode_parallel` replay.
        let program = cache::global().encode_program(&layout);
        group.throughput(Throughput::Bytes((layout.data_len() * block) as u64));
        group.bench_with_input(BenchmarkId::new("naive", code.name()), &stripe, |b, s| {
            b.iter_batched(
                || s.clone(),
                |mut s| encode_naive(&layout, &mut s),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(
            BenchmarkId::new("compiled", code.name()),
            &stripe,
            |b, s| {
                b.iter_batched(
                    || s.clone(),
                    |mut s| program.run(&mut s),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        // The public parallel path: cached program + persistent pool,
        // requested fan-out clamped to the host's parallelism. When the
        // clamp collapses to one thread this is the sequential replay plus
        // a cache lookup, so it is measured under a `_measured` id and the
        // comparison row is aliased from `compiled` (see
        // `emit_trajectory_point`) — timing the identical code path twice
        // and diffing the noise would be the dishonest option.
        let parallel_id = if clamped_to_sequential() {
            "compiled_parallel4_measured"
        } else {
            "compiled_parallel4"
        };
        group.bench_with_input(
            BenchmarkId::new(parallel_id, code.name()),
            &stripe,
            |b, s| {
                b.iter_batched(
                    || s.clone(),
                    |mut s| encode_parallel(&layout, &mut s, 4),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        // The fused bulk path on an 8-stripe batch, in place: encode only
        // overwrites parity, so re-encoding the same batch each iteration
        // is idempotent and measures the steady-state fused replay rather
        // than per-iteration clone eviction. Throughput is per batch
        // (8 × the single-stripe byte count).
        const BULK: usize = 8;
        group.throughput(Throughput::Bytes((layout.data_len() * block * BULK) as u64));
        group.bench_function(BenchmarkId::new("bulk_fused", code.name()), |b| {
            let mut ss: Vec<Stripe> = (0..BULK).map(|_| stripe.clone()).collect();
            b.iter(|| encode_stripes(&layout, &mut ss, 1));
        });
        group.throughput(Throughput::Bytes((layout.data_len() * block) as u64));
        let matrix = generator_matrix(&layout);
        group.bench_with_input(
            BenchmarkId::new("bitmatrix", code.name()),
            &stripe,
            |b, s| {
                b.iter_batched(
                    || s.clone(),
                    |mut s| encode_with_matrix(&layout, &matrix, &mut s),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

/// Serialize the encode measurements as one JSON trajectory point at the
/// repository root (`BENCH_encode.json`), including the compiled-vs-naive
/// speedup per code.
fn emit_trajectory_point(c: &Criterion) {
    let results = c.results();
    let gib = |median_ns: f64, bytes: u64| -> f64 {
        if median_ns <= 0.0 {
            return 0.0;
        }
        bytes as f64 / median_ns * 1e9 / (1024.0 * 1024.0 * 1024.0)
    };
    let mut entries = String::new();
    for r in results {
        let bytes = match r.throughput {
            Some(criterion::Throughput::Bytes(b)) => b,
            _ => 0,
        };
        entries.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"gib_per_s\": {:.4}}},\n",
            r.id,
            r.median_ns,
            gib(r.median_ns, bytes)
        ));
        // Clamped host: the comparison row is the sequential measurement
        // under the parallel id — the code paths are identical, and two
        // timings of the same path differ only by scheduler noise.
        if clamped_to_sequential() && r.id.starts_with("encode/compiled/") {
            let code = r.id.rsplit('/').next().expect("id has segments");
            entries.push_str(&format!(
                "    {{\"id\": \"encode/compiled_parallel4/{code}\", \"median_ns\": {:.1}, \
                 \"gib_per_s\": {:.4}, \"aliased_from\": \"encode/compiled/{code}\"}},\n",
                r.median_ns,
                gib(r.median_ns, bytes)
            ));
        }
    }
    let mut speedups = String::new();
    for &code in &EVALUATED_CODES {
        let find = |backend: &str| {
            results
                .iter()
                .find(|r| r.id == format!("encode/{}/{}", backend, code.name()))
                .map(|r| r.median_ns)
        };
        if let (Some(naive), Some(compiled)) = (find("naive"), find("compiled")) {
            if compiled > 0.0 {
                speedups.push_str(&format!(
                    "    {{\"code\": \"{}\", \"speedup\": {:.3}}},\n",
                    code.name(),
                    naive / compiled
                ));
            }
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"encode\",\n  \"p\": {P},\n  \"block_bytes\": {},\n  \
         \"host_parallelism\": {},\n  \"parallel4_clamped_to_sequential\": {},\n  \
         \"results\": [\n{}  ],\n  \"compiled_vs_naive\": [\n{}  ]\n}}\n",
        block_bytes(),
        minipool::host_parallelism(),
        clamped_to_sequential(),
        entries.trim_end_matches(",\n").to_string() + "\n",
        speedups.trim_end_matches(",\n").to_string() + "\n",
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_encode.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// `DCODE_BENCH_ASSERT=1`: the clamped pool-parallel path must not lose to
/// the sequential compiled replay on every code — i.e. at least one code
/// has `compiled_parallel4` throughput >= `compiled`.
fn assert_parallel_not_slower(c: &Criterion) {
    if std::env::var("DCODE_BENCH_ASSERT").map(|v| v == "1") != Ok(true) {
        return;
    }
    let results = c.results();
    let median = |id: String| results.iter().find(|r| r.id == id).map(|r| r.median_ns);
    let ok = clamped_to_sequential()
        || EVALUATED_CODES.iter().any(|code| {
            let seq = median(format!("encode/compiled/{}", code.name()));
            let par = median(format!("encode/compiled_parallel4/{}", code.name()));
            matches!((seq, par), (Some(s), Some(p)) if p <= s)
        });
    assert!(
        ok,
        "compiled_parallel4 slower than compiled on every code — the \
         pool-parallel encode path regressed"
    );
    if clamped_to_sequential() {
        println!(
            "bench assert ok: host clamps 4 threads to sequential; \
             compiled_parallel4 is the compiled path by construction"
        );
    } else {
        println!("bench assert ok: compiled_parallel4 >= compiled on at least one code");
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_encode(&mut c);
    emit_trajectory_point(&c);
    assert_parallel_not_slower(&c);
}
