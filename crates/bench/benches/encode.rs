//! Criterion: full-stripe encode throughput for every code, all three
//! backends (sequential equations, crossbeam-parallel, GF(2) bit-matrix).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcode_baselines::registry::{build, CodeId, EVALUATED_CODES};
use dcode_codec::{encode, encode_parallel, encode_with_matrix, generator_matrix, Stripe};

const BLOCK: usize = 64 * 1024;
const P: usize = 13;

fn payload(len: usize) -> Vec<u8> {
    let mut x = 0x9E3779B97F4A7C15u64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    for &code in &EVALUATED_CODES {
        let layout = build(code, P).unwrap();
        let data = payload(layout.data_len() * BLOCK);
        let stripe = Stripe::from_data(&layout, BLOCK, &data);
        group.throughput(Throughput::Bytes((layout.data_len() * BLOCK) as u64));
        group.bench_with_input(
            BenchmarkId::new("sequential", code.name()),
            &stripe,
            |b, s| {
                b.iter_batched(
                    || s.clone(),
                    |mut s| encode(&layout, &mut s),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel4", code.name()),
            &stripe,
            |b, s| {
                b.iter_batched(
                    || s.clone(),
                    |mut s| encode_parallel(&layout, &mut s, 4),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        let matrix = generator_matrix(&layout);
        group.bench_with_input(
            BenchmarkId::new("bitmatrix", code.name()),
            &stripe,
            |b, s| {
                b.iter_batched(
                    || s.clone(),
                    |mut s| encode_with_matrix(&layout, &matrix, &mut s),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
    let _ = CodeId::DCode;
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
