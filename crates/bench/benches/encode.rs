//! Criterion: full-stripe encode throughput for every code, all backends —
//! the naive equation interpreter, the compiled [`XorProgram`] schedule
//! (sequential and parallel), and the GF(2) bit-matrix — plus a
//! `BENCH_encode.json` trajectory point comparing naive vs compiled.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use dcode_baselines::registry::{build, CodeId, EVALUATED_CODES};
use dcode_codec::schedule::XorProgram;
use dcode_codec::{encode_naive, encode_with_matrix, generator_matrix, Stripe};
use std::io::Write;

const BLOCK: usize = 64 * 1024;
const P: usize = 13;

fn payload(len: usize) -> Vec<u8> {
    let mut x = 0x9E3779B97F4A7C15u64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    for &code in &EVALUATED_CODES {
        let layout = build(code, P).unwrap();
        let data = payload(layout.data_len() * BLOCK);
        let stripe = Stripe::from_data(&layout, BLOCK, &data);
        let program = XorProgram::compile_encode(&layout);
        group.throughput(Throughput::Bytes((layout.data_len() * BLOCK) as u64));
        group.bench_with_input(BenchmarkId::new("naive", code.name()), &stripe, |b, s| {
            b.iter_batched(
                || s.clone(),
                |mut s| encode_naive(&layout, &mut s),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(
            BenchmarkId::new("compiled", code.name()),
            &stripe,
            |b, s| {
                b.iter_batched(
                    || s.clone(),
                    |mut s| program.run(&mut s),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_parallel4", code.name()),
            &stripe,
            |b, s| {
                b.iter_batched(
                    || s.clone(),
                    |mut s| program.run_parallel(&mut s, 4),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        let matrix = generator_matrix(&layout);
        group.bench_with_input(
            BenchmarkId::new("bitmatrix", code.name()),
            &stripe,
            |b, s| {
                b.iter_batched(
                    || s.clone(),
                    |mut s| encode_with_matrix(&layout, &matrix, &mut s),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
    let _ = CodeId::DCode;
}

criterion_group!(benches, bench_encode);

/// Serialize the encode measurements as one JSON trajectory point at the
/// repository root (`BENCH_encode.json`), including the compiled-vs-naive
/// speedup per code.
fn emit_trajectory_point(c: &Criterion) {
    let results = c.results();
    let gib = |median_ns: f64, bytes: u64| -> f64 {
        if median_ns <= 0.0 {
            return 0.0;
        }
        bytes as f64 / median_ns * 1e9 / (1024.0 * 1024.0 * 1024.0)
    };
    let mut entries = String::new();
    for r in results {
        let bytes = match r.throughput {
            Some(criterion::Throughput::Bytes(b)) => b,
            _ => 0,
        };
        entries.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"gib_per_s\": {:.4}}},\n",
            r.id,
            r.median_ns,
            gib(r.median_ns, bytes)
        ));
    }
    let mut speedups = String::new();
    for &code in &EVALUATED_CODES {
        let find = |backend: &str| {
            results
                .iter()
                .find(|r| r.id == format!("encode/{}/{}", backend, code.name()))
                .map(|r| r.median_ns)
        };
        if let (Some(naive), Some(compiled)) = (find("naive"), find("compiled")) {
            if compiled > 0.0 {
                speedups.push_str(&format!(
                    "    {{\"code\": \"{}\", \"speedup\": {:.3}}},\n",
                    code.name(),
                    naive / compiled
                ));
            }
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"encode\",\n  \"p\": {P},\n  \"block_bytes\": {BLOCK},\n  \
         \"results\": [\n{}  ],\n  \"compiled_vs_naive\": [\n{}  ]\n}}\n",
        entries.trim_end_matches(",\n").to_string() + "\n",
        speedups.trim_end_matches(",\n").to_string() + "\n",
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_encode.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    emit_trajectory_point(&c);
}
