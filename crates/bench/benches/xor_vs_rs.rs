//! Criterion: XOR array codes vs Reed–Solomon P+Q — the paper's implicit
//! computational premise, measured. Encodes the same amount of user data
//! (one D-Code stripe's worth) through D-Code's XOR equations and through
//! GF(2⁸) P+Q, and decodes a comparable double loss through both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcode_codec::rs::{Erasure, RsRaid6};
use dcode_codec::{apply_plan, encode, Stripe};
use dcode_core::dcode::dcode;
use dcode_core::decoder::plan_column_recovery;

const BLOCK: usize = 64 * 1024;
const P: usize = 13;

fn payload_block(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 30) as u8
        })
        .collect()
}

fn bench_xor_vs_rs(c: &mut Criterion) {
    let layout = dcode(P).unwrap();
    let data_bytes = layout.data_len() * BLOCK;

    // Reed–Solomon group carrying the same user data with the same number
    // of data "disks"... P+Q over k = P−2 data blocks per stripe-row worth,
    // scaled so total data matches: use k = 11 blocks of equal size.
    let k = P - 2;
    let rs_block = data_bytes / k;
    let rs = RsRaid6::new(k, rs_block);
    let rs_data: Vec<Vec<u8>> = (0..k).map(|i| payload_block(i as u64, rs_block)).collect();

    let mut group = c.benchmark_group("xor_vs_rs");
    group.throughput(Throughput::Bytes(data_bytes as u64));

    let stripe = {
        let payload = payload_block(99, data_bytes);
        Stripe::from_data(&layout, BLOCK, &payload)
    };
    group.bench_function(BenchmarkId::new("encode", "D-Code"), |b| {
        b.iter_batched(
            || stripe.clone(),
            |mut s| encode(&layout, &mut s),
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function(BenchmarkId::new("encode", "RS-P+Q"), |b| {
        b.iter(|| rs.encode(&rs_data));
    });

    // Decode a double data loss.
    let mut encoded = stripe.clone();
    encode(&layout, &mut encoded);
    let plan = plan_column_recovery(&layout, &[0, 1]).unwrap();
    group.bench_function(BenchmarkId::new("decode_two_lost", "D-Code"), |b| {
        b.iter_batched(
            || {
                let mut s = encoded.clone();
                s.erase_columns(&[0, 1]);
                s
            },
            |mut s| apply_plan(&mut s, &plan),
            criterion::BatchSize::LargeInput,
        );
    });
    let (p_blk, q_blk) = rs.encode(&rs_data);
    group.bench_function(BenchmarkId::new("decode_two_lost", "RS-P+Q"), |b| {
        b.iter_batched(
            || {
                let mut d = rs_data.clone();
                d[0].fill(0);
                d[1].fill(0);
                (d, p_blk.clone(), q_blk.clone())
            },
            |(mut d, mut pp, mut qq)| rs.decode(&mut d, &mut pp, &mut qq, Erasure::TwoData(0, 1)),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_xor_vs_rs);
criterion_main!(benches);
