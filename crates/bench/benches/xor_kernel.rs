//! Criterion: the raw XOR kernels underlying every encode/decode path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcode_codec::xor::{xor_into, xor_many_into, xor_many_into_unrolled};

fn bench_xor(c: &mut Criterion) {
    let mut group = c.benchmark_group("xor_kernel");
    for size in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        let src: Vec<u8> = (0..size).map(|i| (i * 37) as u8).collect();
        let mut dst: Vec<u8> = (0..size).map(|i| (i * 11) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("xor_into", size), &size, |b, _| {
            b.iter(|| xor_into(&mut dst, &src));
        });

        let sources: Vec<Vec<u8>> = (0..11)
            .map(|k| (0..size).map(|i| ((i + k) * 13) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = sources.iter().map(std::vec::Vec::as_slice).collect();
        group.bench_with_input(BenchmarkId::new("xor_many_11", size), &size, |b, _| {
            b.iter(|| xor_many_into(&mut dst, &refs));
        });
        group.bench_with_input(
            BenchmarkId::new("xor_many_11_unrolled", size),
            &size,
            |b, _| b.iter(|| xor_many_into_unrolled(&mut dst, &refs)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_xor);
criterion_main!(benches);
