//! Criterion: the raw XOR kernels underlying every encode/decode path,
//! plus the tile-size sweep that justifies `dcode_codec::xor::TILE_BYTES`.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use dcode_codec::xor::{
    xor_into, xor_many_into, xor_many_into_tiled, xor_many_into_unrolled, TILE_BYTES,
};

fn bench_xor(c: &mut Criterion) {
    let mut group = c.benchmark_group("xor_kernel");
    for size in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        let src: Vec<u8> = (0..size).map(|i| (i * 37) as u8).collect();
        let mut dst: Vec<u8> = (0..size).map(|i| (i * 11) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("xor_into", size), &size, |b, _| {
            b.iter(|| xor_into(&mut dst, &src));
        });

        let sources: Vec<Vec<u8>> = (0..11)
            .map(|k| (0..size).map(|i| ((i + k) * 13) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = sources.iter().map(std::vec::Vec::as_slice).collect();
        group.bench_with_input(BenchmarkId::new("xor_many_11", size), &size, |b, _| {
            b.iter(|| xor_many_into(&mut dst, &refs));
        });
        group.bench_with_input(
            BenchmarkId::new("xor_many_11_unrolled", size),
            &size,
            |b, _| b.iter(|| xor_many_into_unrolled(&mut dst, &refs)),
        );
    }
    group.finish();
}

/// Sweep the gather tile size over a many-source fold too large for L2, to
/// pick (and keep honest) the compiled-in `TILE_BYTES`. Prints the winner;
/// if it is consistently not `TILE_BYTES`, the constant should move.
fn bench_tile_sweep(c: &mut Criterion) {
    const LEN: usize = 1024 * 1024;
    const N_SOURCES: usize = 11;
    let sources: Vec<Vec<u8>> = (0..N_SOURCES)
        .map(|k| (0..LEN).map(|i| ((i * 29 + k * 7) % 251) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = sources.iter().map(std::vec::Vec::as_slice).collect();
    let mut dst = vec![0u8; LEN];
    let tiles: [usize; 6] = [
        4 * 1024,
        8 * 1024,
        16 * 1024,
        32 * 1024,
        64 * 1024,
        128 * 1024,
    ];
    {
        let mut group = c.benchmark_group("tile_sweep");
        group.throughput(Throughput::Bytes(LEN as u64));
        for &tile in &tiles {
            group.bench_with_input(
                BenchmarkId::new("xor_many_11_tiled", tile),
                &tile,
                |b, &t| b.iter(|| xor_many_into_tiled(&mut dst, &refs, t)),
            );
        }
        group.finish();
    }
    let best = tiles
        .iter()
        .filter_map(|&t| {
            c.results()
                .iter()
                .find(|r| r.id == format!("tile_sweep/xor_many_11_tiled/{t}"))
                .map(|r| (t, r.median_ns))
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN medians"));
    if let Some((tile, ns)) = best {
        let marker = if tile == TILE_BYTES {
            "(= TILE_BYTES)"
        } else {
            ""
        };
        println!(
            "tile sweep best: {} KiB at {:.0} ns/iter {marker} — compiled-in TILE_BYTES = {} KiB",
            tile / 1024,
            ns,
            TILE_BYTES / 1024
        );
    }
}

criterion_group!(benches, bench_xor, bench_tile_sweep);

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
}
