//! Minimal fixed-width table printer for the figure binaries.

/// A right-aligned text table with a header row.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["code", "LF"]);
        t.row(vec!["D-Code".into(), "1.01".into()]);
        t.row(vec!["RDP".into(), "30".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("D-Code"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
