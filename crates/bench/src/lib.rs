//! # dcode-bench
//!
//! Shared infrastructure for the figure-regeneration binaries (`fig1` …
//! `fig7`, `features_table`, `recovery_savings`) and the Criterion
//! micro-benchmarks. Each binary prints the corresponding paper figure's
//! series as a table and writes CSV under `target/figures/`.

use std::fs;
use std::path::PathBuf;

pub mod plot;
pub mod table;

/// Primes the paper evaluates.
pub const PRIMES: [usize; 4] = [5, 7, 11, 13];

/// Default RNG seed for figure binaries; override with `--seed N`.
pub const DEFAULT_SEED: u64 = 20150525; // IPDPS'15 conference date

/// Parse `--seed N` from argv, defaulting to [`DEFAULT_SEED`].
pub fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Where figure CSVs land.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Write one CSV file into `target/figures/`, returning its path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = figures_dir().join(name);
    let mut out = String::with_capacity(rows.len() * 32 + header.len() + 1);
    out.push_str(header);
    out.push('\n');
    for row in rows {
        out.push_str(row);
        out.push('\n');
    }
    fs::write(&path, out).expect("write figure CSV");
    path
}

pub mod prelude {
    //! Convenience re-exports for the figure binaries.
    pub use crate::plot::{BarChart, Series};
    pub use crate::table::Table;
    pub use crate::{figures_dir, seed_from_args, write_csv, DEFAULT_SEED, PRIMES};
    pub use dcode_baselines::registry::{build, CodeId, EVALUATED_CODES};
}
