//! Figure 1 — the motivating examples: degraded reads and partial-stripe
//! writes in RDP and X-Code at p = 7, annotated with the elements each
//! operation actually touches (the paper's stars = requested/written,
//! rounds = extra reads/writes).

use dcode_bench::prelude::*;
use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use dcode_core::render::render_footprint;
use dcode_iosim::access::plan_degraded_segment;

fn show_degraded(layout: &CodeLayout, start: usize, len: usize, failed: usize) {
    let plan = plan_degraded_segment(layout, start, len, failed);
    println!(
        "\n{} (p={}): degraded read of {len} continuous elements starting at logical {start}, disk {failed} failed",
        layout.name(),
        layout.prime()
    );
    let requested: Vec<Cell> = (start..start + len)
        .map(|i| layout.logical_to_cell(i))
        .collect();
    let extra: Vec<Cell> = plan.extra_reads.iter().copied().collect();
    print!(
        "{}",
        render_footprint(layout, &requested, &extra, &[failed])
    );
    println!("  requested (*): {}", cells(&requested));
    println!("  lost on failed disk (x): {}", cells(&plan.lost));
    println!(
        "  extra reads (o): {} -> {} elements",
        cells(&extra),
        extra.len()
    );
    println!("  total disk reads: {}", plan.total_reads());
}

fn show_write(layout: &CodeLayout, start: usize, len: usize) {
    let written: Vec<Cell> = (start..start + len)
        .map(|i| layout.logical_to_cell(i))
        .collect();
    let parities: Vec<Cell> = layout.update_closure(&written).into_iter().collect();
    println!(
        "\n{} (p={}): partial-stripe write of {len} continuous elements starting at logical {start}",
        layout.name(),
        layout.prime()
    );
    print!("{}", render_footprint(layout, &written, &parities, &[]));
    println!("  written (*): {}", cells(&written));
    println!(
        "  parity read/writes (o): {} -> {} elements",
        cells(&parities),
        parities.len()
    );
    println!(
        "  total element I/Os (read-modify-write): {}",
        2 * (written.len() + parities.len())
    );
}

fn cells(cs: &[Cell]) -> String {
    cs.iter()
        .map(std::string::ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let rdp = build(CodeId::Rdp, 7).unwrap();
    let xcode = build(CodeId::XCode, 7).unwrap();
    let dcode = build(CodeId::DCode, 7).unwrap();

    println!("=== Figure 1: why horizontal parities matter ===");
    // (a)/(c): a 4-element degraded read. RDP's row parity covers the run;
    // X-Code's diagonals do not.
    show_degraded(&rdp, 7, 4, 1);
    show_degraded(&xcode, 7, 4, 1);
    show_degraded(&dcode, 7, 4, 1);

    // (b)/(d): a 4-element partial-stripe write.
    show_write(&rdp, 7, 4);
    show_write(&xcode, 7, 4);
    show_write(&dcode, 7, 4);

    println!(
        "\nTakeaway: continuous elements share RDP/D-Code horizontal parities but \
         not X-Code diagonals, so X-Code pays roughly one extra parity element \
         per written element, and its degraded reads pull in whole diagonals."
    );
}
