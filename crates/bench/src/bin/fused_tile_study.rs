//! Tile-size sweep for the fused bulk executor, at the same shape the
//! `parallel` bench measures (p = 13, 64 KiB blocks, 16-stripe batches):
//! for every registry code, time sequential per-stripe replay (the
//! pre-fusion bulk path) and the fused tile-major replay across a sweep
//! of tile sizes, printing GiB/s per point. This is the measurement
//! behind the calibration probe's candidate set
//! ([`dcode_codec::tile::TILE_CANDIDATES`]) and behind the tile the
//! committed `BENCH_parallel.json` was generated with — rerun it when
//! moving to a new host.
//!
//! Usage: `fused_tile_study [p] [block_bytes] [batch]`

use dcode_baselines::registry::{build, EVALUATED_CODES};
use dcode_codec::fused::FusedProgram;
use dcode_codec::{Stripe, XorProgram};
use std::time::Instant;

const TILES: [usize; 6] = [
    4 * 1024,
    8 * 1024,
    16 * 1024,
    32 * 1024,
    64 * 1024,
    128 * 1024,
];
const REPS: usize = 5;

fn payload(len: usize) -> Vec<u8> {
    let mut x = 0x9E3779B97F4A7C15u64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

fn gib_per_s(bytes: usize, elapsed_ns: u128) -> f64 {
    bytes as f64 / elapsed_ns as f64 * 1e9 / (1024.0 * 1024.0 * 1024.0)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(13);
    let block: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(64 * 1024);
    let batch: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);

    println!("fused tile sweep: p={p} block={block} batch={batch} reps={REPS}");
    println!(
        "{:<10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "code", "unfused", "4K", "8K", "16K", "32K", "64K", "128K"
    );
    for &code in &EVALUATED_CODES {
        let layout = build(code, p).unwrap();
        let program = XorProgram::compile_encode(&layout);
        let data = payload(layout.data_len() * block);
        let stripe = Stripe::from_data(&layout, block, &data);
        let batch_stripes: Vec<Stripe> = (0..batch).map(|_| stripe.clone()).collect();
        let bytes = layout.data_len() * block * batch;

        // Best-of-REPS sequential per-stripe replay (the pre-fusion path),
        // in place: encode overwrites only parity, so re-running on the
        // same batch is idempotent and measures the steady-state encode
        // rather than the cache eviction a fresh 146 MB clone causes.
        let mut ss = batch_stripes.clone();
        let mut unfused_ns = u128::MAX;
        for _ in 0..REPS {
            let t0 = Instant::now();
            for s in &mut ss {
                program.run(s);
            }
            unfused_ns = unfused_ns.min(t0.elapsed().as_nanos());
        }

        let fused = FusedProgram::fuse(&program, batch);
        let mut row = format!("{:<10} {:>10.3}", code.name(), gib_per_s(bytes, unfused_ns));
        for &tile in &TILES {
            let mut best = u128::MAX;
            for _ in 0..REPS {
                let t0 = Instant::now();
                fused.run_with_tile(&mut ss, tile);
                best = best.min(t0.elapsed().as_nanos());
            }
            row.push_str(&format!(" {:>9.3}", gib_per_s(bytes, best)));
        }
        println!("{row}");
    }
}
