//! Ablation: how the disk model's I/O-coalescing assumption changes
//! Figure 6's cross-code gaps (DESIGN.md §6).
//!
//! Under element-granular random I/O (the default, matching the paper's
//! measured per-spindle throughput) aggregate speed is proportional to busy
//! spindles, so D-Code's all-disks-contribute layout beats RDP by up to
//! ~25% at p=5. When adjacent elements coalesce into streaming runs,
//! positioning amortizes and the gap compresses — this binary quantifies
//! that sensitivity so readers can judge how much of Figure 6 depends on
//! the access-granularity assumption.

use dcode_bench::prelude::*;
use dcode_disksim::experiment::{normal_read_speed, ExperimentParams};
use dcode_disksim::model::{Coalescing, DiskModel};

fn main() {
    let seed = seed_from_args();
    let mut csv_rows = Vec::new();
    for (label, coalescing) in [
        (
            "element-granular random I/O (paper-calibrated)",
            Coalescing::None,
        ),
        ("coalesced runs, 0.8 ms settle", Coalescing::Settle(0.8)),
    ] {
        println!("\n=== {label} ===");
        let params = ExperimentParams {
            model: DiskModel {
                coalescing,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut table = Table::new(&["code", "p=5", "p=7", "p=11", "p=13"]);
        let mut dcode_speed = [0f64; 4];
        let mut rows = Vec::new();
        for &code in &EVALUATED_CODES {
            let mut speeds = Vec::new();
            for (pi, &p) in PRIMES.iter().enumerate() {
                let layout = build(code, p).unwrap();
                let s = normal_read_speed(&layout, params, seed ^ p as u64);
                if code == CodeId::DCode {
                    dcode_speed[pi] = s.mb_s;
                }
                csv_rows.push(format!("{label},{},{},{:.3}", code.name(), p, s.mb_s));
                speeds.push(s.mb_s);
            }
            rows.push((code, speeds));
        }
        for (code, speeds) in rows {
            let mut cells = vec![code.name().to_string()];
            for (pi, &s) in speeds.iter().enumerate() {
                let rel = 100.0 * (s - dcode_speed[pi]) / dcode_speed[pi];
                cells.push(format!("{s:.1} ({rel:+.1}%)"));
            }
            table.row(cells);
        }
        table.print();
    }
    let path = write_csv("ablation_coalescing.csv", "model,code,p,mb_s", &csv_rows);
    println!("\nCSV written to {}", path.display());
}
