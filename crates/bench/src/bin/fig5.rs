//! Figure 5 — total I/O cost for the five codes under the three workloads,
//! p ∈ {5, 7, 11, 13}.
//!
//! Paper reference points: identical cost for all codes under read-only;
//! under read-intensive and mixed workloads HDP and X-Code cost much more
//! (at p=13, D-Code is 16.0%/15.3% below HDP/X-Code read-intensive and
//! 23.1%/22.2% below under mixed), while RDP and H-Code end up at most
//! 3.4% below D-Code thanks to their extra disk.

use dcode_bench::prelude::*;
use dcode_iosim::sim::run_workload;
use dcode_iosim::workload::{generate, WorkloadKind, WorkloadParams};

fn main() {
    let seed = seed_from_args();
    let mut csv_rows = Vec::new();
    for (w_idx, &workload) in WorkloadKind::ALL.iter().enumerate() {
        println!(
            "\nFigure 5({}): {} Workload",
            ['a', 'b', 'c'][w_idx],
            workload.name()
        );
        let mut table = Table::new(&["code", "p=5", "p=7", "p=11", "p=13"]);
        let mut dcode_costs = [0u64; 4];
        let mut rows_buf: Vec<(CodeId, Vec<u64>)> = Vec::new();
        for &code in &EVALUATED_CODES {
            let mut costs = Vec::new();
            for (pi, &p) in PRIMES.iter().enumerate() {
                let layout = build(code, p).expect("paper codes build for paper primes");
                let ops = generate(
                    workload,
                    layout.data_len(),
                    WorkloadParams::default(),
                    seed ^ (p as u64) << 8 ^ w_idx as u64,
                );
                let res = run_workload(&layout, &ops);
                if code == CodeId::DCode {
                    dcode_costs[pi] = res.cost();
                }
                csv_rows.push(format!(
                    "{},{},{},{}",
                    workload.name(),
                    code.name(),
                    p,
                    res.cost()
                ));
                costs.push(res.cost());
            }
            rows_buf.push((code, costs));
        }
        let mut chart_series = Vec::new();
        for (code, costs) in rows_buf {
            let mut cells = vec![code.name().to_string()];
            for (pi, &c) in costs.iter().enumerate() {
                let rel = if dcode_costs[pi] > 0 {
                    100.0 * (c as f64 - dcode_costs[pi] as f64) / dcode_costs[pi] as f64
                } else {
                    0.0
                };
                cells.push(format!("{c} ({rel:+.1}%)"));
            }
            chart_series.push(Series {
                name: code.name().to_string(),
                values: costs.iter().map(|&c| c as f64).collect(),
            });
            table.row(cells);
        }
        table.print();
        println!("(percentages are relative to D-Code)");
        let part = ['a', 'b', 'c'][w_idx];
        let chart = BarChart {
            title: format!("Figure 5({part}): I/O cost, {} Workload", workload.name()),
            y_label: "total I/O cost (element accesses)".into(),
            x_labels: PRIMES.iter().map(|p| format!("p={p}")).collect(),
            series: chart_series,
            y_cap: None,
        };
        let svg = chart.save(&format!("fig5{part}_io_cost"));
        println!("SVG written to {}", svg.display());
    }
    let path = write_csv("fig5_io_cost.csv", "workload,code,p,cost", &csv_rows);
    println!("\nCSV written to {}", path.display());
}
