//! Section II study: why RAID-5-style stripe rotation cannot substitute for
//! a balanced code.
//!
//! The paper: "some global load balancing methods such as rotating the
//! mappings from logic disks to physical disks stripe by stripe may
//! alleviate the unbalanced I/O in some level, but they cannot balance the
//! I/O accesses on the same stripe … due to the fact that each stripe has
//! different access frequencies." This binary measures the load-balancing
//! factor of RDP and D-Code, with and without rotation, as stripe
//! popularity skews from uniform to a single hot stripe.

use dcode_array::loadstudy::{lf, physical_loads, StripeSkew};
use dcode_array::rotation::RotationScheme;
use dcode_bench::prelude::*;
use dcode_iosim::sim::run_workload;
use dcode_iosim::workload::{generate, WorkloadKind, WorkloadParams};

fn main() {
    let seed = seed_from_args();
    let p = 11;
    let n_stripes = 44; // multiple of every disk count involved
    let skews = [
        ("uniform", StripeSkew::Uniform),
        ("zipf 1.0", StripeSkew::Zipf(1.0)),
        ("zipf 2.0", StripeSkew::Zipf(2.0)),
        ("one hot stripe", StripeSkew::SingleHot),
    ];

    let mut csv_rows = Vec::new();
    for &code in &[CodeId::Rdp, CodeId::HCode, CodeId::DCode] {
        let layout = build(code, p).unwrap();
        // Per-logical-column load of a mixed workload on one stripe.
        let ops = generate(
            WorkloadKind::Mixed,
            layout.data_len(),
            WorkloadParams::default(),
            seed,
        );
        let per_col: Vec<f64> = run_workload(&layout, &ops)
            .accesses
            .per_disk
            .iter()
            .map(|&x| x as f64)
            .collect();

        println!(
            "\n{} (p={p}, mixed workload): LF of the physical disks",
            code.name()
        );
        let mut table = Table::new(&["stripe popularity", "no rotation", "per-stripe rotation"]);
        for (name, skew) in skews {
            let unrot = lf(&physical_loads(
                &layout,
                &per_col,
                RotationScheme::None,
                n_stripes,
                skew,
            ));
            let rot = lf(&physical_loads(
                &layout,
                &per_col,
                RotationScheme::PerStripe,
                n_stripes,
                skew,
            ));
            let fmt = |v: f64| {
                if v.is_finite() {
                    format!("{v:.2}")
                } else {
                    "inf".to_string()
                }
            };
            table.row(vec![name.to_string(), fmt(unrot), fmt(rot)]);
            csv_rows.push(format!("{},{name},{:.4},{:.4}", code.name(), unrot, rot));
        }
        table.print();
    }
    println!(
        "\nRotation rescues unbalanced codes only under uniform stripe access; \
         as popularity skews toward a hot stripe it converges back to the \
         unrotated imbalance. A balanced code (D-Code) needs no rescue."
    );
    let path = write_csv(
        "rotation_study.csv",
        "code,skew,lf_unrotated,lf_rotated",
        &csv_rows,
    );
    println!("CSV written to {}", path.display());
}
