//! Figure 3 — recovery from the concurrent failure of disks 2 and 3 in a
//! 7-disk D-Code, printing the recovery chains the peeling decoder walks.
//! The paper's example sequence starts from P(5,1) and P(6,4) and recovers
//! {D(1,3) → D(2,2) → D(2,3) → …} and {D(4,2) → D(4,3) → …}.

use dcode_core::dcode::dcode;
use dcode_core::decoder::plan_column_recovery;

fn main() {
    let code = dcode(7).unwrap();
    let plan = plan_column_recovery(&code, &[2, 3]).unwrap();

    println!("=== Figure 3: recovery from disks 2 and 3 failing concurrently ===\n");
    println!("erased elements: {}", plan.erased.len());
    println!("recovery steps (in execution order):\n");
    for (i, step) in plan.steps.iter().enumerate() {
        let eq = code.equation(step.eqs[0]);
        println!(
            "  {:>2}. recover {} via {} parity {} ({} XOR sources)",
            i + 1,
            step.target,
            eq.kind,
            eq.parity,
            step.sources.len()
        );
    }
    println!("\ntotal XOR operations: {}", plan.xor_count());
    println!(
        "surviving elements read: {} of {}",
        plan.surviving_reads().len(),
        code.grid().len() - plan.erased.len()
    );
}
