//! Extension study: per-request latency distributions at queue depth 1 —
//! the tail-latency complement to Figures 6–7's saturated throughput.
//! Degraded-mode reconstruction inflates the tail most for codes whose
//! extra reads are scattered (X-Code); D-Code's shared horizontal parities
//! keep p99 close to the healthy case.

use dcode_bench::prelude::*;
use dcode_disksim::experiment::ExperimentParams;
use dcode_disksim::latency::{degraded_read_latency, normal_read_latency};

fn main() {
    let seed = seed_from_args();
    let p = 11;
    let params = ExperimentParams::default();
    let mut csv_rows = Vec::new();

    for degraded in [false, true] {
        println!(
            "\n=== {} read latency at p = {p} (ms, queue depth 1) ===",
            if degraded {
                "Degraded-mode"
            } else {
                "Normal-mode"
            }
        );
        let mut table = Table::new(&["code", "mean", "p50", "p95", "p99", "max"]);
        for &code in &EVALUATED_CODES {
            let layout = build(code, p).unwrap();
            let s = if degraded {
                degraded_read_latency(&layout, params, seed)
            } else {
                normal_read_latency(&layout, params, seed)
            };
            table.row(vec![
                code.name().to_string(),
                format!("{:.2}", s.mean_ms),
                format!("{:.2}", s.p50_ms),
                format!("{:.2}", s.p95_ms),
                format!("{:.2}", s.p99_ms),
                format!("{:.2}", s.max_ms),
            ]);
            csv_rows.push(format!(
                "{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                if degraded { "degraded" } else { "normal" },
                code.name(),
                p,
                s.mean_ms,
                s.p50_ms,
                s.p95_ms,
                s.p99_ms,
                s.max_ms
            ));
        }
        table.print();
    }
    let path = write_csv(
        "latency_study.csv",
        "mode,code,p,mean_ms,p50_ms,p95_ms,p99_ms,max_ms",
        &csv_rows,
    );
    println!("\nCSV written to {}", path.display());
}
