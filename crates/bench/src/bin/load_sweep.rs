//! Extension study: response time vs offered load (event-driven queueing).
//! The complement to Figure 6's saturated throughput: codes with idle
//! parity disks saturate their data spindles at lower offered load, so
//! their response-time knee arrives earlier than D-Code's.

use dcode_bench::prelude::*;
use dcode_disksim::experiment::ExperimentParams;
use dcode_disksim::queue::simulate_load;

fn main() {
    let seed = seed_from_args();
    let p = 11;
    let params = ExperimentParams::default();
    let rates = [10.0f64, 30.0, 50.0, 70.0, 90.0];
    let n_requests = 4000;
    let mut csv_rows = Vec::new();

    for (mode, failed) in [("normal", None), ("degraded (disk 0 down)", Some(0))] {
        println!("\n=== Mean response time (ms) vs offered load, p = {p}, {mode} ===");
        let mut header: Vec<String> = vec!["code".into()];
        header.extend(rates.iter().map(|r| format!("{r:.0}/s")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(&header_refs);
        for &code in &EVALUATED_CODES {
            let layout = build(code, p).unwrap();
            let mut cells = vec![code.name().to_string()];
            for &rate in &rates {
                let pt = simulate_load(&layout, params, rate, n_requests, failed, seed);
                cells.push(format!("{:.1}", pt.mean_response_ms));
                csv_rows.push(format!(
                    "{mode},{},{},{},{:.4},{:.4},{:.4}",
                    code.name(),
                    p,
                    rate,
                    pt.mean_response_ms,
                    pt.p95_response_ms,
                    pt.peak_utilization
                ));
            }
            table.row(cells);
        }
        table.print();
    }
    let path = write_csv(
        "load_sweep.csv",
        "mode,code,p,rate,mean_ms,p95_ms,peak_util",
        &csv_rows,
    );
    println!("\nCSV written to {}", path.display());
}
