//! Extension study: do the paper's p ≤ 13 trends continue at larger array
//! sizes? Runs the Figure 4/5 pipeline at p up to 29 (D-Code spans 29
//! disks there) using the parallel workload runner.

use dcode_bench::prelude::*;
use dcode_iosim::sim::run_workload_parallel;
use dcode_iosim::workload::{generate, WorkloadKind, WorkloadParams};

const BIG_PRIMES: [usize; 7] = [5, 7, 11, 13, 17, 23, 29];

fn main() {
    let seed = seed_from_args();
    let mut csv_rows = Vec::new();
    println!("=== Mixed-workload LF and I/O cost up to p = 29 ===");
    for &code in &EVALUATED_CODES {
        println!("\n{}:", code.name());
        let mut table = Table::new(&["p", "disks", "LF", "cost vs D-Code"]);
        for &p in &BIG_PRIMES {
            let layout = build(code, p).expect("all codes build at these primes");
            let ops = generate(
                WorkloadKind::Mixed,
                layout.data_len(),
                WorkloadParams {
                    n_ops: 1000,
                    ..Default::default()
                },
                seed ^ p as u64,
            );
            let res = run_workload_parallel(&layout, &ops, 4);
            let dlayout = build(CodeId::DCode, p).unwrap();
            let dops = generate(
                WorkloadKind::Mixed,
                dlayout.data_len(),
                WorkloadParams {
                    n_ops: 1000,
                    ..Default::default()
                },
                seed ^ p as u64,
            );
            let dcost = run_workload_parallel(&dlayout, &dops, 4).cost() as f64;
            let rel = 100.0 * (res.cost() as f64 - dcost) / dcost;
            let lf = if res.lf().is_finite() {
                format!("{:.2}", res.lf())
            } else {
                "inf".into()
            };
            table.row(vec![
                p.to_string(),
                layout.disks().to_string(),
                lf,
                format!("{rel:+.1}%"),
            ]);
            csv_rows.push(format!(
                "{},{},{},{:.4},{}",
                code.name(),
                p,
                layout.disks(),
                dcode_iosim::metrics::lf_display(res.lf()),
                res.cost()
            ));
        }
        table.print();
    }
    let path = write_csv("scalability_study.csv", "code,p,disks,lf,cost", &csv_rows);
    println!("\nCSV written to {}", path.display());
}
