//! Extension study: degraded-read cost under **two** concurrent disk
//! failures — beyond the paper's single-failure experiments, but the
//! scenario RAID-6 exists for. For every code and prime, measures the
//! average element reads per 8-element request, over every failure pair,
//! in normal / single-degraded / double-degraded modes.

use dcode_bench::prelude::*;
use dcode_iosim::access::{
    degraded_read_accesses, double_degraded_read_accesses, normal_read_accesses,
};

fn main() {
    let len = 8usize;
    let mut csv_rows = Vec::new();
    for &p in &PRIMES {
        println!("\n=== Reads per {len}-element request at p = {p} (avg over starts & failure cases) ===");
        let mut table = Table::new(&[
            "code",
            "normal",
            "1 failure",
            "2 failures",
            "2-fail overhead",
        ]);
        for &code in &EVALUATED_CODES {
            let layout = build(code, p).expect("codes build");
            let data_len = layout.data_len();
            let starts: Vec<usize> = (0..data_len).collect();

            let normal: f64 = starts
                .iter()
                .map(|&s| normal_read_accesses(&layout, s, len).total() as f64)
                .sum::<f64>()
                / starts.len() as f64;

            let mut single = 0f64;
            let mut single_n = 0usize;
            for f in 0..layout.disks() {
                for &s in &starts {
                    single += degraded_read_accesses(&layout, s, len, f).total() as f64;
                    single_n += 1;
                }
            }
            single /= single_n as f64;

            let mut double = 0f64;
            let mut double_n = 0usize;
            for f1 in 0..layout.disks() {
                for f2 in f1 + 1..layout.disks() {
                    for &s in &starts {
                        double +=
                            double_degraded_read_accesses(&layout, s, len, [f1, f2]).total() as f64;
                        double_n += 1;
                    }
                }
            }
            double /= double_n as f64;

            table.row(vec![
                code.name().to_string(),
                format!("{normal:.2}"),
                format!("{single:.2}"),
                format!("{double:.2}"),
                format!("{:.2}x", double / normal),
            ]);
            csv_rows.push(format!(
                "{},{},{:.4},{:.4},{:.4}",
                code.name(),
                p,
                normal,
                single,
                double
            ));
        }
        table.print();
    }
    let path = write_csv(
        "double_failure_study.csv",
        "code,p,normal_reads,single_degraded_reads,double_degraded_reads",
        &csv_rows,
    );
    println!("\nCSV written to {}", path.display());
}
