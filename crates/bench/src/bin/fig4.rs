//! Figure 4 — load-balancing factor for the five codes under the three
//! workloads, p ∈ {5, 7, 11, 13}.
//!
//! Paper reference points: RDP badly balanced everywhere (∞ under
//! read-only); H-Code ∞ under read-only, LF ≈ 2.61/2.35/2.07/1.97 under
//! read-intensive, 1.38–1.63 under mixed; HDP, X-Code, D-Code all close
//! to 1 (1.03–1.07 under mixed).

use dcode_bench::prelude::*;
use dcode_iosim::metrics::lf_display;
use dcode_iosim::sim::run_workload;
use dcode_iosim::workload::{generate, WorkloadKind, WorkloadParams};

fn main() {
    let seed = seed_from_args();
    let mut csv_rows = Vec::new();
    for (w_idx, &workload) in WorkloadKind::ALL.iter().enumerate() {
        let part = ['a', 'b', 'c'][w_idx];
        println!("\nFigure 4({part}): {} Workload", workload.name());
        let mut table = Table::new(&["code", "p=5", "p=7", "p=11", "p=13"]);
        let mut chart_series = Vec::new();
        for &code in &EVALUATED_CODES {
            let mut cells = vec![code.name().to_string()];
            let mut values = Vec::new();
            for &p in &PRIMES {
                let layout = build(code, p).expect("paper codes build for paper primes");
                let ops = generate(
                    workload,
                    layout.data_len(),
                    WorkloadParams::default(),
                    seed ^ (p as u64) << 8 ^ w_idx as u64,
                );
                let res = run_workload(&layout, &ops);
                let lf = res.lf();
                cells.push(if lf.is_finite() {
                    format!("{lf:.2}")
                } else {
                    "inf".to_string()
                });
                values.push(lf);
                csv_rows.push(format!(
                    "{},{},{},{:.4}",
                    workload.name(),
                    code.name(),
                    p,
                    lf_display(lf)
                ));
            }
            chart_series.push(Series {
                name: code.name().to_string(),
                values,
            });
            table.row(cells);
        }
        table.print();
        let chart = BarChart {
            title: format!("Figure 4({part}): LF, {} Workload", workload.name()),
            y_label: "load balancing factor".into(),
            x_labels: PRIMES.iter().map(|p| format!("p={p}")).collect(),
            series: chart_series,
            // The paper caps the y axis at 30 to represent infinity; cap
            // per-panel for readability like its per-plot scales.
            y_cap: Some(if w_idx == 0 { 30.0 } else { 8.0 }),
        };
        let svg = chart.save(&format!("fig4{part}_load_balancing"));
        println!("SVG written to {}", svg.display());
    }
    let path = write_csv("fig4_load_balancing.csv", "workload,code,p,lf", &csv_rows);
    println!("\nCSV written to {}", path.display());
}
