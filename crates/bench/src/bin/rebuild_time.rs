//! Rebuild-window study: how the ~25% hybrid-recovery read reduction
//! (Section III-D) translates into whole-disk rebuild throughput on the
//! simulated array.

use dcode_baselines::registry::ALL_CODES;
use dcode_bench::prelude::*;
use dcode_disksim::model::DiskModel;
use dcode_disksim::rebuild::{average_rebuild, RebuildScheme};

fn main() {
    let model = DiskModel::default();
    let block = 64 * 1024;
    let mut csv_rows = Vec::new();
    for &p in &PRIMES {
        println!("\n=== Rebuild throughput at p = {p} (MB/s of rebuilt data) ===");
        let mut table = Table::new(&[
            "code",
            "conv reads",
            "opt reads",
            "conv MB/s",
            "opt MB/s",
            "speedup",
        ]);
        for &code in &ALL_CODES {
            let layout = build(code, p).expect("codes build");
            let c = average_rebuild(&layout, RebuildScheme::Conventional, model, block);
            let o = average_rebuild(&layout, RebuildScheme::Optimized, model, block);
            let speedup = o.rebuild_mb_s / c.rebuild_mb_s;
            table.row(vec![
                code.name().to_string(),
                c.reads_per_stripe.to_string(),
                o.reads_per_stripe.to_string(),
                format!("{:.1}", c.rebuild_mb_s),
                format!("{:.1}", o.rebuild_mb_s),
                format!("{speedup:.2}x"),
            ]);
            csv_rows.push(format!(
                "{},{},{},{},{:.3},{:.3}",
                code.name(),
                p,
                c.reads_per_stripe,
                o.reads_per_stripe,
                c.rebuild_mb_s,
                o.rebuild_mb_s
            ));
        }
        table.print();
    }
    let path = write_csv(
        "rebuild_time.csv",
        "code,p,conv_reads,opt_reads,conv_mb_s,opt_mb_s",
        &csv_rows,
    );
    println!("\nCSV written to {}", path.display());
}
