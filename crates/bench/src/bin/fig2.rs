//! Figure 2 — the D-Code encoding example with 7 disks: the horizontal
//! number-flags (a) and deployment letter-flags (b), rendered exactly as the
//! paper labels them.

use dcode_core::dcode::{dcode_procedural, deployment_walk, horizontal_walk};
use dcode_core::equation::EquationKind;
use dcode_core::render::{render_kind, render_kinds_map};

fn main() {
    let n = 7;
    // The procedural construction orders equations by walk group, so the
    // rendered number/letter flags match the paper's Figure 2 exactly.
    let code = dcode_procedural(n).unwrap();

    println!("=== Figure 2(a): horizontal encoding rules (number flags) ===\n");
    print!("{}", render_kind(&code, EquationKind::Horizontal, false));
    println!("\nhorizontal walk order: {:?}", &horizontal_walk(n)[..10]);

    println!("\n=== Figure 2(b): deployment encoding rules (letter flags) ===\n");
    print!("{}", render_kind(&code, EquationKind::Deployment, true));
    println!("\ndeployment walk order: {:?}", &deployment_walk(n)[..10]);

    println!("\n=== element kinds (D = data, H = horizontal, P = deployment) ===\n");
    print!("{}", render_kinds_map(&code));

    println!("\nWorked examples from the paper:");
    let p51 = code
        .equations()
        .iter()
        .find(|e| e.parity.row == 5 && e.parity.col == 1)
        .unwrap();
    println!("  {p51}");
    let p62 = code
        .equations()
        .iter()
        .find(|e| e.parity.row == 6 && e.parity.col == 2)
        .unwrap();
    println!("  {p62}");
}
