//! Extension study: partial-stripe *write* cost while one disk is failed.
//! A write hitting the failed disk must reconstruct the old value before
//! the parity delta can be computed; codes whose continuous elements share
//! parities reuse the write's own reads for that reconstruction.

use dcode_bench::prelude::*;
use dcode_iosim::access::{degraded_write_accesses, write_accesses};

fn main() {
    let len = 6usize;
    let mut csv_rows = Vec::new();
    for &p in &PRIMES {
        println!(
            "\n=== Element I/Os per {len}-element write at p = {p} (avg over starts / failure cases) ==="
        );
        let mut table = Table::new(&["code", "normal", "degraded", "overhead"]);
        for &code in &EVALUATED_CODES {
            let layout = build(code, p).expect("codes build");
            let starts: Vec<usize> = (0..layout.data_len()).collect();
            let normal: f64 = starts
                .iter()
                .map(|&s| write_accesses(&layout, s, len).total() as f64)
                .sum::<f64>()
                / starts.len() as f64;
            let mut degraded = 0f64;
            let mut n = 0usize;
            for f in 0..layout.disks() {
                for &s in &starts {
                    degraded += degraded_write_accesses(&layout, s, len, f).total() as f64;
                    n += 1;
                }
            }
            degraded /= n as f64;
            table.row(vec![
                code.name().to_string(),
                format!("{normal:.2}"),
                format!("{degraded:.2}"),
                format!("{:+.1}%", 100.0 * (degraded - normal) / normal),
            ]);
            csv_rows.push(format!(
                "{},{},{:.4},{:.4}",
                code.name(),
                p,
                normal,
                degraded
            ));
        }
        table.print();
    }
    let path = write_csv(
        "degraded_write_study.csv",
        "code,p,normal_write_ios,degraded_write_ios",
        &csv_rows,
    );
    println!("\nCSV written to {}", path.display());
}
