//! Section II-C quantified: how many distinct parity elements a run of L
//! continuous data elements touches, per code — the paper's "possibility
//! of continuous data elements sharing the common parities" as a table.
//! Lower = cheaper partial writes and degraded reads. The cascade column
//! includes parity-on-parity updates (RDP, HDP), which is what a write
//! actually pays.

use dcode_bench::prelude::*;
use dcode_core::analysis::{adjacent_sharing_probability, sharing_stats};

fn main() {
    let p = 11;
    let lens = [1usize, 2, 4, 8, 16];
    let mut csv_rows = Vec::new();

    println!("=== Adjacent-element parity sharing probability (p = {p}) ===\n");
    let mut table = Table::new(&["code", "P(share)"]);
    for &code in &EVALUATED_CODES {
        let layout = build(code, p).unwrap();
        let prob = adjacent_sharing_probability(&layout);
        table.row(vec![code.name().to_string(), format!("{prob:.3}")]);
    }
    table.print();

    println!(
        "\n=== Mean distinct parities touched by an L-element run (direct / with cascade) ===\n"
    );
    let mut header: Vec<String> = vec!["code".into()];
    header.extend(lens.iter().map(|l| format!("L={l}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for &code in &EVALUATED_CODES {
        let layout = build(code, p).unwrap();
        let mut cells = vec![code.name().to_string()];
        for &l in &lens {
            let l = l.min(layout.data_len());
            let s = sharing_stats(&layout, l);
            cells.push(format!(
                "{:.1}/{:.1}",
                s.avg_parities, s.avg_parities_with_cascade
            ));
            csv_rows.push(format!(
                "{},{},{},{:.4},{:.4},{}",
                code.name(),
                p,
                l,
                s.avg_parities,
                s.avg_parities_with_cascade,
                s.max_parities
            ));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\nD-Code's horizontal groups make long runs share parities like a\n\
         horizontal code, while X-Code pays ~2 fresh parities per element —\n\
         the mechanism behind Figures 1, 5, and 7."
    );
    let path = write_csv(
        "sharing_analysis.csv",
        "code,p,len,avg_parities,avg_with_cascade,max_parities",
        &csv_rows,
    );
    println!("\nCSV written to {}", path.display());
}
