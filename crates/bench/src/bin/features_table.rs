//! Section III-D feature table — the paper's complexity claims, measured
//! directly from every code's equation system:
//!
//! * storage efficiency (MDS-optimal data fraction),
//! * encoding XORs per data element (optimum `2 − 2/(n−2)`),
//! * decoding XORs per lost element (optimum `n − 3`),
//! * update complexity (optimum exactly 2).

use dcode_baselines::registry::ALL_CODES;
use dcode_bench::prelude::*;
use dcode_core::metrics::measure;

fn main() {
    let mut csv_rows = Vec::new();
    for &p in &PRIMES {
        println!("\n=== Feature comparison at p = {p} ===");
        let mut table = Table::new(&[
            "code",
            "disks",
            "data",
            "parity",
            "rate",
            "MDS-rate?",
            "enc XOR/el",
            "dec XOR/lost",
            "upd avg",
            "upd max",
        ]);
        for &code in &ALL_CODES {
            let layout = build(code, p).expect("codes build for paper primes");
            let m = measure(&layout);
            table.row(vec![
                m.name.clone(),
                m.disks.to_string(),
                m.data_elements.to_string(),
                m.parity_elements.to_string(),
                format!("{:.3}", m.storage_rate),
                if m.storage_optimal { "yes" } else { "NO" }.to_string(),
                format!("{:.3}", m.encode_xors_per_data_element),
                format!("{:.3}", m.decode_xors_per_lost_element),
                format!("{:.3}", m.avg_update_complexity),
                m.max_update_complexity.to_string(),
            ]);
            csv_rows.push(format!(
                "{},{},{},{},{:.4},{},{:.4},{:.4},{:.4},{}",
                m.name,
                p,
                m.data_elements,
                m.parity_elements,
                m.storage_rate,
                m.storage_optimal,
                m.encode_xors_per_data_element,
                m.decode_xors_per_lost_element,
                m.avg_update_complexity,
                m.max_update_complexity
            ));
        }
        table.print();
        let opt_enc = 2.0 - 2.0 / (p as f64 - 2.0);
        println!(
            "(optima for a {p}-disk vertical code: encode {opt_enc:.3} XOR/element, \
             decode {} XOR/lost element, update complexity 2)",
            p - 3
        );
    }
    let path = write_csv(
        "features.csv",
        "code,p,data,parity,rate,mds_optimal,enc_xor_per_el,dec_xor_per_lost,upd_avg,upd_max",
        &csv_rows,
    );
    println!("\nCSV written to {}", path.display());
}
