//! Collect everything under `target/figures/` into one self-contained HTML
//! report: every SVG chart inline, every CSV as a table. Run the figure
//! and study binaries first (or let this binary run the core four for you
//! with `--full`).

use dcode_bench::figures_dir;
use std::fmt::Write as _;
use std::process::Command;

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn csv_to_table(text: &str) -> String {
    let mut out = String::from("<table>");
    for (i, line) in text.lines().enumerate() {
        let tag = if i == 0 { "th" } else { "td" };
        let _ = write!(out, "<tr>");
        for cell in line.split(',') {
            let _ = write!(out, "<{tag}>{}</{tag}>", html_escape(cell));
        }
        let _ = write!(out, "</tr>");
    }
    out.push_str("</table>");
    out
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    if full {
        // Regenerate the headline figures so the report is fresh.
        for bin in [
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "sharing_analysis",
            "recovery_savings",
        ] {
            let status =
                Command::new(std::env::current_exe().unwrap().with_file_name(bin)).status();
            match status {
                Ok(s) if s.success() => println!("ran {bin}"),
                other => eprintln!("warning: could not run {bin}: {other:?}"),
            }
        }
    }

    let dir = figures_dir();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("target/figures exists")
        .filter_map(std::result::Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();

    let mut html = String::from(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
         <title>D-Code reproduction report</title><style>\
         body{font-family:sans-serif;max-width:900px;margin:2em auto;padding:0 1em}\
         table{border-collapse:collapse;margin:1em 0;font-size:13px}\
         td,th{border:1px solid #ccc;padding:3px 8px;text-align:right}\
         th{background:#f0f0f0}\
         h2{border-bottom:2px solid #4477aa;padding-bottom:4px;margin-top:2em}\
         details{margin:0.5em 0}\
         svg{max-width:100%;height:auto}\
         </style></head><body>\
         <h1>D-Code reproduction — figure & study report</h1>\
         <p>Generated from <code>target/figures/</code>. See EXPERIMENTS.md \
         for paper-vs-measured verdicts.</p>",
    );

    let svg_count = entries
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "svg"))
        .count();
    let csv_count = entries
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .count();

    for path in &entries {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        match path.extension().and_then(|e| e.to_str()) {
            Some("svg") => {
                let svg = std::fs::read_to_string(path).expect("readable SVG");
                let _ = write!(html, "<h2>{}</h2>{}", html_escape(&name), svg);
            }
            Some("csv") => {
                let csv = std::fs::read_to_string(path).expect("readable CSV");
                let _ = write!(
                    html,
                    "<details><summary><b>{}</b> ({} rows)</summary>{}</details>",
                    html_escape(&name),
                    csv.lines().count().saturating_sub(1),
                    csv_to_table(&csv)
                );
            }
            _ => {}
        }
    }
    html.push_str("</body></html>");

    let out = dir.join("report.html");
    std::fs::write(&out, html).expect("write report");
    println!(
        "report with {svg_count} charts and {csv_count} tables written to {}",
        out.display()
    );
}
