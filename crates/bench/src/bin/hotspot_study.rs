//! Extension study: the paper's Figures 4–5 under a *skewed* (Zipf)
//! trace instead of uniform tuples. Real workloads concentrate on hot
//! data; this study checks that D-Code's balance and cost advantages
//! survive hot-spot skew (they should — its parity placement is uniform
//! in the stripe, so no logical hot spot maps onto a parity bottleneck).

use dcode_bench::prelude::*;
use dcode_iosim::sim::run_workload;
use dcode_iosim::trace::{zipf_trace, ZipfTraceParams};

fn main() {
    let seed = seed_from_args();
    let p = 11;
    let mut csv_rows = Vec::new();
    for (label, skew) in [
        ("uniform (skew 0)", 0.0),
        ("zipf 1.2", 1.2),
        ("zipf 2.5", 2.5),
    ] {
        println!("\n=== Mixed Zipf trace, {label}, p = {p} ===");
        let mut table = Table::new(&["code", "LF", "I/O cost", "vs D-Code"]);
        let params = ZipfTraceParams {
            skew,
            read_fraction: 0.5,
            ..Default::default()
        };
        let dcode_layout = build(CodeId::DCode, p).unwrap();
        let dcode_cost = {
            let ops = zipf_trace(dcode_layout.data_len(), params, seed);
            run_workload(&dcode_layout, &ops).cost() as f64
        };
        for &code in &EVALUATED_CODES {
            let layout = build(code, p).unwrap();
            let ops = zipf_trace(layout.data_len(), params, seed);
            let res = run_workload(&layout, &ops);
            let lf = if res.lf().is_finite() {
                format!("{:.2}", res.lf())
            } else {
                "inf".into()
            };
            let rel = 100.0 * (res.cost() as f64 - dcode_cost) / dcode_cost;
            table.row(vec![
                code.name().to_string(),
                lf,
                res.cost().to_string(),
                format!("{rel:+.1}%"),
            ]);
            csv_rows.push(format!(
                "{label},{},{},{:.4},{}",
                code.name(),
                p,
                dcode_iosim::metrics::lf_display(res.lf()),
                res.cost()
            ));
        }
        table.print();
    }
    let path = write_csv("hotspot_study.csv", "skew,code,p,lf,cost", &csv_rows);
    println!("\nCSV written to {}", path.display());
}
