//! Extension study: read-modify-write vs reconstruct-write element I/Os as
//! the write length grows — the classic small-write trade-off, per code.
//! Codes whose continuous elements share parities (D-Code, RDP, H-Code)
//! keep RMW cheap for longer; diagonal-only codes (X-Code) hit the
//! reconstruct-write crossover earlier.

use dcode_bench::prelude::*;
use dcode_codec::reconstruct_write_ios;
use dcode_core::layout::CodeLayout;

fn rmw_ios(layout: &CodeLayout, start: usize, count: usize) -> usize {
    let cells: Vec<_> = (start..start + count)
        .map(|i| layout.logical_to_cell(i))
        .collect();
    2 * (count + layout.update_closure(&cells).len())
}

fn main() {
    let p = 11;
    let mut csv_rows = Vec::new();
    println!("=== Element I/Os per write of L continuous elements (p = {p}, start 0) ===\n");
    for &code in &EVALUATED_CODES {
        let layout = build(code, p).unwrap();
        let lens: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64]
            .into_iter()
            .filter(|&l| l <= layout.data_len())
            .collect();
        let mut table_header = vec!["L"];
        table_header.extend(["RMW", "reconstruct", "winner"]);
        println!(
            "{} ({} data elements per stripe):",
            code.name(),
            layout.data_len()
        );
        let mut table = Table::new(&table_header);
        let mut crossover: Option<usize> = None;
        for &l in &lens {
            let rmw = rmw_ios(&layout, 0, l);
            let rcw = reconstruct_write_ios(&layout, 0, l);
            if rcw < rmw && crossover.is_none() {
                crossover = Some(l);
            }
            table.row(vec![
                l.to_string(),
                rmw.to_string(),
                rcw.to_string(),
                if rmw <= rcw { "RMW" } else { "reconstruct" }.to_string(),
            ]);
            csv_rows.push(format!("{},{},{},{},{}", code.name(), p, l, rmw, rcw));
        }
        table.print();
        match crossover {
            Some(l) => println!("  → reconstruct-write wins from L = {l}\n"),
            None => println!("  → RMW wins at every tested length\n"),
        }
    }
    let path = write_csv(
        "write_policy.csv",
        "code,p,len,rmw_ios,reconstruct_ios",
        &csv_rows,
    );
    println!("CSV written to {}", path.display());
}
