//! Section III-D's single-failure recovery claim: the hybrid recovery
//! scheme (Xu et al.) reads ≈25% fewer elements than conventional recovery
//! for X-Code, and by Theorem 1 the same holds for D-Code.

use dcode_baselines::registry::ALL_CODES;
use dcode_bench::prelude::*;
use dcode_recovery::measure_savings;

fn main() {
    let mut csv_rows = Vec::new();
    println!("=== Single-disk recovery: conventional vs hybrid reads ===");
    println!("(conventional streams each equation independently; hybrid picks");
    println!(" equation families to overlap and reads each element once)\n");
    for &p in &PRIMES {
        println!("p = {p}:");
        let mut table = Table::new(&["code", "conventional", "optimized", "reduction"]);
        for &code in &ALL_CODES {
            let layout = build(code, p).expect("codes build");
            let s = measure_savings(&layout);
            table.row(vec![
                s.code.clone(),
                format!("{:.1}", s.conventional_reads),
                format!("{:.1}", s.optimized_reads),
                format!("{:.1}%", s.reduction_pct()),
            ]);
            csv_rows.push(format!(
                "{},{},{:.2},{:.2},{:.2}",
                s.code,
                p,
                s.conventional_reads,
                s.optimized_reads,
                s.reduction_pct()
            ));
        }
        table.print();
        println!();
    }
    let path = write_csv(
        "recovery_savings.csv",
        "code,p,conventional_reads,optimized_reads,reduction_pct",
        &csv_rows,
    );
    println!("CSV written to {}", path.display());
}
