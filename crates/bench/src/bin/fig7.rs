//! Figure 7 — degraded-mode read speed (a) and per-disk average speed (b).
//!
//! Paper reference points: D-Code 11.6%–26.0% above X-Code; 2.3%–4.9% and
//! 4.1%–9.6% *below* RDP and H-Code (their extra disk and horizontal parity
//! disk help degraded reads); 4.1%–62.4% above HDP in aggregate speed.

use dcode_bench::prelude::*;
use dcode_disksim::experiment::{degraded_read_speed, ExperimentParams};

fn main() {
    let seed = seed_from_args();
    let params = ExperimentParams::default();
    let mut csv_rows = Vec::new();

    for (part, title, avg) in [
        ('a', "Figure 7(a): degraded read speed (MB/s)", false),
        (
            'b',
            "Figure 7(b): average degraded read speed per disk (MB/s)",
            true,
        ),
    ] {
        println!("\n{title}");
        let mut table = Table::new(&["code", "p=5", "p=7", "p=11", "p=13"]);
        let mut chart_series = Vec::new();
        for &code in &EVALUATED_CODES {
            let mut cells = vec![code.name().to_string()];
            let mut values = Vec::new();
            for &p in &PRIMES {
                let layout = build(code, p).expect("paper codes build");
                let speed = degraded_read_speed(&layout, params, seed ^ p as u64);
                let v = if avg { speed.avg_mb_s } else { speed.mb_s };
                cells.push(format!("{v:.1}"));
                values.push(v);
                if !avg {
                    csv_rows.push(format!(
                        "{},{},{:.3},{:.3}",
                        code.name(),
                        p,
                        speed.mb_s,
                        speed.avg_mb_s
                    ));
                }
            }
            chart_series.push(Series {
                name: code.name().to_string(),
                values,
            });
            table.row(cells);
        }
        table.print();
        let chart = BarChart {
            title: title.to_string(),
            y_label: if avg { "MB/s per disk" } else { "MB/s" }.into(),
            x_labels: PRIMES.iter().map(|p| format!("p={p}")).collect(),
            series: chart_series,
            y_cap: None,
        };
        let svg = chart.save(&format!("fig7{part}_degraded_read"));
        println!("SVG written to {}", svg.display());
    }
    let path = write_csv("fig7_degraded_read.csv", "code,p,mb_s,avg_mb_s", &csv_rows);
    println!("\nCSV written to {}", path.display());
}
