//! Extension study: load balance *while degraded* — the surviving disks
//! absorb the failed disk's traffic plus reconstruction reads; how evenly
//! depends on the parity geometry.

use dcode_bench::prelude::*;
use dcode_iosim::sim::run_workload_degraded;
use dcode_iosim::workload::{generate, WorkloadKind, WorkloadParams};

fn main() {
    let seed = seed_from_args();
    let mut csv_rows = Vec::new();
    for &p in &[7usize, 13] {
        println!("\n=== Degraded-mode LF, read-only workload, p = {p} (worst / mean over failure cases) ===");
        let mut table = Table::new(&["code", "mean LF", "worst LF"]);
        for &code in &EVALUATED_CODES {
            let layout = build(code, p).unwrap();
            let ops = generate(
                WorkloadKind::ReadOnly,
                layout.data_len(),
                WorkloadParams {
                    n_ops: 500,
                    ..Default::default()
                },
                seed,
            );
            let mut lfs = Vec::new();
            for failed in 0..layout.disks() {
                if layout.data_count_in_col(failed) == 0 {
                    continue; // paper's convention: data-disk failure cases
                }
                let res = run_workload_degraded(&layout, &ops, failed);
                // The failed disk serves nothing; compute LF over survivors.
                let survivors: Vec<u64> = res
                    .accesses
                    .per_disk
                    .iter()
                    .enumerate()
                    .filter(|&(d, _)| d != failed)
                    .map(|(_, &v)| v)
                    .collect();
                let max = *survivors.iter().max().unwrap() as f64;
                let min = *survivors.iter().min().unwrap() as f64;
                lfs.push(if min == 0.0 { f64::INFINITY } else { max / min });
            }
            let mean = lfs.iter().sum::<f64>() / lfs.len() as f64;
            let worst = lfs.iter().copied().fold(0.0, f64::max);
            let fmt = |v: f64| {
                if v.is_finite() {
                    format!("{v:.2}")
                } else {
                    "inf".into()
                }
            };
            table.row(vec![code.name().to_string(), fmt(mean), fmt(worst)]);
            csv_rows.push(format!(
                "{},{},{:.4},{:.4}",
                code.name(),
                p,
                if mean.is_finite() { mean } else { -1.0 },
                if worst.is_finite() { worst } else { -1.0 }
            ));
        }
        table.print();
    }
    let path = write_csv("degraded_balance.csv", "code,p,mean_lf,worst_lf", &csv_rows);
    println!("\nCSV written to {}", path.display());
}
