//! Extension study: mean time to data loss. Rebuild speed enters MTTDL
//! quadratically, so Section III-D's hybrid-recovery saving compounds: the
//! ~27% read reduction becomes a ~1.7× reliability gain for D-Code/X-Code.

use dcode_baselines::registry::ALL_CODES;
use dcode_bench::prelude::*;
use dcode_disksim::rebuild::RebuildScheme;
use dcode_disksim::reliability::{estimate, ReliabilityParams};

fn main() {
    let params = ReliabilityParams::default();
    println!(
        "=== MTTDL with 300 GB Savvio-class disks (MTTF {:.1}M hours) ===\n",
        params.disk_mttf_hours / 1e6
    );
    let mut csv_rows = Vec::new();
    for &p in &PRIMES {
        println!("p = {p}:");
        let mut table = Table::new(&[
            "code",
            "disks",
            "MTTR conv (h)",
            "MTTR opt (h)",
            "MTTDL conv (yr)",
            "MTTDL opt (yr)",
            "gain",
        ]);
        for &code in &ALL_CODES {
            let layout = build(code, p).expect("codes build");
            let conv = estimate(&layout, RebuildScheme::Conventional, params);
            let opt = estimate(&layout, RebuildScheme::Optimized, params);
            let yr = 24.0 * 365.0;
            table.row(vec![
                code.name().to_string(),
                layout.disks().to_string(),
                format!("{:.1}", conv.mttr_hours),
                format!("{:.1}", opt.mttr_hours),
                format!("{:.2e}", conv.mttdl_hours / yr),
                format!("{:.2e}", opt.mttdl_hours / yr),
                format!("{:.2}x", opt.mttdl_hours / conv.mttdl_hours),
            ]);
            csv_rows.push(format!(
                "{},{},{:.3},{:.3},{:.5e},{:.5e}",
                code.name(),
                p,
                conv.mttr_hours,
                opt.mttr_hours,
                conv.mttdl_hours,
                opt.mttdl_hours
            ));
        }
        table.print();
        println!();
    }
    let path = write_csv(
        "reliability_study.csv",
        "code,p,mttr_conv_h,mttr_opt_h,mttdl_conv_h,mttdl_opt_h",
        &csv_rows,
    );
    println!("CSV written to {}", path.display());
}
