//! Minimal SVG chart rendering — dependency-free grouped bar charts, so the
//! figure binaries can emit an actual picture of each reproduced figure
//! next to its CSV.

use std::fmt::Write as _;

/// One plotted series (a code, in the paper's figures).
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// One value per x-axis group; `f64::NAN` renders as a capped bar with
    /// an ∞ marker (the paper plots infinite LF at the y-axis cap).
    pub values: Vec<f64>,
}

/// A grouped bar chart in the style of the paper's figures.
#[derive(Clone, Debug)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis group labels (the primes).
    pub x_labels: Vec<String>,
    /// The series (the codes).
    pub series: Vec<Series>,
    /// Optional y-axis cap; values beyond it (and NaN) are clamped and
    /// marked.
    pub y_cap: Option<f64>,
}

/// A qualitative palette readable on white (one per code).
const PALETTE: [&str; 7] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb",
];

impl BarChart {
    /// Render to a standalone SVG document.
    pub fn render_svg(&self) -> String {
        assert!(!self.series.is_empty() && !self.x_labels.is_empty());
        for s in &self.series {
            assert_eq!(
                s.values.len(),
                self.x_labels.len(),
                "series '{}' arity mismatch",
                s.name
            );
        }
        let (w, h) = (760f64, 420f64);
        let (ml, mr, mt, mb) = (70f64, 150f64, 50f64, 55f64);
        let plot_w = w - ml - mr;
        let plot_h = h - mt - mb;

        let finite_max = self
            .series
            .iter()
            .flat_map(|s| s.values.iter())
            .filter(|v| v.is_finite())
            .fold(0f64, |a, &b| a.max(b));
        let y_max = match self.y_cap {
            Some(cap) => cap,
            None => {
                if finite_max <= 0.0 {
                    1.0
                } else {
                    finite_max * 1.1
                }
            }
        };

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#
        );
        let _ = write!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
        let _ = write!(
            svg,
            r#"<text x="{}" y="28" font-size="16" text-anchor="middle" font-weight="bold">{}</text>"#,
            ml + plot_w / 2.0,
            xml_escape(&self.title)
        );

        // Y axis: 5 ticks with grid lines.
        for t in 0..=5 {
            let v = y_max * t as f64 / 5.0;
            let y = mt + plot_h - plot_h * t as f64 / 5.0;
            let _ = write!(
                svg,
                r##"<line x1="{ml}" y1="{y}" x2="{}" y2="{y}" stroke="#dddddd"/>"##,
                ml + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-size="11" text-anchor="end">{}</text>"#,
                ml - 6.0,
                y + 4.0,
                trim_num(v)
            );
        }
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            mt + plot_h / 2.0,
            mt + plot_h / 2.0,
            xml_escape(&self.y_label)
        );

        // Bars.
        let groups = self.x_labels.len() as f64;
        let group_w = plot_w / groups;
        let bar_w = group_w * 0.8 / self.series.len() as f64;
        for (g, label) in self.x_labels.iter().enumerate() {
            let gx = ml + group_w * g as f64;
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-size="12" text-anchor="middle">{}</text>"#,
                gx + group_w / 2.0,
                mt + plot_h + 18.0,
                xml_escape(label)
            );
            for (si, s) in self.series.iter().enumerate() {
                let v = s.values[g];
                let clamped = if v.is_finite() { v.min(y_max) } else { y_max };
                let bh = plot_h * clamped / y_max;
                let x = gx + group_w * 0.1 + bar_w * si as f64;
                let y = mt + plot_h - bh;
                let color = PALETTE[si % PALETTE.len()];
                let _ = write!(
                    svg,
                    r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{bh:.1}" fill="{color}"/>"#,
                    bar_w * 0.92
                );
                if !v.is_finite() || v > y_max {
                    let _ = write!(
                        svg,
                        r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="middle">∞</text>"#,
                        x + bar_w / 2.0,
                        y - 3.0
                    );
                }
            }
        }

        // Axes.
        let _ = write!(
            svg,
            r#"<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{}" stroke="black"/>"#,
            mt + plot_h
        );
        let _ = write!(
            svg,
            r#"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            mt + plot_h,
            ml + plot_w,
            mt + plot_h
        );

        // Legend.
        for (si, s) in self.series.iter().enumerate() {
            let y = mt + 18.0 * si as f64;
            let x = ml + plot_w + 12.0;
            let color = PALETTE[si % PALETTE.len()];
            let _ = write!(
                svg,
                r#"<rect x="{x}" y="{y}" width="12" height="12" fill="{color}"/>"#
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-size="12">{}</text>"#,
                x + 17.0,
                y + 10.0,
                xml_escape(&s.name)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    /// Render and write to `target/figures/<name>.svg`, returning the path.
    pub fn save(&self, name: &str) -> std::path::PathBuf {
        let path = crate::figures_dir().join(format!("{name}.svg"));
        std::fs::write(&path, self.render_svg()).expect("write SVG");
        path
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn trim_num(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        BarChart {
            title: "test & chart".into(),
            y_label: "LF".into(),
            x_labels: vec!["p=5".into(), "p=7".into()],
            series: vec![
                Series {
                    name: "RDP".into(),
                    values: vec![f64::INFINITY, 3.0],
                },
                Series {
                    name: "D-Code".into(),
                    values: vec![1.0, 1.1],
                },
            ],
            y_cap: Some(30.0),
        }
    }

    #[test]
    fn renders_valid_svg_shell() {
        let svg = chart().render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // Escaped title, both legends, an infinity marker.
        assert!(svg.contains("test &amp; chart"));
        assert!(svg.contains("RDP"));
        assert!(svg.contains("D-Code"));
        assert!(svg.contains('∞'));
        // 2 groups × 2 series bars + 2 legend swatches + background.
        assert_eq!(svg.matches("<rect").count(), 1 + 4 + 2);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut c = chart();
        c.series[0].values.pop();
        let _ = c.render_svg();
    }
}
