//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — is one *frame*: a `u32`
//! big-endian byte length followed by that many body bytes. The first
//! body byte is an opcode (requests) or a status (responses); the rest is
//! opcode-specific. All integers are big-endian; names are UTF-8 with a
//! `u16` length, values are raw bytes with a `u32` length.
//!
//! Requests:
//!
//! ```text
//! 0x01 PUT    u16 name_len · name · u32 value_len · value
//! 0x02 GET    u16 name_len · name
//! 0x03 DELETE u16 name_len · name
//! 0x04 SCRUB  (no payload; runs on every shard)
//! 0x05 STAT   (no payload; served from snapshots, never queued)
//! ```
//!
//! Responses:
//!
//! ```text
//! 0x00 OK        (put/delete acknowledged — the shard has completed it)
//! 0x01 VALUE     u32 len · bytes
//! 0x02 NOT_FOUND
//! 0x03 BUSY      u16 shard · u32 queue_depth   (typed backpressure)
//! 0x04 ERR       u16 len · UTF-8 message
//! 0x05 REPORT    u32 len · UTF-8 JSON (scrub report or stat document)
//! ```
//!
//! `BUSY` is the protocol's backpressure: a full shard queue rejects the
//! request *immediately* instead of queueing it unboundedly, and tells the
//! client which shard and how deep. Clients retry with backoff; an open
//! loop generator counts them separately from errors.
//!
//! Frames are capped at [`MAX_FRAME`] so a corrupt or hostile length
//! prefix cannot make the server allocate gigabytes.

use std::io::{self, Read, Write};

/// Hard cap on one frame's body, requests and responses alike (16 MiB —
/// comfortably above the largest value the bundled arrays can hold).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// A client request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Store `value` under `name`, replacing any existing object.
    Put {
        /// Object name (no commas or newlines — the store's index format).
        name: String,
        /// Object bytes.
        value: Vec<u8>,
    },
    /// Fetch the object named `name`.
    Get {
        /// Object name.
        name: String,
    },
    /// Delete the object named `name`.
    Delete {
        /// Object name.
        name: String,
    },
    /// Run a scrub pass over every shard's array.
    Scrub,
    /// Fetch the server's metrics document.
    Stat,
}

/// A server response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// The operation completed.
    Ok,
    /// The requested object's bytes.
    Value(Vec<u8>),
    /// No object of that name.
    NotFound,
    /// The target shard's queue is full; retry later.
    Busy {
        /// Shard that rejected the request.
        shard: u16,
        /// Its queue depth at rejection.
        depth: u32,
    },
    /// The operation failed; human-readable reason.
    Err(String),
    /// A JSON document (scrub report or stat snapshot).
    Report(String),
}

/// A malformed frame body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtoError {
    /// The body ended before a declared field did.
    Truncated,
    /// Unknown request opcode.
    BadOpcode(u8),
    /// Unknown response status.
    BadStatus(u8),
    /// A name field was not valid UTF-8.
    BadUtf8,
    /// Bytes left over after the last field.
    Trailing(usize),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::BadOpcode(op) => write!(f, "unknown request opcode {op:#04x}"),
            ProtoError::BadStatus(st) => write!(f, "unknown response status {st:#04x}"),
            ProtoError::BadUtf8 => write!(f, "name is not valid UTF-8"),
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after last field"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Write one frame: length prefix + body.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME);
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Read one frame body. Returns `Ok(None)` on end-of-stream at a frame
/// boundary (the peer closed cleanly); an EOF mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    // Distinguish clean close (0 bytes) from a torn prefix by reading the
    // first byte separately.
    match r.read(&mut prefix[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e),
    }
    r.read_exact(&mut prefix[1..])?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Byte-slice cursor for decoding.
struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.rest.len() < n {
            return Err(ProtoError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn name(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn blob(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::Trailing(self.rest.len()))
        }
    }
}

fn push_name(out: &mut Vec<u8>, name: &str) {
    let len = u16::try_from(name.len()).expect("name length fits u16");
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(name.as_bytes());
}

fn push_blob(out: &mut Vec<u8>, blob: &[u8]) {
    let len = u32::try_from(blob.len()).expect("blob length fits u32");
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(blob);
}

impl Request {
    /// Serialize to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Put { name, value } => {
                out.push(0x01);
                push_name(&mut out, name);
                push_blob(&mut out, value);
            }
            Request::Get { name } => {
                out.push(0x02);
                push_name(&mut out, name);
            }
            Request::Delete { name } => {
                out.push(0x03);
                push_name(&mut out, name);
            }
            Request::Scrub => out.push(0x04),
            Request::Stat => out.push(0x05),
        }
        out
    }

    /// Parse a frame body.
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        let mut cur = Cursor { rest: body };
        let req = match cur.u8()? {
            0x01 => Request::Put {
                name: cur.name()?,
                value: cur.blob()?,
            },
            0x02 => Request::Get { name: cur.name()? },
            0x03 => Request::Delete { name: cur.name()? },
            0x04 => Request::Scrub,
            0x05 => Request::Stat,
            op => return Err(ProtoError::BadOpcode(op)),
        };
        cur.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialize to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Ok => out.push(0x00),
            Response::Value(bytes) => {
                out.push(0x01);
                push_blob(&mut out, bytes);
            }
            Response::NotFound => out.push(0x02),
            Response::Busy { shard, depth } => {
                out.push(0x03);
                out.extend_from_slice(&shard.to_be_bytes());
                out.extend_from_slice(&depth.to_be_bytes());
            }
            Response::Err(msg) => {
                out.push(0x04);
                let msg = truncate_utf8(msg, u16::MAX as usize);
                push_name(&mut out, msg);
            }
            Response::Report(json) => {
                out.push(0x05);
                push_blob(&mut out, json.as_bytes());
            }
        }
        out
    }

    /// Parse a frame body.
    pub fn decode(body: &[u8]) -> Result<Response, ProtoError> {
        let mut cur = Cursor { rest: body };
        let resp = match cur.u8()? {
            0x00 => Response::Ok,
            0x01 => Response::Value(cur.blob()?),
            0x02 => Response::NotFound,
            0x03 => Response::Busy {
                shard: cur.u16()?,
                depth: cur.u32()?,
            },
            0x04 => Response::Err(cur.name()?),
            0x05 => {
                let raw = cur.blob()?;
                Response::Report(String::from_utf8(raw).map_err(|_| ProtoError::BadUtf8)?)
            }
            st => return Err(ProtoError::BadStatus(st)),
        };
        cur.finish()?;
        Ok(resp)
    }
}

/// Longest prefix of `s` that is at most `max` bytes and still valid
/// UTF-8 (error messages are diagnostics; cutting them beats rejecting
/// the frame).
fn truncate_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Put {
            name: "obj/α".into(),
            value: (0..=255).collect(),
        });
        roundtrip_req(Request::Get { name: "x".into() });
        roundtrip_req(Request::Delete {
            name: String::new(),
        });
        roundtrip_req(Request::Scrub);
        roundtrip_req(Request::Stat);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Value(vec![0, 255, 7]));
        roundtrip_resp(Response::NotFound);
        roundtrip_resp(Response::Busy {
            shard: 3,
            depth: 4096,
        });
        roundtrip_resp(Response::Err("no space".into()));
        roundtrip_resp(Response::Report("{\"ok\":true}".into()));
    }

    #[test]
    fn malformed_bodies_are_typed_errors() {
        assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(Request::decode(&[0x99]), Err(ProtoError::BadOpcode(0x99)));
        // PUT with a name length pointing past the end.
        assert_eq!(
            Request::decode(&[0x01, 0x00, 0x05, b'a']),
            Err(ProtoError::Truncated)
        );
        // Trailing garbage after a well-formed GET.
        let mut body = Request::Get { name: "k".into() }.encode();
        body.push(0xEE);
        assert_eq!(Request::decode(&body), Err(ProtoError::Trailing(1)));
        // Invalid UTF-8 in a name.
        assert_eq!(
            Request::decode(&[0x02, 0x00, 0x02, 0xFF, 0xFE]),
            Err(ProtoError::BadUtf8)
        );
        assert_eq!(Response::decode(&[0x77]), Err(ProtoError::BadStatus(0x77)));
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let wire = u32::MAX.to_be_bytes();
        let mut r = &wire[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn mid_frame_eof_is_an_error_not_a_clean_close() {
        // Length says 10 bytes, stream has 3.
        let mut wire = Vec::new();
        wire.extend_from_slice(&10u32.to_be_bytes());
        wire.extend_from_slice(b"abc");
        let mut r = &wire[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn error_messages_truncate_on_char_boundaries() {
        let long = "é".repeat(40_000); // 80 000 bytes of 2-byte chars
        let resp = Response::Err(long);
        let decoded = Response::decode(&resp.encode()).unwrap();
        let Response::Err(msg) = decoded else {
            panic!("expected Err response");
        };
        assert!(msg.len() <= u16::MAX as usize);
        assert!(msg.chars().all(|c| c == 'é'));
    }
}
