//! Server-side metrics: lock-free latency histograms and operation
//! counters, rendered as the JSON document a `STAT` request returns.
//!
//! The histogram is log₂-bucketed over microseconds: recording is two
//! relaxed atomic ops on the hot path, and percentile queries walk 64
//! counters. Bucket `i` covers `[2^i, 2^(i+1))` µs, so a reported
//! percentile is an upper bound within 2× of the true value — the right
//! trade for a server that must not take a lock per request. The load
//! generator keeps exact client-side samples; the two views bracket the
//! truth.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// A log₂-bucketed latency histogram in microseconds.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Record one latency sample.
    pub fn record(&self, us: u64) {
        let idx = 63 - (us | 1).leading_zeros() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket holding quantile `q` (0 < q ≤ 1); 0 when
    /// empty. The true latency is within 2× below the returned value.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_precision_loss)]
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max_us.load(Ordering::Relaxed));
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// The summary JSON object for one op class.
    pub fn summary_json(&self) -> String {
        let count = self.count();
        let mean = self
            .sum_us
            .load(Ordering::Relaxed)
            .checked_div(count)
            .unwrap_or(0);
        format!(
            "{{\"count\":{count},\"mean_us\":{mean},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{}}}",
            self.percentile(0.50),
            self.percentile(0.99),
            self.percentile(0.999),
            self.max_us.load(Ordering::Relaxed),
        )
    }
}

/// Counters for every request outcome the front end can produce.
#[derive(Default)]
pub struct OpCounters {
    /// PUTs acknowledged.
    pub puts: AtomicU64,
    /// GETs that returned a value.
    pub gets: AtomicU64,
    /// DELETEs acknowledged.
    pub deletes: AtomicU64,
    /// Whole-server scrub passes served.
    pub scrubs: AtomicU64,
    /// STAT documents served.
    pub stats: AtomicU64,
    /// GET/DELETE misses.
    pub not_found: AtomicU64,
    /// Requests rejected with `Busy` by a full shard queue.
    pub busy: AtomicU64,
    /// Requests that failed (store error, malformed frame…).
    pub errors: AtomicU64,
}

/// One shared metrics sink for the whole server.
#[derive(Default)]
pub struct ServerMetrics {
    /// Outcome counters.
    pub ops: OpCounters,
    /// PUT latency, enqueue → shard completion.
    pub put_latency: Histogram,
    /// GET latency, enqueue → shard completion.
    pub get_latency: Histogram,
    /// DELETE latency, enqueue → shard completion.
    pub delete_latency: Histogram,
    /// SCRUB latency, request → all shards reported.
    pub scrub_latency: Histogram,
}

impl ServerMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    fn counter(c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// The `"ops"` and `"latency_us"` sections of the stat document.
    pub fn core_json(&self) -> String {
        let o = &self.ops;
        format!(
            "\"ops\":{{\"puts\":{},\"gets\":{},\"deletes\":{},\"scrubs\":{},\"stats\":{},\"not_found\":{},\"busy\":{},\"errors\":{}}},\
             \"latency_us\":{{\"put\":{},\"get\":{},\"delete\":{},\"scrub\":{}}}",
            Self::counter(&o.puts),
            Self::counter(&o.gets),
            Self::counter(&o.deletes),
            Self::counter(&o.scrubs),
            Self::counter(&o.stats),
            Self::counter(&o.not_found),
            Self::counter(&o.busy),
            Self::counter(&o.errors),
            self.put_latency.summary_json(),
            self.get_latency.summary_json(),
            self.delete_latency.summary_json(),
            self.scrub_latency.summary_json(),
        )
    }
}

/// Escape a string for embedding in a JSON document (quotes, backslashes,
/// control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_bound_the_samples_within_one_bucket() {
        let h = Histogram::new();
        for us in [1u64, 2, 3, 100, 100, 100, 100, 100, 100, 5000] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.percentile(0.50);
        assert!((100..200).contains(&p50), "p50 {p50} brackets 100µs");
        // The top sample caps every high quantile at the observed max.
        assert_eq!(h.percentile(0.999), 5000);
        assert_eq!(h.percentile(1.0), 5000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(
            h.summary_json(),
            "{\"count\":0,\"mean_us\":0,\"p50_us\":0,\"p99_us\":0,\"p999_us\":0,\"max_us\":0}"
        );
    }

    #[test]
    fn zero_and_huge_samples_do_not_panic() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn stat_json_sections_are_parseable_shapes() {
        let m = ServerMetrics::new();
        m.ops.puts.fetch_add(3, Ordering::Relaxed);
        m.put_latency.record(250);
        let doc = format!("{{{}}}", m.core_json());
        // Shape check without a JSON parser: balanced braces, both keys.
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "balanced braces in {doc}"
        );
        assert!(doc.contains("\"puts\":3"));
        assert!(doc.contains("\"latency_us\""));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
