//! One shard: a bounded work queue in front of a worker thread that owns
//! an [`ObjectStore`] over a [`ResilientArray`].
//!
//! All array state is single-threaded inside the worker — no locks on the
//! I/O path, no sharing of the schedule cache across shards (each array
//! embeds its own, so its hit rate measures *that shard's* steady state).
//! Concurrency comes from sharding: requests are routed by [`shard_of`]
//! (FNV-1a of the object name, modulo shard count), so independent
//! objects land on independent arrays and proceed in parallel.
//!
//! The queue is **bounded**. `try_push` on a full queue fails immediately
//! with the current depth, which the front end converts into a typed
//! `Busy` response — backpressure the client can see and pace against,
//! instead of an unbounded queue that converts overload into latency and
//! then into memory exhaustion. A test hook ([`ShardQueue::set_stalled`])
//! parks the worker without touching the store, making queue-full
//! behaviour deterministic to test.
//!
//! The worker drains the queue in **batches** ([`ShardQueue`]'s
//! `pop_batch`): it blocks for the first job, then greedily takes
//! whatever else is already queued (up to a cap) without waiting. Every
//! op in the batch executes, then ONE snapshot is published covering all
//! of them, then the replies go out in arrival order — so a loaded shard
//! pays one snapshot/publish per drain instead of one per op, while the
//! ack-after-durable and publish-before-reply orderings dcode-race
//! model-checks are preserved verbatim (each ack still follows a publish
//! that reflects its op). Large multi-stripe writes inside each PUT batch
//! further through the fused encoder in `ResilientArray::write` (one
//! fused tile-major program per segment batch, job buffers from the
//! array's own arena), so a busy server keeps the worker pool warm and
//! allocation-free without the shard layer knowing anything about
//! stripes.

use crate::metrics::{json_escape, ServerMetrics};
use crate::protocol::Response;
use dcode_array::{
    journal_blocks_per_disk, ObjectStore, ReplaySummary, ResilientArray, ResilientStats,
    RetryPolicy, RotationScheme, StoreError,
};
use dcode_codec::CacheStats;
use dcode_core::layout::CodeLayout;
use dcode_core::Fnv1a;
use dcode_faults::{DiskBackend, DiskError};
use minisim::sync::{mpsc, Arc, Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::PoisonError;
use std::time::Instant;

/// The backend type shards store behind: any [`DiskBackend`] that can move
/// to the worker thread (file-backed, in-memory, fault-injected…).
pub type ShardBackend = Box<dyn DiskBackend + Send>;

/// The store a shard worker owns.
pub type ShardStore = ObjectStore<ResilientArray<ShardBackend>>;

/// Route an object name to a shard: FNV-1a over the name bytes, modulo
/// the shard count. Stable across runs and processes (the hasher is
/// pinned, unlike `DefaultHasher`), so a restarted server finds every
/// object where the previous process put it.
pub fn shard_of(name: &str, shards: usize) -> usize {
    assert!(shards > 0);
    let mut h = Fnv1a::new();
    h.bytes(name.as_bytes());
    (h.finish() % shards as u64) as usize
}

/// Geometry and policy for every shard's array.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// The RAID-6 code each shard runs.
    pub layout: CodeLayout,
    /// Bytes per element block.
    pub block_size: usize,
    /// Stripes per shard array.
    pub stripes: usize,
    /// Logical→physical column rotation.
    pub rotation: RotationScheme,
    /// Elements reserved for each store's index.
    pub meta_elements: usize,
    /// Transient-error retry policy.
    pub policy: RetryPolicy,
    /// Hard errors on one slot before it is auto-failed.
    pub fail_threshold: usize,
    /// Bounded queue capacity per shard.
    pub queue_cap: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            layout: dcode_core::dcode::dcode(7).expect("7 is prime"),
            block_size: 4096,
            stripes: 64,
            rotation: RotationScheme::PerStripe,
            meta_elements: 8,
            policy: RetryPolicy::default(),
            fail_threshold: 8,
            queue_cap: 128,
        }
    }
}

/// Blocks each backend disk must provide for this geometry: the data
/// region plus the parity-intent journal tail. Size every shard backend
/// with this, not `stripes * rows` — the journal lives past the stripes.
pub fn shard_blocks(cfg: &ShardConfig) -> usize {
    cfg.stripes * cfg.layout.rows() + journal_blocks_per_disk(&cfg.layout, cfg.block_size)
}

/// Build a shard's store over `backend`: `fresh` formats a new journaled
/// array and store; otherwise the array is attached to the existing
/// medium — which **replays any committed parity-intent records first**
/// (closing the write hole from a previous crash), then seeds CRCs from
/// disk content — and the store index is read back from it. Either way
/// the shard only starts accepting ops over a consistent array.
pub fn build_store(
    cfg: &ShardConfig,
    backend: ShardBackend,
    fresh: bool,
) -> Result<ShardStore, String> {
    if fresh {
        let array = ResilientArray::format_journaled(
            cfg.layout.clone(),
            cfg.block_size,
            cfg.stripes,
            cfg.rotation,
            backend,
            cfg.policy,
            cfg.fail_threshold,
        );
        ObjectStore::format(array, cfg.meta_elements).map_err(|e| format!("format store: {e}"))
    } else {
        let array = ResilientArray::attach_journaled(
            cfg.layout.clone(),
            cfg.block_size,
            cfg.stripes,
            cfg.rotation,
            backend,
            cfg.policy,
            cfg.fail_threshold,
        )
        .map_err(|e: DiskError| format!("attach array: {e}"))?;
        ObjectStore::open(array, cfg.meta_elements).map_err(|e| format!("open store: {e}"))
    }
}

/// One queued operation (`Stat` never enters a queue — it is served from
/// published snapshots so an overloaded shard cannot block observability).
#[allow(missing_docs)]
pub enum ShardOp {
    Put { name: String, value: Vec<u8> },
    Get { name: String },
    Delete { name: String },
    Scrub,
}

/// A queued operation plus its reply channel and enqueue timestamp (the
/// latency histograms measure enqueue → completion, so queueing delay is
/// part of the reported number — that is the latency a client feels).
pub struct ShardJob {
    /// The operation to run on the shard's store.
    pub op: ShardOp,
    /// When the job entered the queue.
    pub queued_at: Instant,
    /// Where the worker sends the response.
    pub reply: mpsc::Sender<Response>,
}

struct QueueInner {
    jobs: VecDeque<ShardJob>,
    stalled: bool,
    shutdown: bool,
}

/// The bounded MPSC queue between connection handlers and one shard
/// worker.
///
/// Built on the `minisim` facade so `dcode-race` model-checks this exact
/// code. The locks recover from poisoning (`PoisonError::into_inner`): a
/// panicking worker must not take queue-depth sampling — part of the
/// STAT observability path — down with it.
pub struct ShardQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
}

impl ShardQueue {
    /// A queue admitting at most `cap` jobs.
    ///
    /// # Panics
    /// Panics if `cap` is zero (a queue that can never admit a job).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        ShardQueue {
            inner: Mutex::named(
                "server.shard.queue",
                QueueInner {
                    jobs: VecDeque::new(),
                    stalled: false,
                    shutdown: false,
                },
            ),
            ready: Condvar::named("server.shard.ready"),
            cap,
        }
    }

    fn lock(&self) -> minisim::sync::MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueue if there is room; on a full queue return the depth at
    /// rejection instead of blocking.
    ///
    /// # Errors
    /// Returns the depth observed at rejection when the queue is full or
    /// shutting down.
    pub fn try_push(&self, job: ShardJob) -> Result<(), usize> {
        let mut inner = self.lock();
        if inner.shutdown || inner.jobs.len() >= self.cap {
            return Err(inner.jobs.len());
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Park (or release) the worker without touching the store — the test
    /// hook that makes `Busy` deterministic: stall, fill the queue past
    /// `cap`, observe the rejection, release.
    pub fn set_stalled(&self, stalled: bool) {
        self.lock().stalled = stalled;
        self.ready.notify_all();
    }

    /// Wake the worker and make it exit once the flag is seen. Pending
    /// jobs are dropped; their reply channels close, and waiting handlers
    /// report the shutdown. Nothing already acknowledged is affected.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.ready.notify_all();
    }

    /// Blocking batch pop into `into` (which must be empty): waits for
    /// the first job, then greedily drains up to `max` already-queued
    /// jobs without waiting for more. Returns `false` on shutdown.
    /// Draining in arrival order keeps replies FIFO per connection; the
    /// caller-owned buffer means a busy worker loop never allocates a
    /// batch vector in steady state.
    fn pop_batch(&self, into: &mut Vec<ShardJob>, max: usize) -> bool {
        debug_assert!(into.is_empty());
        let mut inner = self.lock();
        loop {
            if inner.shutdown {
                return false;
            }
            if !inner.stalled && !inner.jobs.is_empty() {
                let take = inner.jobs.len().min(max);
                into.extend(inner.jobs.drain(..take));
                return true;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A point-in-time copy of one shard's observable state, refreshed by the
/// worker after every operation and read lock-free of the store by `STAT`.
#[derive(Clone, Debug)]
pub struct ShardSnapshot {
    /// Objects resident in the store.
    pub objects: usize,
    /// Operations the worker has completed.
    pub ops_done: u64,
    /// Resilient-layer counters (retries, degraded reads, repairs…).
    pub stats: ResilientStats,
    /// Schedule-cache hit/miss counters.
    pub cache: CacheStats,
    /// Slots currently failed.
    pub failed_slots: Vec<usize>,
    /// Hot spares not yet attached.
    pub spares_remaining: usize,
    /// What mount-time journal replay did (None before the first attach).
    pub last_replay: Option<ReplaySummary>,
}

impl Default for ShardSnapshot {
    fn default() -> Self {
        ShardSnapshot {
            objects: 0,
            ops_done: 0,
            stats: ResilientStats::default(),
            cache: CacheStats { hits: 0, misses: 0 },
            failed_slots: Vec::new(),
            spares_remaining: 0,
            last_replay: None,
        }
    }
}

impl ShardSnapshot {
    /// This shard's entry in the stat document; `queue_depth` is sampled
    /// live at render time.
    pub fn to_json(&self, queue_depth: usize) -> String {
        let failed: Vec<String> = self.failed_slots.iter().map(usize::to_string).collect();
        let (replay_outcome, replay_replayed) = match self.last_replay {
            Some(summary) => (summary.outcome.name(), summary.replayed),
            None => ("none", 0),
        };
        format!(
            "{{\"queue_depth\":{queue_depth},\"objects\":{},\"ops_done\":{},\
             \"schedule_hits\":{},\"schedule_misses\":{},\
             \"element_reads\":{},\"element_writes\":{},\"retries\":{},\
             \"degraded_reads\":{},\"checksum_catches\":{},\"read_repairs\":{},\
             \"auto_fails\":{},\"rebuilds_completed\":{},\
             \"journal_records\":{},\"journal_retires\":{},\
             \"journal_replays\":{},\"journal_last_replay\":\"{}\",\
             \"journal_last_replayed\":{},\
             \"failed_slots\":[{}],\"spares_remaining\":{}}}",
            self.objects,
            self.ops_done,
            self.cache.hits,
            self.cache.misses,
            self.stats.element_reads,
            self.stats.element_writes,
            self.stats.retries,
            self.stats.degraded_reads,
            self.stats.checksum_catches,
            self.stats.read_repairs,
            self.stats.auto_fails,
            self.stats.rebuilds_completed,
            self.stats.journal_records,
            self.stats.journal_retires,
            self.stats.journal_replays,
            replay_outcome,
            replay_replayed,
            failed.join(","),
            self.spares_remaining,
        )
    }
}

/// A running shard: its queue, its published snapshot, and the worker's
/// join handle.
pub(crate) struct Shard {
    pub queue: Arc<ShardQueue>,
    pub snapshot: Arc<Mutex<ShardSnapshot>>,
    pub worker: minisim::thread::JoinHandle<()>,
}

/// What a shard worker runs: the storage half of the worker loop,
/// separated from the concurrency skeleton so the *real* loop — pop,
/// execute, metrics, publish-before-reply, shutdown drain — is generic
/// and model-checkable by `dcode-race` with a stub engine, while
/// production uses [`StoreEngine`] over a `ResilientArray`-backed store.
pub trait ShardEngine: Send + 'static {
    /// Run one operation to completion against the shard's storage.
    fn execute(&mut self, op: &ShardOp) -> Response;
    /// A fresh observable-state snapshot after `ops_done` completed ops.
    fn snapshot(&self, ops_done: u64) -> ShardSnapshot;
}

/// The production engine: a [`ShardStore`] plus the shard id used in
/// scrub reports.
pub struct StoreEngine {
    id: usize,
    store: ShardStore,
}

impl StoreEngine {
    /// Wrap a store as shard `id`'s engine.
    pub fn new(id: usize, store: ShardStore) -> Self {
        StoreEngine { id, store }
    }
}

fn store_error_response(e: &StoreError) -> Response {
    match e {
        StoreError::NotFound(_) => Response::NotFound,
        other => Response::Err(other.to_string()),
    }
}

impl ShardEngine for StoreEngine {
    fn execute(&mut self, op: &ShardOp) -> Response {
        match op {
            ShardOp::Put { name, value } => match self.store.upsert(name, value) {
                Ok(()) => Response::Ok,
                Err(e) => store_error_response(&e),
            },
            ShardOp::Get { name } => match self.store.get(name) {
                Ok(bytes) => Response::Value(bytes),
                Err(StoreError::NotFound(_)) => Response::NotFound,
                Err(e) => Response::Err(e.to_string()),
            },
            ShardOp::Delete { name } => match self.store.delete(name) {
                Ok(()) => Response::Ok,
                Err(StoreError::NotFound(_)) => Response::NotFound,
                Err(e) => Response::Err(e.to_string()),
            },
            ShardOp::Scrub => match self.store.array_mut().scrub_pass() {
                Ok(summary) => Response::Report(format!(
                    "{{\"shard\":{},\"stripes\":{},\"checksum_catches\":{},\
                     \"degraded_reads\":{},\"read_repairs\":{},\
                     \"parity_checked\":{},\"parity_mismatches\":{},\
                     \"parity_repairs\":{}}}",
                    self.id,
                    summary.stripes,
                    summary.checksum_catches,
                    summary.degraded_reads,
                    summary.read_repairs,
                    summary.parity_checked,
                    summary.parity_mismatches,
                    summary.parity_repairs,
                )),
                Err(e) => Response::Err(format!(
                    "shard {} scrub: {}",
                    self.id,
                    json_escape(&e.to_string())
                )),
            },
        }
    }

    fn snapshot(&self, ops_done: u64) -> ShardSnapshot {
        let array = self.store.array();
        ShardSnapshot {
            objects: self.store.list().len(),
            ops_done,
            stats: array.stats().clone(),
            cache: array.schedule_stats(),
            failed_slots: array.failed_slots(),
            spares_remaining: array.spares_remaining(),
            last_replay: array.last_replay(),
        }
    }
}

/// Spawn the worker thread for one shard over the production engine.
pub(crate) fn spawn_shard(
    id: usize,
    store: ShardStore,
    queue_cap: usize,
    metrics: Arc<ServerMetrics>,
) -> Shard {
    let queue = Arc::new(ShardQueue::new(queue_cap));
    let snapshot = Arc::new(Mutex::named(
        "server.shard.snapshot",
        ShardSnapshot::default(),
    ));
    let engine = StoreEngine::new(id, store);
    let worker = spawn_engine_worker(
        format!("dcode-shard-{id}"),
        engine,
        Arc::clone(&queue),
        Arc::clone(&snapshot),
        metrics,
    );
    Shard {
        queue,
        snapshot,
        worker,
    }
}

/// Spawn a shard worker over any [`ShardEngine`]. Publishes an initial
/// snapshot before the first pop so STAT never observes a default
/// snapshot from a live shard.
pub fn spawn_engine_worker<E: ShardEngine>(
    name: String,
    engine: E,
    queue: Arc<ShardQueue>,
    snapshot: Arc<Mutex<ShardSnapshot>>,
    metrics: Arc<ServerMetrics>,
) -> minisim::thread::JoinHandle<()> {
    publish(&snapshot, engine.snapshot(0));
    minisim::thread::Builder::new()
        .name(name)
        .spawn(move || worker_loop(engine, &queue, &snapshot, &metrics))
        .expect("spawn shard worker")
}

fn publish(snapshot: &Mutex<ShardSnapshot>, snap: ShardSnapshot) {
    // The engine snapshot is computed by the caller, so this lock is
    // never held across storage code — a panicking engine cannot poison
    // it. If something else poisoned it, recover: STAT must survive.
    *snapshot.lock().unwrap_or_else(PoisonError::into_inner) = snap;
}

/// Update op counters from the (request, response) pair. Centralized so
/// the stub engines used by the model checker account identically to
/// production.
fn record_op_metrics(metrics: &ServerMetrics, op: &ShardOp, response: &Response) {
    use std::sync::atomic::Ordering::Relaxed;
    match (op, response) {
        (ShardOp::Put { .. }, Response::Ok) => metrics.ops.puts.fetch_add(1, Relaxed),
        (ShardOp::Put { .. }, _) => metrics.ops.errors.fetch_add(1, Relaxed),
        (ShardOp::Get { .. }, Response::Value(_)) => metrics.ops.gets.fetch_add(1, Relaxed),
        (ShardOp::Get { .. }, Response::NotFound) => metrics.ops.not_found.fetch_add(1, Relaxed),
        (ShardOp::Get { .. }, _) => metrics.ops.errors.fetch_add(1, Relaxed),
        (ShardOp::Delete { .. }, Response::Ok) => metrics.ops.deletes.fetch_add(1, Relaxed),
        (ShardOp::Delete { .. }, Response::NotFound) => metrics.ops.not_found.fetch_add(1, Relaxed),
        (ShardOp::Delete { .. }, _) => metrics.ops.errors.fetch_add(1, Relaxed),
        (ShardOp::Scrub, Response::Report(_)) => 0,
        (ShardOp::Scrub, _) => metrics.ops.errors.fetch_add(1, Relaxed),
    };
}

/// Most jobs one queue drain hands the worker. Bounds reply latency for
/// the batch's first op while amortizing the snapshot/publish cost — a
/// saturated queue pays one publish per `MAX_DRAIN` ops, not per op.
const MAX_DRAIN: usize = 32;

fn worker_loop<E: ShardEngine>(
    mut engine: E,
    queue: &ShardQueue,
    snapshot: &Mutex<ShardSnapshot>,
    metrics: &ServerMetrics,
) {
    let mut ops_done = 0u64;
    // Both buffers are reused across drains: a saturated worker allocates
    // nothing per batch.
    let mut batch: Vec<ShardJob> = Vec::new();
    let mut replies: Vec<(mpsc::Sender<Response>, Response)> = Vec::new();
    while queue.pop_batch(&mut batch, MAX_DRAIN) {
        for job in batch.drain(..) {
            let response = engine.execute(&job.op);
            record_op_metrics(metrics, &job.op, &response);
            #[allow(clippy::cast_possible_truncation)]
            let us = job.queued_at.elapsed().as_micros() as u64;
            match &job.op {
                ShardOp::Put { .. } => metrics.put_latency.record(us),
                ShardOp::Get { .. } => metrics.get_latency.record(us),
                ShardOp::Delete { .. } => metrics.delete_latency.record(us),
                ShardOp::Scrub => {}
            }
            ops_done += 1;
            replies.push((job.reply, response));
        }
        // Publish before replying, so anything observable after an ack
        // (snapshot included) already reflects the acked operation; the
        // ack itself comes after the store completed it — an acknowledged
        // PUT is durable in the array before the client sees OK. One
        // publish covers the whole drained batch: it runs after every op
        // in the batch executed and before any reply goes out, so each
        // individual ack still follows a publish reflecting its op. This
        // ordering is the ack-after-durable invariant dcode-race
        // model-checks.
        publish(snapshot, engine.snapshot(ops_done));
        for (reply, response) in replies.drain(..) {
            let _ = reply.send(response);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_faults::MemBackend;

    fn mem_store(cfg: &ShardConfig) -> ShardStore {
        let backend = MemBackend::new(cfg.layout.disks(), shard_blocks(cfg), cfg.block_size);
        build_store(cfg, Box::new(backend), true).unwrap()
    }

    fn small_cfg() -> ShardConfig {
        ShardConfig {
            block_size: 64,
            stripes: 8,
            meta_elements: 4,
            queue_cap: 4,
            ..ShardConfig::default()
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for name in ["a", "obj-17", "c3-k200", ""] {
                let s = shard_of(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(name, shards), "deterministic");
            }
        }
        // FNV-1a("a") = 0xaf63dc4c8601ec8c → known value pins the routing
        // so a future hasher change cannot silently strand stored objects.
        assert_eq!(shard_of("a", 4), (0xaf63_dc4c_8601_ec8c_u64 % 4) as usize);
    }

    #[test]
    fn worker_serves_put_get_delete_and_scrub() {
        let shard = spawn_shard(
            0,
            mem_store(&small_cfg()),
            16,
            Arc::new(ServerMetrics::new()),
        );
        let ask = |op: ShardOp| {
            let (tx, rx) = mpsc::channel();
            shard
                .queue
                .try_push(ShardJob {
                    op,
                    queued_at: Instant::now(),
                    reply: tx,
                })
                .unwrap();
            rx.recv().unwrap()
        };
        assert_eq!(
            ask(ShardOp::Put {
                name: "k".into(),
                value: vec![1, 2, 3],
            }),
            Response::Ok
        );
        assert_eq!(
            ask(ShardOp::Get { name: "k".into() }),
            Response::Value(vec![1, 2, 3])
        );
        let Response::Report(json) = ask(ShardOp::Scrub) else {
            panic!("scrub must report");
        };
        assert!(json.contains("\"shard\":0"));
        assert_eq!(ask(ShardOp::Delete { name: "k".into() }), Response::Ok);
        assert_eq!(ask(ShardOp::Get { name: "k".into() }), Response::NotFound);
        shard.queue.shutdown();
        shard.worker.join().unwrap();
    }

    #[test]
    fn stalled_queue_fills_to_cap_and_rejects_with_depth() {
        let cfg = small_cfg();
        let shard = spawn_shard(
            1,
            mem_store(&cfg),
            cfg.queue_cap,
            Arc::new(ServerMetrics::new()),
        );
        shard.queue.set_stalled(true);
        let mut receivers = Vec::new();
        for i in 0..cfg.queue_cap {
            let (tx, rx) = mpsc::channel();
            shard
                .queue
                .try_push(ShardJob {
                    op: ShardOp::Put {
                        name: format!("k{i}"),
                        value: vec![i as u8],
                    },
                    queued_at: Instant::now(),
                    reply: tx,
                })
                .expect("below cap");
            receivers.push(rx);
        }
        let (tx, _rx) = mpsc::channel();
        let depth = shard
            .queue
            .try_push(ShardJob {
                op: ShardOp::Get { name: "k0".into() },
                queued_at: Instant::now(),
                reply: tx,
            })
            .expect_err("queue full");
        assert_eq!(depth, cfg.queue_cap);
        // Release the worker: every queued put completes and is acked.
        shard.queue.set_stalled(false);
        for rx in receivers {
            assert_eq!(rx.recv().unwrap(), Response::Ok);
        }
        shard.queue.shutdown();
        shard.worker.join().unwrap();
    }

    #[test]
    fn batched_drain_acks_every_queued_put_and_publishes_once_after() {
        // Stall the worker, queue a burst, release: the worker drains the
        // burst as one batch — every put is acked, and the published
        // snapshot reflects the whole batch (not just the first op) by
        // the time the last ack is observed.
        let cfg = small_cfg();
        let shard = spawn_shard(
            3,
            mem_store(&cfg),
            cfg.queue_cap,
            Arc::new(ServerMetrics::new()),
        );
        shard.queue.set_stalled(true);
        let mut receivers = Vec::new();
        for i in 0..cfg.queue_cap {
            let (tx, rx) = mpsc::channel();
            shard
                .queue
                .try_push(ShardJob {
                    op: ShardOp::Put {
                        name: format!("burst{i}"),
                        value: vec![i as u8; 100],
                    },
                    queued_at: Instant::now(),
                    reply: tx,
                })
                .expect("below cap");
            receivers.push(rx);
        }
        shard.queue.set_stalled(false);
        for rx in receivers {
            assert_eq!(rx.recv().unwrap(), Response::Ok);
        }
        let snap = shard.snapshot.lock().unwrap().clone();
        assert_eq!(snap.ops_done, cfg.queue_cap as u64);
        assert_eq!(snap.objects, cfg.queue_cap);
        shard.queue.shutdown();
        shard.worker.join().unwrap();
    }

    #[test]
    fn snapshot_tracks_store_state() {
        let shard = spawn_shard(
            2,
            mem_store(&small_cfg()),
            16,
            Arc::new(ServerMetrics::new()),
        );
        let (tx, rx) = mpsc::channel();
        shard
            .queue
            .try_push(ShardJob {
                op: ShardOp::Put {
                    name: "seen".into(),
                    value: vec![9; 200],
                },
                queued_at: Instant::now(),
                reply: tx,
            })
            .unwrap();
        assert_eq!(rx.recv().unwrap(), Response::Ok);
        let snap = shard.snapshot.lock().unwrap().clone();
        assert_eq!(snap.objects, 1);
        assert_eq!(snap.ops_done, 1);
        assert!(snap.stats.element_writes > 0);
        let json = snap.to_json(shard.queue.depth());
        assert!(json.contains("\"objects\":1"), "{json}");
        shard.queue.shutdown();
        shard.worker.join().unwrap();
    }

    #[test]
    fn build_store_reattaches_existing_content() {
        // Fresh store on a mem backend, write, tear down, re-attach over
        // the same medium bytes.
        let cfg = small_cfg();
        let mut store = mem_store(&cfg);
        store.put("persist", &[5u8; 300]).unwrap();
        // Steal the medium back out of the array (journal region
        // included — reattach replays it).
        let disks = cfg.layout.disks();
        let blocks = shard_blocks(&cfg);
        let mut medium = MemBackend::new(disks, blocks, cfg.block_size);
        for d in 0..disks {
            let mut buf = vec![0u8; cfg.block_size];
            for b in 0..blocks {
                store
                    .array_mut()
                    .backend_mut()
                    .read_block(d, b, &mut buf)
                    .unwrap();
                medium.write_block(d, b, &buf).unwrap();
            }
        }
        let mut reopened = build_store(&cfg, Box::new(medium), false).unwrap();
        assert_eq!(reopened.get("persist").unwrap(), vec![5u8; 300]);
    }
}
