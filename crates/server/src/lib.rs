#![warn(missing_docs)]
//! # dcode-server
//!
//! A sharded TCP object server over the workspace's RAID-6 stack — the
//! "dependable cloud storage" deployment the paper's introduction
//! motivates, realized end to end: clients speak a small length-prefixed
//! binary protocol to a front end that routes each object (FNV-1a of its
//! name) to one of N **shards**, each an independent
//! [`ObjectStore`](dcode_array::ObjectStore) over a
//! [`ResilientArray`](dcode_array::ResilientArray) with its own schedule
//! cache, retry policy, CRC read-repair, and hot-spare rebuild.
//!
//! The pieces:
//!
//! * [`protocol`] — the wire format: `u32`-length-prefixed frames,
//!   `PUT`/`GET`/`DELETE`/`SCRUB`/`STAT` requests, typed `BUSY`
//!   backpressure responses;
//! * [`shard`] — bounded per-shard queues in front of worker threads that
//!   own the stores; `try_push` on a full queue rejects immediately;
//! * [`server`] — the accept loop and connection handlers, run as
//!   detached jobs on a [`minipool::WorkerPool`] whose size is the
//!   connection cap;
//! * [`metrics`] — lock-free log₂ latency histograms and op counters,
//!   rendered into the `STAT` JSON document alongside per-shard
//!   snapshots (queue depth, schedule-cache hit rate, degraded reads…);
//! * [`client`] — a blocking protocol client;
//! * [`loadgen`] — an open-loop load generator with exact client-side
//!   percentiles and an acknowledged-write ledger whose read-back
//!   verification must come up lossless even with a fault-injected
//!   shard.
//!
//! ## Quick example
//!
//! ```
//! use dcode_server::{
//!     shard_blocks, Client, Response, Server, ServerConfig, ShardBackend, ShardConfig,
//! };
//! use dcode_faults::MemBackend;
//!
//! let config = ServerConfig {
//!     shards: 2,
//!     shard: ShardConfig { block_size: 64, stripes: 8, meta_elements: 4, ..ShardConfig::default() },
//!     ..ServerConfig::default()
//! };
//! let backends: Vec<ShardBackend> = (0..2)
//!     .map(|_| {
//!         Box::new(MemBackend::new(
//!             config.shard.layout.disks(),
//!             shard_blocks(&config.shard),
//!             config.shard.block_size,
//!         )) as ShardBackend
//!     })
//!     .collect();
//! let server = Server::start(&config, backends, true).unwrap();
//! let mut client = Client::connect(("127.0.0.1", server.port())).unwrap();
//! client.put("hello", b"world").unwrap();
//! assert_eq!(client.get("hello").unwrap(), Response::Value(b"world".to_vec()));
//! ```

pub mod client;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod shard;

pub use client::Client;
pub use loadgen::{LoadgenConfig, LoadgenReport, Percentiles};
pub use metrics::{Histogram, ServerMetrics};
pub use protocol::{read_frame, write_frame, ProtoError, Request, Response, MAX_FRAME};
pub use server::{Server, ServerConfig};
pub use shard::{
    build_store, shard_blocks, shard_of, spawn_engine_worker, ShardBackend, ShardConfig,
    ShardEngine, ShardJob, ShardOp, ShardQueue, ShardSnapshot, ShardStore, StoreEngine,
};
