//! A blocking client for the dcode wire protocol: one TCP connection,
//! one in-flight request at a time. The load generator and the
//! integration tests drive the server exclusively through this type, so
//! it exercises exactly the code path a real client would.

use crate::protocol::{read_frame, write_frame, Request, Response};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a dcode server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `("127.0.0.1", port)`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one request and wait for its response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let body = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Store `value` under `name` (replacing any existing object).
    pub fn put(&mut self, name: &str, value: &[u8]) -> io::Result<Response> {
        self.request(&Request::Put {
            name: name.to_string(),
            value: value.to_vec(),
        })
    }

    /// Fetch the object named `name`.
    pub fn get(&mut self, name: &str) -> io::Result<Response> {
        self.request(&Request::Get {
            name: name.to_string(),
        })
    }

    /// Delete the object named `name`.
    pub fn delete(&mut self, name: &str) -> io::Result<Response> {
        self.request(&Request::Delete {
            name: name.to_string(),
        })
    }

    /// Scrub every shard; returns the merged JSON report.
    pub fn scrub(&mut self) -> io::Result<Response> {
        self.request(&Request::Scrub)
    }

    /// Fetch the server's stat document.
    pub fn stat(&mut self) -> io::Result<Response> {
        self.request(&Request::Stat)
    }
}
