//! An open-loop load generator for the dcode server, with exact
//! client-side percentiles and an acknowledged-write ledger.
//!
//! Open loop means each connection fires requests on a fixed schedule
//! (`rate_ops_s` across all connections) and measures latency from the
//! *intended* send time, not the actual one — so a slow server inflates
//! the tail instead of silently slowing the generator down (the
//! coordinated-omission trap a closed loop falls into). `rate_ops_s = 0`
//! degenerates to a closed loop for max-throughput runs.
//!
//! Correctness checking rides along: every connection keeps the last
//! value the server **acknowledged** per key, and a verification phase
//! reads every such key back after the run. `verify_lost > 0` means an
//! acked write was lost — the one number that must be zero even with a
//! fault-injected shard in the array.
//!
//! `Busy` responses are retried with linear backoff and counted
//! separately; the retries stay inside the op's latency sample, so
//! backpressure shows up in the tail where it belongs.

use crate::client::Client;
use crate::metrics::json_escape;
use crate::protocol::Response;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io;
use std::time::{Duration, Instant};

/// Knobs for one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server host.
    pub host: String,
    /// Server port.
    pub port: u16,
    /// Concurrent connections (threads).
    pub conns: usize,
    /// Total operations across all connections (excludes verification).
    pub ops: u64,
    /// Value size per PUT, bytes.
    pub value_bytes: usize,
    /// Distinct keys per connection (its private namespace).
    pub keys_per_conn: usize,
    /// Fraction of ops that are PUTs; the rest are GETs.
    pub put_fraction: f64,
    /// Target offered load, ops/s across all connections; 0 = closed
    /// loop (as fast as the server acks).
    pub rate_ops_s: u64,
    /// RNG seed (key choice, op mix, value bytes).
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            host: "127.0.0.1".into(),
            port: 0,
            conns: 8,
            ops: 100_000,
            value_bytes: 1024,
            keys_per_conn: 64,
            put_fraction: 0.5,
            rate_ops_s: 0,
            seed: 1,
        }
    }
}

/// What one run measured.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Operations completed (acked, including `NotFound` GETs).
    pub ops: u64,
    /// PUTs acknowledged.
    pub puts: u64,
    /// GETs answered (value or not-found).
    pub gets: u64,
    /// `Busy` rejections absorbed by retry.
    pub busy_retries: u64,
    /// Hard errors (protocol or store).
    pub errors: u64,
    /// GETs during the run whose value contradicted the acked ledger.
    pub mismatches: u64,
    /// Wall-clock seconds for the op phase.
    pub elapsed_s: f64,
    /// `ops / elapsed_s`.
    pub achieved_ops_s: f64,
    /// PUT latency percentiles, microseconds (exact, client-side).
    pub put_us: Percentiles,
    /// GET latency percentiles, microseconds.
    pub get_us: Percentiles,
    /// Keys with at least one acked PUT, all re-read in verification.
    pub verify_checked: u64,
    /// Acked keys whose read-back failed or mismatched. Must be 0.
    pub verify_lost: u64,
}

/// Exact percentiles over one op class's samples.
#[derive(Clone, Copy, Default, Debug)]
pub struct Percentiles {
    /// Sample count.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile — `None` (JSON `null`) below 1000 samples,
    /// where the tail rank collapses onto the max and reads as a real
    /// measurement when it is not one.
    pub p999: Option<u64>,
    /// Maximum.
    pub max: u64,
}

impl Percentiles {
    /// Compute from unsorted samples.
    pub fn of(mut samples: Vec<u64>) -> Percentiles {
        if samples.is_empty() {
            return Percentiles::default();
        }
        samples.sort_unstable();
        let pick = |q: f64| {
            #[allow(clippy::cast_sign_loss, clippy::cast_precision_loss)]
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1]
        };
        Percentiles {
            count: samples.len() as u64,
            p50: pick(0.50),
            p99: pick(0.99),
            p999: (samples.len() >= 1000).then(|| pick(0.999)),
            max: *samples.last().expect("non-empty"),
        }
    }

    fn json(&self) -> String {
        let p999 = self
            .p999
            .map_or_else(|| "null".to_string(), |v| v.to_string());
        format!(
            "{{\"count\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{p999},\"max_us\":{}}}",
            self.count, self.p50, self.p99, self.max
        )
    }
}

impl LoadgenReport {
    /// The `BENCH_server.json` document for this run.
    pub fn to_json(&self, cfg: &LoadgenConfig, server_stat: Option<&str>) -> String {
        let server = server_stat.map_or_else(|| "null".to_string(), str::to_string);
        format!(
            "{{\n  \"config\":{{\"host\":\"{}\",\"port\":{},\"conns\":{},\"ops\":{},\
             \"value_bytes\":{},\"keys_per_conn\":{},\"put_fraction\":{},\"rate_ops_s\":{},\"seed\":{}}},\n  \
             \"ops\":{},\n  \"puts\":{},\n  \"gets\":{},\n  \"busy_retries\":{},\n  \"errors\":{},\n  \
             \"mismatches\":{},\n  \"elapsed_s\":{:.3},\n  \"achieved_ops_s\":{:.1},\n  \
             \"put_us\":{},\n  \"get_us\":{},\n  \
             \"verify_checked\":{},\n  \"verify_lost\":{},\n  \"server_stat\":{}\n}}",
            json_escape(&cfg.host),
            cfg.port,
            cfg.conns,
            cfg.ops,
            cfg.value_bytes,
            cfg.keys_per_conn,
            cfg.put_fraction,
            cfg.rate_ops_s,
            cfg.seed,
            self.ops,
            self.puts,
            self.gets,
            self.busy_retries,
            self.errors,
            self.mismatches,
            self.elapsed_s,
            self.achieved_ops_s,
            self.put_us.json(),
            self.get_us.json(),
            self.verify_checked,
            self.verify_lost,
            server,
        )
    }
}

/// What one connection thread brings home.
struct ThreadOutcome {
    puts: u64,
    gets: u64,
    busy_retries: u64,
    errors: u64,
    mismatches: u64,
    put_samples: Vec<u64>,
    get_samples: Vec<u64>,
    verify_checked: u64,
    verify_lost: u64,
}

/// Deterministic value for key `key` at version `version`: reproducible
/// on the verification read without storing every payload.
fn value_for(seed: u64, key: &str, version: u64, len: usize) -> Vec<u8> {
    let mut h = dcode_core::Fnv1a::new();
    h.word(seed);
    h.bytes(key.as_bytes());
    h.word(version);
    let mut state = h.finish() | 1;
    (0..len)
        .map(|_| {
            // xorshift64* keeps the fill cheap and well-mixed.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

/// Send with bounded-backoff retry on `Busy`. Returns the final response
/// and how many rejections were absorbed.
fn send_with_retry(
    client: &mut Client,
    mut send: impl FnMut(&mut Client) -> io::Result<Response>,
) -> io::Result<(Response, u64)> {
    let mut busy = 0u64;
    loop {
        match send(client)? {
            Response::Busy { .. } => {
                busy += 1;
                // Linear backoff, capped: the server told us the shard
                // queue is full, so give the worker time to drain.
                std::thread::sleep(Duration::from_micros(200 * busy.min(50)));
            }
            other => return Ok((other, busy)),
        }
    }
}

fn run_connection(cfg: &LoadgenConfig, thread: usize, ops: u64) -> io::Result<ThreadOutcome> {
    let mut client = Client::connect((cfg.host.as_str(), cfg.port))?;
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(thread as u64 + 1));
    // key → (version, acked) ledger. `acked` flips only on an OK.
    let mut ledger: HashMap<usize, u64> = HashMap::new();
    let mut versions: HashMap<usize, u64> = HashMap::new();
    let mut out = ThreadOutcome {
        puts: 0,
        gets: 0,
        busy_retries: 0,
        errors: 0,
        mismatches: 0,
        put_samples: Vec::with_capacity(ops as usize / 2 + 1),
        get_samples: Vec::with_capacity(ops as usize / 2 + 1),
        verify_checked: 0,
        verify_lost: 0,
    };
    let start = Instant::now();
    // Per-thread inter-arrival gap for the open loop.
    let gap = if cfg.rate_ops_s == 0 {
        Duration::ZERO
    } else {
        Duration::from_secs_f64(cfg.conns as f64 / cfg.rate_ops_s as f64)
    };
    for i in 0..ops {
        #[allow(clippy::cast_precision_loss)]
        let intended = start + Duration::from_secs_f64(gap.as_secs_f64() * i as f64);
        let now = Instant::now();
        if now < intended {
            std::thread::sleep(intended - now);
        }
        let clock = if cfg.rate_ops_s == 0 {
            Instant::now()
        } else {
            intended
        };
        let key_id = rng.gen_range(0usize..cfg.keys_per_conn);
        let key = format!("c{thread}-k{key_id}");
        if rng.gen_bool(cfg.put_fraction) {
            let version = versions.get(&key_id).copied().unwrap_or(0) + 1;
            versions.insert(key_id, version);
            let value = value_for(cfg.seed, &key, version, cfg.value_bytes);
            let (resp, busy) = send_with_retry(&mut client, |c| c.put(&key, &value))?;
            out.busy_retries += busy;
            match resp {
                Response::Ok => {
                    ledger.insert(key_id, version);
                    out.puts += 1;
                }
                _ => out.errors += 1,
            }
            #[allow(clippy::cast_possible_truncation)]
            out.put_samples.push(clock.elapsed().as_micros() as u64);
        } else {
            let (resp, busy) = send_with_retry(&mut client, |c| c.get(&key))?;
            out.busy_retries += busy;
            match resp {
                Response::Value(bytes) => {
                    out.gets += 1;
                    if let Some(&acked) = ledger.get(&key_id) {
                        let expect = value_for(cfg.seed, &key, acked, cfg.value_bytes);
                        if bytes != expect {
                            out.mismatches += 1;
                        }
                    }
                }
                Response::NotFound => {
                    out.gets += 1;
                    if ledger.contains_key(&key_id) {
                        // An acked write has vanished mid-run.
                        out.mismatches += 1;
                    }
                }
                _ => out.errors += 1,
            }
            #[allow(clippy::cast_possible_truncation)]
            out.get_samples.push(clock.elapsed().as_micros() as u64);
        }
    }
    // Verification: every acked key must read back as its acked value.
    for (&key_id, &version) in &ledger {
        let key = format!("c{thread}-k{key_id}");
        out.verify_checked += 1;
        let (resp, busy) = send_with_retry(&mut client, |c| c.get(&key))?;
        out.busy_retries += busy;
        match resp {
            Response::Value(bytes)
                if bytes == value_for(cfg.seed, &key, version, cfg.value_bytes) => {}
            _ => out.verify_lost += 1,
        }
    }
    Ok(out)
}

/// Run the generator against a live server and aggregate the report.
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    assert!(cfg.conns > 0 && cfg.keys_per_conn > 0);
    assert!((0.0..=1.0).contains(&cfg.put_fraction));
    let started = Instant::now();
    let per_thread = cfg.ops / cfg.conns as u64;
    let remainder = cfg.ops % cfg.conns as u64;
    let handles: Vec<_> = (0..cfg.conns)
        .map(|t| {
            let cfg = cfg.clone();
            let ops = per_thread + u64::from((t as u64) < remainder);
            std::thread::Builder::new()
                .name(format!("loadgen-{t}"))
                .spawn(move || run_connection(&cfg, t, ops))
                .expect("spawn loadgen thread")
        })
        .collect();
    let mut put_samples = Vec::new();
    let mut get_samples = Vec::new();
    let mut report = LoadgenReport {
        ops: 0,
        puts: 0,
        gets: 0,
        busy_retries: 0,
        errors: 0,
        mismatches: 0,
        elapsed_s: 0.0,
        achieved_ops_s: 0.0,
        put_us: Percentiles::default(),
        get_us: Percentiles::default(),
        verify_checked: 0,
        verify_lost: 0,
    };
    let mut first_error = None;
    for handle in handles {
        match handle.join().expect("loadgen thread panicked") {
            Ok(outcome) => {
                report.puts += outcome.puts;
                report.gets += outcome.gets;
                report.busy_retries += outcome.busy_retries;
                report.errors += outcome.errors;
                report.mismatches += outcome.mismatches;
                report.verify_checked += outcome.verify_checked;
                report.verify_lost += outcome.verify_lost;
                put_samples.extend(outcome.put_samples);
                get_samples.extend(outcome.get_samples);
            }
            Err(e) => first_error = first_error.or(Some(e)),
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    report.ops = report.puts + report.gets + report.errors;
    report.elapsed_s = started.elapsed().as_secs_f64();
    #[allow(clippy::cast_precision_loss)]
    {
        report.achieved_ops_s = if report.elapsed_s > 0.0 {
            report.ops as f64 / report.elapsed_s
        } else {
            0.0
        };
    }
    report.put_us = Percentiles::of(put_samples);
    report.get_us = Percentiles::of(get_samples);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_on_known_samples() {
        let p = Percentiles::of((1..=1000u64).collect());
        assert_eq!(p.count, 1000);
        assert_eq!(p.p50, 500);
        assert_eq!(p.p99, 990);
        assert_eq!(p.p999, Some(999));
        assert_eq!(p.max, 1000);
        let empty = Percentiles::of(Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0);
    }

    #[test]
    fn p999_is_null_below_a_thousand_samples() {
        let p = Percentiles::of((1..=999u64).collect());
        assert_eq!(p.count, 999);
        assert_eq!(p.p999, None, "999 samples cannot resolve a p999");
        assert!(p.json().contains("\"p999_us\":null"), "{}", p.json());
        let enough = Percentiles::of((1..=1000u64).collect());
        assert!(
            enough.json().contains("\"p999_us\":999"),
            "{}",
            enough.json()
        );
    }

    #[test]
    fn values_are_deterministic_and_version_sensitive() {
        let a = value_for(1, "k", 1, 256);
        assert_eq!(a, value_for(1, "k", 1, 256));
        assert_ne!(a, value_for(1, "k", 2, 256));
        assert_ne!(a, value_for(2, "k", 1, 256));
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn report_json_has_the_headline_numbers() {
        let report = LoadgenReport {
            ops: 10,
            puts: 4,
            gets: 6,
            busy_retries: 1,
            errors: 0,
            mismatches: 0,
            elapsed_s: 0.5,
            achieved_ops_s: 20.0,
            put_us: Percentiles {
                count: 4,
                p50: 100,
                p99: 200,
                p999: None,
                max: 200,
            },
            get_us: Percentiles::default(),
            verify_checked: 3,
            verify_lost: 0,
        };
        let json = report.to_json(&LoadgenConfig::default(), None);
        assert!(json.contains("\"verify_lost\":0"));
        assert!(json.contains("\"p999_us\":null"));
        assert!(json.contains("\"server_stat\":null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
