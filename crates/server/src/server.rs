//! The TCP front end: accept loop, connection handlers on a
//! [`minipool::WorkerPool`], and request routing to the shards.
//!
//! Threading model:
//!
//! * one **accept thread** takes connections off the listener and hands
//!   each to the pool as a detached job ([`minipool::WorkerPool::submit`]);
//!   the pool is pre-grown to `max_conns`, so the pool size *is* the
//!   concurrent-connection cap — excess connections are accepted but wait
//!   in the pool's queue until a handler worker frees up;
//! * one **worker thread per shard** owns that shard's store outright
//!   (see [`crate::shard`]);
//! * connection handlers do no storage work: they decode a frame, route
//!   it by [`shard_of`], enqueue, and wait for the shard's reply. A full
//!   shard queue is reported to the client as `Busy` without blocking.
//!
//! `STAT` never queues: it renders the shards' published snapshots and
//! the shared metrics, so observability survives overload — exactly when
//! it is needed.
//!
//! Shutdown: the flag flips, every registered connection is
//! `Shutdown::Both`-ed (unblocking handler reads mid-`recv` without
//! read-timeout desync), a dummy connect unblocks `accept`, shard queues
//! close, and every thread is joined. Dropping the [`Server`] does all of
//! this too.

use crate::metrics::ServerMetrics;
use crate::protocol::{read_frame, write_frame, ProtoError, Request, Response};
use crate::shard::{
    build_store, shard_of, spawn_shard, Shard, ShardBackend, ShardConfig, ShardJob, ShardOp,
    ShardQueue, ShardSnapshot,
};
use minisim::sync::{mpsc, Arc, Mutex};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::PoisonError;
use std::time::Instant;

/// Everything needed to start a server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP port; 0 asks the OS for an ephemeral one (read it back with
    /// [`Server::port`]).
    pub port: u16,
    /// Number of shards (= backends that must be supplied).
    pub shards: usize,
    /// Concurrent-connection cap (pool workers serving handlers).
    pub max_conns: usize,
    /// Per-shard array geometry and queue bound.
    pub shard: ShardConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            shards: 4,
            max_conns: 32,
            shard: ShardConfig::default(),
        }
    }
}

struct ServerInner {
    shutdown: AtomicBool,
    queues: Vec<Arc<ShardQueue>>,
    snapshots: Vec<Arc<Mutex<ShardSnapshot>>>,
    metrics: Arc<ServerMetrics>,
    /// One clone per accepted connection, so shutdown can unblock reads.
    conns: Mutex<Vec<TcpStream>>,
}

/// A running server; dropping it shuts everything down and joins every
/// thread.
pub struct Server {
    port: u16,
    inner: Arc<ServerInner>,
    accept: Option<minisim::thread::JoinHandle<()>>,
    shards: Vec<Shard>,
    /// Dropped last: joining the pool requires the handlers to have been
    /// unblocked by the shutdown sequence.
    pool: Option<Arc<minipool::WorkerPool>>,
}

impl Server {
    /// Bind, build one store per backend (`fresh` formats, otherwise
    /// attaches to existing content), spawn the shard workers and the
    /// accept loop. `backends.len()` must equal `config.shards`.
    pub fn start(
        config: &ServerConfig,
        backends: Vec<ShardBackend>,
        fresh: bool,
    ) -> Result<Server, String> {
        assert!(config.shards > 0 && config.max_conns > 0);
        assert_eq!(backends.len(), config.shards, "one backend per shard");
        let listener = TcpListener::bind(("127.0.0.1", config.port))
            .map_err(|e| format!("bind port {}: {e}", config.port))?;
        let port = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?
            .port();

        let metrics = Arc::new(ServerMetrics::new());
        let mut shards = Vec::with_capacity(config.shards);
        for (id, backend) in backends.into_iter().enumerate() {
            let store = build_store(&config.shard, backend, fresh)
                .map_err(|e| format!("shard {id}: {e}"))?;
            shards.push(spawn_shard(
                id,
                store,
                config.shard.queue_cap,
                Arc::clone(&metrics),
            ));
        }

        let inner = Arc::new(ServerInner {
            shutdown: AtomicBool::new(false),
            queues: shards.iter().map(|s| Arc::clone(&s.queue)).collect(),
            snapshots: shards.iter().map(|s| Arc::clone(&s.snapshot)).collect(),
            metrics,
            conns: Mutex::named("server.conns", Vec::new()),
        });

        let pool = Arc::new(minipool::WorkerPool::with_workers(config.max_conns));
        let accept = {
            let inner = Arc::clone(&inner);
            let pool = Arc::clone(&pool);
            minisim::thread::Builder::new()
                .name("dcode-accept".into())
                .spawn(move || accept_loop(&listener, &inner, &pool))
                .map_err(|e| format!("spawn accept thread: {e}"))?
        };

        Ok(Server {
            port,
            inner,
            accept: Some(accept),
            shards,
            pool: Some(pool),
        })
    }

    /// The bound TCP port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The stat document, identical to what a `STAT` request returns.
    pub fn stat_json(&self) -> String {
        stat_document(&self.inner)
    }

    /// Park (or release) one shard's worker — the deterministic
    /// backpressure hook for tests and demos: a stalled shard stops
    /// draining its queue, so `queue_cap` more requests fill it and the
    /// next one is rejected `Busy`.
    pub fn stall_shard(&self, shard: usize, stalled: bool) {
        self.inner.queues[shard].set_stalled(stalled);
    }

    /// Stop accepting, unblock and join every thread. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Unblock handler reads. Recover poison: a panicked handler must
        // not be able to wedge shutdown.
        for conn in self
            .inner
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Close shard queues and join the workers.
        for shard in &self.shards {
            shard.queue.shutdown();
        }
        for shard in std::mem::take(&mut self.shards) {
            let _ = shard.worker.join();
        }
        // Joining the pool (drop) reaps the handler workers; their jobs
        // exit on the closed sockets / closed reply channels.
        self.pool = None;
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<ServerInner>, pool: &minipool::WorkerPool) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(clone) = stream.try_clone() {
            inner
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(clone);
        }
        let inner = Arc::clone(inner);
        // A rejected submission means the pool is shutting down; dropping
        // the job closes the stream, which is the right refusal.
        let _ = pool.submit(move || handle_connection(stream, &inner));
    }
}

fn handle_connection(mut stream: TcpStream, inner: &ServerInner) {
    let _ = stream.set_nodelay(true);
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Clean close, torn frame, or shutdown-unblocked read: the
        // connection is done either way.
        let Ok(Some(body)) = read_frame(&mut stream) else {
            return;
        };
        let response = match Request::decode(&body) {
            Ok(request) => dispatch(request, inner),
            Err(e) => {
                inner.metrics.ops.errors.fetch_add(1, Ordering::Relaxed);
                Response::Err(protocol_error_message(&e))
            }
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

fn protocol_error_message(e: &ProtoError) -> String {
    format!("bad request: {e}")
}

/// Route one decoded request and produce its response.
fn dispatch(request: Request, inner: &ServerInner) -> Response {
    match request {
        Request::Put { name, value } => enqueue_keyed(
            inner,
            ShardOp::Put {
                name: name.clone(),
                value,
            },
            &name,
        ),
        Request::Get { name } => enqueue_keyed(inner, ShardOp::Get { name: name.clone() }, &name),
        Request::Delete { name } => {
            enqueue_keyed(inner, ShardOp::Delete { name: name.clone() }, &name)
        }
        Request::Scrub => scrub_all(inner),
        Request::Stat => {
            inner.metrics.ops.stats.fetch_add(1, Ordering::Relaxed);
            Response::Report(stat_document(inner))
        }
    }
}

/// Enqueue a single-shard op on the shard owning `name`; translate a full
/// queue into `Busy` and a dead worker into an error.
fn enqueue_keyed(inner: &ServerInner, op: ShardOp, name: &str) -> Response {
    let shard = shard_of(name, inner.queues.len());
    let (reply, result) = mpsc::channel();
    let job = ShardJob {
        op,
        queued_at: Instant::now(),
        reply,
    };
    match inner.queues[shard].try_push(job) {
        Ok(()) => match result.recv() {
            Ok(response) => response,
            Err(_) => Response::Err(format!("shard {shard} terminated")),
        },
        Err(depth) => {
            inner.metrics.ops.busy.fetch_add(1, Ordering::Relaxed);
            busy(shard, depth)
        }
    }
}

#[allow(clippy::cast_possible_truncation)]
fn busy(shard: usize, depth: usize) -> Response {
    Response::Busy {
        shard: shard.min(u16::MAX as usize) as u16,
        depth: depth.min(u32::MAX as usize) as u32,
    }
}

/// Fan a scrub out to every shard and merge the per-shard reports. All
/// shards must accept the job; one full queue fails the whole scrub with
/// `Busy` (a scrub against an overloaded array is the wrong time anyway).
fn scrub_all(inner: &ServerInner) -> Response {
    let started = Instant::now();
    let mut pending = Vec::with_capacity(inner.queues.len());
    for (shard, queue) in inner.queues.iter().enumerate() {
        let (reply, result) = mpsc::channel();
        let job = ShardJob {
            op: ShardOp::Scrub,
            queued_at: Instant::now(),
            reply,
        };
        match queue.try_push(job) {
            Ok(()) => pending.push((shard, result)),
            Err(depth) => {
                // Shards already scrubbing just finish; their reports are
                // dropped with the channel.
                inner.metrics.ops.busy.fetch_add(1, Ordering::Relaxed);
                return busy(shard, depth);
            }
        }
    }
    let mut reports = Vec::with_capacity(pending.len());
    for (shard, result) in pending {
        match result.recv() {
            Ok(Response::Report(json)) => reports.push(json),
            Ok(other) => return other,
            Err(_) => return Response::Err(format!("shard {shard} terminated")),
        }
    }
    inner.metrics.ops.scrubs.fetch_add(1, Ordering::Relaxed);
    #[allow(clippy::cast_possible_truncation)]
    let us = started.elapsed().as_micros() as u64;
    inner.metrics.scrub_latency.record(us);
    Response::Report(format!("{{\"shards\":[{}]}}", reports.join(",")))
}

/// Render the stat document: global counters + latency summaries + one
/// entry per shard, with live queue depths.
fn stat_document(inner: &ServerInner) -> String {
    let per_shard: Vec<String> = inner
        .snapshots
        .iter()
        .zip(&inner.queues)
        .map(|(snapshot, queue)| {
            // Recover poison: STAT is the "observability survives
            // overload" path, and a worker panic must not take it down.
            let snap = snapshot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone();
            snap.to_json(queue.depth())
        })
        .collect();
    format!(
        "{{\"shards\":{},{},\"per_shard\":[{}]}}",
        inner.queues.len(),
        inner.metrics.core_json(),
        per_shard.join(","),
    )
}
