//! Server crash recovery: a shard worker is killed mid-PUT by an armed
//! crash point (panic unwinds the worker thread with the write half
//! landed), the un-flushed volatile write cache is dropped at the power
//! cycle, and the server restarts by *attaching* over the surviving
//! medium — which replays the parity-intent journal before the shard
//! accepts a single op. The invariants under test:
//!
//! * every PUT acknowledged before the crash reads back its acked value
//!   through the restarted server;
//! * a post-restart SCRUB finds zero parity-inconsistent stripes (the
//!   write hole stays closed);
//! * STAT reports the journal replay outcome for the new mount.

use dcode_faults::{silence_crash_panics, FaultInjector, FaultPlan, MemBackend, SharedInjector};
use dcode_server::{shard_blocks, Client, Response, Server, ServerConfig, ShardConfig};
use std::collections::HashMap;

fn test_config() -> ServerConfig {
    ServerConfig {
        port: 0,
        shards: 1,
        max_conns: 4,
        shard: ShardConfig {
            block_size: 64,
            stripes: 16,
            meta_elements: 4,
            queue_cap: 16,
            ..ShardConfig::default()
        },
    }
}

fn value_of(cycle: usize, key: usize) -> Vec<u8> {
    let tag = (cycle * 131 + key * 17 + 5) as u8;
    vec![tag; 70 + (cycle * 31 + key * 13) % 60]
}

#[test]
fn shard_killed_mid_put_recovers_every_acked_write() {
    silence_crash_panics();
    let cfg = test_config();
    let shard_cfg = &cfg.shard;

    // One shared medium for the whole test: a volatile write cache drops
    // anything un-flushed at each power cycle, so an ack-before-durable
    // bug anywhere in the PUT path shows up as lost acked data here.
    let medium = MemBackend::new(
        shard_cfg.layout.disks(),
        shard_blocks(shard_cfg),
        shard_cfg.block_size,
    );
    let plan = FaultPlan {
        volatile_cache: true,
        ..FaultPlan::quiet(11)
    };
    let handle = SharedInjector::new(FaultInjector::new(medium, plan));

    // Acked ledger across server generations: key id -> (cycle, key).
    let mut acked: HashMap<String, Vec<u8>> = HashMap::new();
    let mut replayed_mounts = 0u32;

    // Crash offsets in backend-write units, armed right before the victim
    // PUT of each cycle. A PUT here costs ~80 backend writes across
    // several journaled segments, so these land at different phases of
    // the write (before commit, between commit and retire, mid-retire…).
    let crash_offsets = [3u64, 18, 37, 55, 71];

    for (cycle, &offset) in crash_offsets.iter().enumerate() {
        let fresh = cycle == 0;
        let server = Server::start(&cfg, vec![Box::new(handle.clone())], fresh)
            .expect("server starts over the surviving medium");
        let mut client = Client::connect(("127.0.0.1", server.port())).expect("connect");

        if !fresh {
            // Everything acked before the last crash must still be there.
            for (key, value) in &acked {
                assert_eq!(
                    client.get(key).expect("verify get"),
                    Response::Value(value.clone()),
                    "acked key {key} lost across crash + restart"
                );
            }
            // The write hole stays closed: no parity-inconsistent stripe
            // survives the journal replay.
            let Response::Report(scrub) = client.scrub().expect("scrub io") else {
                panic!("scrub must report");
            };
            assert!(
                scrub.contains("\"parity_mismatches\":0"),
                "post-crash scrub found a write hole: {scrub}"
            );
            assert!(scrub.contains("\"parity_checked\":"), "{scrub}");
            // STAT surfaces the mount's replay outcome.
            let Response::Report(stat) = client.stat().expect("stat io") else {
                panic!("stat must report");
            };
            assert!(
                stat.contains("\"journal_last_replay\":\"")
                    && !stat.contains("\"journal_last_replay\":\"none\""),
                "restarted shard must report its replay outcome: {stat}"
            );
            if stat.contains("\"journal_last_replay\":\"replayed\"") {
                replayed_mounts += 1;
            }
        }

        // A few PUTs that must survive whatever happens next.
        for key_id in 0..3 {
            let key = format!("c{cycle}-k{key_id}");
            let value = value_of(cycle, key_id);
            match client.put(&key, &value).expect("put io") {
                Response::Ok => {
                    acked.insert(key, value);
                }
                other => panic!("healthy put failed: {other:?}"),
            }
        }

        // Kill the worker mid-PUT: the armed crash point panics inside a
        // backend write, unwinding the shard worker with the operation
        // half-applied. The client sees an error, never an OK — so the
        // victim write is *not* in the acked ledger.
        handle.lock().arm_crash(offset);
        let victim = format!("victim-{cycle}");
        match client.put(&victim, &value_of(99, cycle)).expect("put io") {
            Response::Ok => {
                // Offset outlived the whole PUT: it was acked (and thus
                // durable); the crash stays armed and is cleared below.
                acked.insert(victim, value_of(99, cycle));
            }
            Response::Err(_) => {} // worker died mid-PUT: unacked
            other => panic!("unexpected victim response: {other:?}"),
        }

        drop(server); // joins the (possibly dead) worker
        handle.lock().power_cycle(); // un-flushed writes are gone
    }

    // Final generation: attach once more and verify the full ledger.
    let server = Server::start(&cfg, vec![Box::new(handle.clone())], false).expect("final restart");
    let mut client = Client::connect(("127.0.0.1", server.port())).expect("connect");
    for (key, value) in &acked {
        assert_eq!(
            client.get(key).expect("final get"),
            Response::Value(value.clone()),
            "acked key {key} lost"
        );
    }
    let Response::Report(scrub) = client.scrub().expect("final scrub") else {
        panic!("scrub must report");
    };
    assert!(scrub.contains("\"parity_mismatches\":0"), "{scrub}");
    assert!(
        acked.len() >= crash_offsets.len() * 3,
        "the run acked a real number of keys ({})",
        acked.len()
    );
    assert!(
        replayed_mounts >= 1,
        "at least one crash must land between commit and retire so the \
         sweep exercises actual replay (got {replayed_mounts} replayed mounts)"
    );
}
