//! End-to-end server test over a real TCP socket: concurrent clients,
//! one shard running on a fault-injected backend (transient errors, a
//! mid-run disk death, silent corruption), deterministic backpressure,
//! and the invariant the whole stack exists to keep — **every
//! acknowledged PUT reads back**, including through the degraded shard.

use dcode_faults::{FaultInjector, FaultKind, FaultPlan, MemBackend, ScheduledFault};
use dcode_server::{
    shard_blocks, shard_of, Client, Response, Server, ServerConfig, ShardBackend, ShardConfig,
};
use std::collections::HashMap;

const SHARDS: usize = 4;
const FAULTY_SHARD: usize = 2;

fn test_config() -> ServerConfig {
    ServerConfig {
        port: 0,
        shards: SHARDS,
        max_conns: 16,
        shard: ShardConfig {
            block_size: 64,
            stripes: 16,
            meta_elements: 4,
            queue_cap: 4,
            ..ShardConfig::default()
        },
    }
}

/// One `MemBackend` per shard; `FAULTY_SHARD` is wrapped in a seeded
/// fault injector that retries-worth of transient errors, kills a disk
/// mid-run, and rots a block silently.
fn backends(cfg: &ServerConfig) -> Vec<ShardBackend> {
    let disks = cfg.shard.layout.disks();
    let blocks = shard_blocks(&cfg.shard);
    (0..cfg.shards)
        .map(|shard| -> ShardBackend {
            let mem = MemBackend::new(disks, blocks, cfg.shard.block_size);
            if shard == FAULTY_SHARD {
                let plan = FaultPlan {
                    p_transient_read: 0.01,
                    p_transient_write: 0.01,
                    scheduled: vec![
                        ScheduledFault {
                            at_op: 400,
                            fault: FaultKind::SilentCorrupt { disk: 1, block: 3 },
                        },
                        ScheduledFault {
                            at_op: 900,
                            fault: FaultKind::DiskFail(3),
                        },
                    ],
                    ..FaultPlan::quiet(42)
                };
                Box::new(FaultInjector::new(mem, plan))
            } else {
                Box::new(mem)
            }
        })
        .collect()
}

fn value_of(thread: usize, key: usize, version: usize) -> Vec<u8> {
    let tag = (thread * 7919 + key * 131 + version) as u8;
    vec![tag; 90 + key % 40]
}

#[test]
fn concurrent_clients_through_a_faulty_shard_lose_nothing() {
    let cfg = test_config();
    let server = Server::start(&cfg, backends(&cfg), true).expect("server starts");
    let port = server.port();

    // 4 client threads × 60 ops, overlapping key spaces within a thread
    // so upserts and re-reads happen. Each thread records what the server
    // acknowledged.
    let handles: Vec<_> = (0..4)
        .map(|thread| {
            std::thread::spawn(move || {
                let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
                let mut acked: HashMap<usize, usize> = HashMap::new();
                // Separate put/get sequence counters so every key id sees
                // both kinds of traffic (a shared `op % 12` index would
                // correlate the op mix with the key residues mod 3).
                let mut put_seq = 0;
                let mut get_seq = 0;
                for op in 0..60 {
                    if op % 3 != 2 {
                        let key_id = put_seq % 12;
                        let key = format!("t{thread}-k{key_id}");
                        let version = put_seq;
                        put_seq += 1;
                        let value = value_of(thread, key_id, version);
                        match client.put(&key, &value).expect("put io") {
                            Response::Ok => {
                                acked.insert(key_id, version);
                            }
                            Response::Busy { .. } => {} // unacked: no ledger entry
                            other => panic!("unexpected put response: {other:?}"),
                        }
                    } else {
                        let key_id = get_seq % 12;
                        let key = format!("t{thread}-k{key_id}");
                        get_seq += 1;
                        match client.get(&key).expect("get io") {
                            Response::Value(bytes) => {
                                let &version = acked.get(&key_id).expect("value implies an ack");
                                assert_eq!(
                                    bytes,
                                    value_of(thread, key_id, version),
                                    "read returned a value that was never the acked one"
                                );
                            }
                            Response::NotFound => {
                                assert!(
                                    !acked.contains_key(&key_id),
                                    "acked key {key} vanished mid-run"
                                );
                            }
                            other => panic!("unexpected get response: {other:?}"),
                        }
                    }
                }
                (thread, acked)
            })
        })
        .collect();

    let ledgers: Vec<(usize, HashMap<usize, usize>)> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    // Every acked write reads back through a fresh connection — including
    // keys on the fault-injected shard, which by now has a dead disk.
    let mut verifier = Client::connect(("127.0.0.1", port)).expect("connect verifier");
    let mut checked = 0;
    let mut on_faulty = 0;
    for (thread, acked) in &ledgers {
        for (&key_id, &version) in acked {
            let key = format!("t{thread}-k{key_id}");
            if shard_of(&key, SHARDS) == FAULTY_SHARD {
                on_faulty += 1;
            }
            let got = verifier.get(&key).expect("verify get");
            assert_eq!(
                got,
                Response::Value(value_of(*thread, key_id, version)),
                "acked key {key} must read back its acked value"
            );
            checked += 1;
        }
    }
    assert!(checked >= 40, "the run acked a real number of keys");
    assert!(
        on_faulty > 0,
        "key space must exercise the fault-injected shard for the test to mean anything"
    );

    // Scrub reports one entry per shard and repairs the seeded rot.
    let Response::Report(scrub) = verifier.scrub().expect("scrub io") else {
        panic!("scrub must report");
    };
    for shard in 0..SHARDS {
        assert!(scrub.contains(&format!("\"shard\":{shard}")), "{scrub}");
    }

    // Stat is served even now and carries per-shard schedule-cache and
    // resilience counters.
    let Response::Report(stat) = verifier.stat().expect("stat io") else {
        panic!("stat must report");
    };
    assert!(stat.contains("\"shards\":4"), "{stat}");
    assert!(stat.contains("\"per_shard\":["), "{stat}");
    assert!(stat.contains("\"schedule_hits\""), "{stat}");
    drop(server); // clean shutdown with clients still connected
}

#[test]
fn full_shard_queue_returns_busy_instead_of_hanging() {
    let cfg = test_config();
    let queue_cap = cfg.shard.queue_cap;
    let server = Server::start(&cfg, backends(&cfg), true).expect("server starts");
    let port = server.port();

    // Pick keys that all route to one healthy shard.
    let target = 0usize;
    let keys: Vec<String> = (0..1000)
        .map(|i| format!("busy-{i}"))
        .filter(|k| shard_of(k, SHARDS) == target)
        .take(queue_cap + 1)
        .collect();
    assert_eq!(keys.len(), queue_cap + 1);

    // Park the shard's worker, then occupy every queue slot with a
    // blocked PUT from its own connection.
    server.stall_shard(target, true);
    let blocked: Vec<_> = keys[..queue_cap]
        .iter()
        .cloned()
        .map(|key| {
            std::thread::spawn(move || {
                let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
                client.put(&key, b"queued while stalled").expect("put io")
            })
        })
        .collect();
    // Wait until all four jobs are actually enqueued (the stat document
    // exposes live queue depths, so poll it instead of sleeping blind).
    let mut probe = Client::connect(("127.0.0.1", port)).expect("connect probe");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let Response::Report(stat) = probe.stat().expect("stat io") else {
            panic!("stat must report");
        };
        if stat.contains(&format!("\"queue_depth\":{queue_cap}")) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "queue never filled: {stat}"
        );
        std::thread::yield_now();
    }

    // The next request to that shard is rejected immediately and typed.
    let response = probe.put(&keys[queue_cap], b"overflow").expect("put io");
    let Response::Busy { shard, depth } = response else {
        panic!("expected Busy, got {response:?}");
    };
    assert_eq!(shard as usize, target);
    assert_eq!(depth as usize, queue_cap);

    // Release the worker: every queued PUT completes and is acked…
    server.stall_shard(target, false);
    for handle in blocked {
        assert_eq!(handle.join().expect("blocked client"), Response::Ok);
    }
    // …and the rejected client retries to success. Nothing acked is lost.
    assert_eq!(
        probe.put(&keys[queue_cap], b"overflow").expect("retry io"),
        Response::Ok
    );
    for key in &keys[..queue_cap] {
        assert_eq!(
            probe.get(key).expect("get io"),
            Response::Value(b"queued while stalled".to_vec())
        );
    }
}
