//! Regression tests for the poison-recovery satellite: the STAT
//! observability path (published snapshots + live queue depths) must
//! keep answering after a worker panic, and after the shard locks have
//! been poisoned outright. Before the fix, `ShardQueue` and the
//! snapshot mutex used `.expect(...)`, so one panicking thread took
//! observability down exactly when it was most needed.

use dcode_server::{
    spawn_engine_worker, Response, ServerMetrics, ShardEngine, ShardJob, ShardOp, ShardQueue,
    ShardSnapshot,
};
use minisim::sync::{mpsc, Arc, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// An engine whose PUT path panics — standing in for a storage-layer
/// bug — while GET and snapshots behave.
struct BombEngine;

impl ShardEngine for BombEngine {
    fn execute(&mut self, op: &ShardOp) -> Response {
        match op {
            ShardOp::Put { .. } => panic!("injected storage panic"),
            _ => Response::NotFound,
        }
    }

    fn snapshot(&self, ops_done: u64) -> ShardSnapshot {
        ShardSnapshot {
            ops_done,
            ..ShardSnapshot::default()
        }
    }
}

fn job(op: ShardOp) -> (ShardJob, mpsc::Receiver<Response>) {
    let (reply, rx) = mpsc::channel();
    (
        ShardJob {
            op,
            queued_at: Instant::now(),
            reply,
        },
        rx,
    )
}

#[test]
fn stat_path_answers_after_injected_worker_panic() {
    let queue = Arc::new(ShardQueue::new(8));
    let snapshot = Arc::new(Mutex::new(ShardSnapshot::default()));
    let worker = spawn_engine_worker(
        "panicky-shard".to_string(),
        BombEngine,
        Arc::clone(&queue),
        Arc::clone(&snapshot),
        Arc::new(ServerMetrics::new()),
    );

    // The worker dies executing this job; its reply channel closes
    // without an answer — the handler-visible signal of a dead shard.
    let (put, rx) = job(ShardOp::Put {
        name: "k".into(),
        value: vec![1],
    });
    queue.try_push(put).expect("queue accepts below cap");
    assert!(
        rx.recv().is_err(),
        "dead worker must close the reply channel"
    );
    assert!(worker.join().is_err(), "worker thread died of the panic");

    // The STAT ingredients still answer: live queue depth and the last
    // published snapshot (fresh from before the poisoned op).
    assert_eq!(queue.depth(), 0);
    let snap = snapshot
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let json = snap.to_json(queue.depth());
    assert!(json.contains("\"ops_done\":0"), "{json}");
}

#[test]
fn stat_path_answers_on_deliberately_poisoned_locks() {
    let queue = Arc::new(ShardQueue::new(4));
    let snapshot = Arc::new(Mutex::new(ShardSnapshot::default()));

    // Poison both mutexes: panic while holding each guard.
    for _ in 0..1 {
        let q = Arc::clone(&queue);
        let s = Arc::clone(&snapshot);
        let t = std::thread::spawn(move || {
            let _depth_guard_panics = catch_unwind(AssertUnwindSafe(|| {
                // Poison the snapshot lock.
                let _g = s.lock().unwrap();
                panic!("poison snapshot");
            }));
            // Poison the queue lock through a panicking depth probe is
            // not possible from outside (the guard is internal), so
            // poison via a second snapshot-style hold is the observable
            // half; the queue lock recovers by the same code path.
            let _ = q.depth();
        });
        t.join().expect("poisoning thread itself exits cleanly");
    }

    // The snapshot mutex is now poisoned; STAT's read must recover.
    let snap = snapshot
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    assert_eq!(snap.ops_done, 0);
    // And the queue keeps serving both depth probes and pushes.
    assert_eq!(queue.depth(), 0);
    let (j, _rx) = job(ShardOp::Get { name: "x".into() });
    queue.try_push(j).expect("queue still accepts work");
    assert_eq!(queue.depth(), 1);
}
