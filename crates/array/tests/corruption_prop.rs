//! Property tests for the silent-corruption story across every code in
//! the registry: injected corruption must be *caught* (never returned as
//! good data) — by the per-block checksums of the resilient array, or
//! localized and repaired (or safely declared ambiguous) by the scrubber.

use dcode_array::resilient::{ResilientArray, RetryPolicy};
use dcode_array::rotation::RotationScheme;
use dcode_array::scrub::{scrub_stripe, ScrubReport};
use dcode_baselines::registry::all_codes;
use dcode_codec::{encode, Stripe};
use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use dcode_faults::MemBackend;
use proptest::prelude::*;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 51) as u8
        })
        .collect()
}

/// Backend block indices of `disk` that hold *data* cells (a bit flipped
/// in a parity block is only read — and caught — on a degraded path, so
/// the catch-on-read properties target data blocks).
fn data_blocks(
    layout: &CodeLayout,
    rotation: RotationScheme,
    stripes: usize,
    disk: usize,
) -> Vec<usize> {
    let rows = layout.rows();
    (0..stripes * rows)
        .filter(|&b| {
            let col = rotation.to_logical(b / rows, disk, layout.disks());
            layout.kind(Cell::new(b % rows, col)).is_data()
        })
        .collect()
}

/// First disk at or after `start` (cyclically) that holds any data block.
fn disk_with_data(
    layout: &CodeLayout,
    rotation: RotationScheme,
    stripes: usize,
    start: usize,
) -> (usize, Vec<usize>) {
    let disks = layout.disks();
    for off in 0..disks {
        let d = (start + off) % disks;
        let blocks = data_blocks(layout, rotation, stripes, d);
        if !blocks.is_empty() {
            return (d, blocks);
        }
    }
    unreachable!("some disk must hold data");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A single silent corruption of any data block on any disk's medium
    /// is caught by the block checksum and served (and repaired) through
    /// parity — the read returns the original bytes for every registry
    /// code.
    #[test]
    fn single_medium_corruption_is_caught_by_checksums(
            p in prop::sample::select(vec![5usize, 7, 11, 13]),
            seed in any::<u64>(),
            pick in any::<u64>()) {
        const BLOCK: usize = 16;
        const STRIPES: usize = 2;
        let rot = RotationScheme::PerStripe;
        for layout in all_codes(p) {
            let disks = layout.disks();
            let backend = MemBackend::new(disks, STRIPES * layout.rows(), BLOCK);
            let mut arr = ResilientArray::format(
                layout, BLOCK, STRIPES, rot,
                backend, RetryPolicy::default(), 1_000_000,
            );
            let data = payload(arr.capacity_bytes(), seed);
            arr.write(0, &data).unwrap();

            // Flip one bit inside a data block of some disk.
            let (disk, blocks) = disk_with_data(arr.layout(), rot, STRIPES, pick as usize % disks);
            let block = blocks[(pick >> 16) as usize % blocks.len()];
            let bit = block * BLOCK * 8 + (pick >> 32) as usize % (BLOCK * 8);
            arr.backend_mut().disk_bytes_mut(disk)[bit / 8] ^= 1 << (bit % 8);

            let n = arr.capacity_elements();
            let got = arr.read(0, n).unwrap();
            prop_assert_eq!(&got, &data, "{} p={}", arr.layout().name(), p);
            prop_assert_eq!(arr.stats().checksum_catches, 1,
                "{} p={}: corruption not caught", arr.layout().name(), p);
            prop_assert_eq!(arr.stats().read_repairs, 1,
                "{} p={}: corruption not repaired in place", arr.layout().name(), p);
            // Repaired: a second pass is checksum-clean.
            let got = arr.read(0, n).unwrap();
            prop_assert_eq!(&got, &data);
            prop_assert_eq!(arr.stats().checksum_catches, 1);
        }
    }

    /// A corrupted *pair* of cells (distinct columns) in one stripe is
    /// either exactly localized and repaired by the scrubber or declared
    /// ambiguous with the stripe untouched — never silently mis-repaired.
    #[test]
    fn pair_corruption_is_localized_or_safely_ambiguous(
            p in prop::sample::select(vec![5usize, 7, 11, 13]),
            seed in any::<u64>(),
            pick in any::<u64>()) {
        const BLOCK: usize = 8;
        for layout in all_codes(p) {
            let data = payload(layout.data_len() * BLOCK, seed);
            let mut golden = Stripe::from_data(&layout, BLOCK, &data);
            encode(&layout, &mut golden);

            let grid = layout.grid();
            let a = Cell::new(
                (pick as usize) % grid.rows,
                (pick >> 16) as usize % grid.cols,
            );
            let col_b = {
                let shift = 1 + (pick >> 32) as usize % (grid.cols - 1);
                (a.col + shift) % grid.cols
            };
            let b = Cell::new((pick >> 48) as usize % grid.rows, col_b);

            let mut s = golden.clone();
            s.block_mut(a)[0] ^= 0x3C;
            s.block_mut(b)[BLOCK - 1] ^= 0xA5;
            let corrupted = s.clone();

            match scrub_stripe(&layout, &mut s) {
                ScrubReport::RepairedPair { cells } => {
                    let mut want = [a, b];
                    want.sort_unstable();
                    prop_assert_eq!(cells, want, "{} p={}", layout.name(), p);
                    prop_assert_eq!(&s, &golden, "{} p={}: bad repair", layout.name(), p);
                }
                ScrubReport::Ambiguous { .. } => {
                    prop_assert_eq!(&s, &corrupted,
                        "{} p={}: ambiguous scrub modified the stripe", layout.name(), p);
                }
                other => {
                    prop_assert!(false,
                        "{} p={}: pair ({a}, {b}) gave {other:?}", layout.name(), p);
                }
            }
        }
    }

    /// The same pair corruption applied to the *medium* under a resilient
    /// array is caught by checksums: both rotten blocks are detected and
    /// the read returns correct data for every registry code.
    #[test]
    fn pair_medium_corruption_is_caught_by_checksums(
            p in prop::sample::select(vec![5usize, 7, 11, 13]),
            seed in any::<u64>(),
            pick in any::<u64>()) {
        const BLOCK: usize = 16;
        let rot = RotationScheme::None;
        for layout in all_codes(p) {
            let disks = layout.disks();
            let rows = layout.rows();
            let backend = MemBackend::new(disks, rows, BLOCK);
            let mut arr = ResilientArray::format(
                layout, BLOCK, 1, rot,
                backend, RetryPolicy::default(), 1_000_000,
            );
            let data = payload(arr.capacity_bytes(), seed);
            arr.write(0, &data).unwrap();

            // Rot one data block on each of two distinct data-bearing
            // disks (pure-parity columns are only read on degraded paths,
            // so corruption there would not be touched by this read).
            let data_disks: Vec<usize> = (0..disks)
                .filter(|&d| !data_blocks(arr.layout(), rot, 1, d).is_empty())
                .collect();
            let d1 = data_disks[pick as usize % data_disks.len()];
            let others: Vec<usize> = data_disks.into_iter().filter(|&d| d != d1).collect();
            let d2 = others[(pick >> 8) as usize % others.len()];
            let blocks1 = data_blocks(arr.layout(), rot, 1, d1);
            let blocks2 = data_blocks(arr.layout(), rot, 1, d2);
            for (d, blocks, salt) in [(d1, blocks1, 0u64), (d2, blocks2, 17)] {
                let block = blocks[(pick >> 16).wrapping_add(salt) as usize % blocks.len()];
                let bit = block * BLOCK * 8
                    + ((pick >> 32).wrapping_add(salt * 97) as usize) % (BLOCK * 8);
                arr.backend_mut().disk_bytes_mut(d)[bit / 8] ^= 1 << (bit % 8);
            }

            let n = arr.capacity_elements();
            let got = arr.read(0, n).unwrap();
            prop_assert_eq!(&got, &data, "{} p={}", arr.layout().name(), p);
            prop_assert_eq!(arr.stats().checksum_catches, 2,
                "{} p={}: both corruptions must be caught", arr.layout().name(), p);
        }
    }
}
