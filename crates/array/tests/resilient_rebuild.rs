//! Regression: reads served *during* an in-progress hot-spare rebuild
//! must return correct data at every watermark position, for every code
//! in the registry — blocks below the watermark come off the spare,
//! blocks above it are reconstructed through parity.

use dcode_array::resilient::{ResilientArray, RetryPolicy, SlotState};
use dcode_array::rotation::RotationScheme;
use dcode_baselines::registry::all_codes;
use dcode_faults::MemBackend;

fn payload(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(131) % 251) as u8)
        .collect()
}

#[test]
fn reads_are_correct_at_every_rebuild_watermark() {
    const BLOCK: usize = 8;
    const STRIPES: usize = 3;
    for layout in all_codes(7) {
        let name = layout.name().to_string();
        let rows = layout.rows();
        let backend = MemBackend::new(layout.disks() + 1, STRIPES * rows, BLOCK);
        let mut arr = ResilientArray::format(
            layout,
            BLOCK,
            STRIPES,
            RotationScheme::PerStripe,
            backend,
            RetryPolicy::default(),
            4,
        );
        let data = payload(arr.capacity_bytes());
        arr.write(0, &data).unwrap();

        arr.fail_disk(2).unwrap();
        assert_eq!(arr.slot_states()[2], SlotState::Rebuilding, "{name}");

        // Step the rebuild one block at a time; the full read must be
        // correct at every intermediate watermark.
        let total = STRIPES * rows;
        for step in 0..total {
            let (_, done, _) = arr.rebuild_progress().expect(&name);
            assert_eq!(done, step, "{name}");
            let got = arr.read(0, arr.capacity_elements()).unwrap();
            assert_eq!(got, data, "{name}: wrong data at watermark {step}");
            arr.rebuild_step(1).unwrap();
        }
        assert!(arr.rebuild_progress().is_none(), "{name}");
        assert_eq!(arr.slot_states()[2], SlotState::Healthy, "{name}");
        assert_eq!(arr.stats().rebuilds_completed, 1, "{name}");
        assert_eq!(
            arr.read(0, arr.capacity_elements()).unwrap(),
            data,
            "{name}"
        );
    }
}

#[test]
fn writes_mid_rebuild_land_on_both_sides_of_the_watermark() {
    const BLOCK: usize = 8;
    const STRIPES: usize = 4;
    for layout in all_codes(5) {
        let name = layout.name().to_string();
        let rows = layout.rows();
        let backend = MemBackend::new(layout.disks() + 1, STRIPES * rows, BLOCK);
        let mut arr = ResilientArray::format(
            layout,
            BLOCK,
            STRIPES,
            RotationScheme::PerStripe,
            backend,
            RetryPolicy::default(),
            4,
        );
        let data = payload(arr.capacity_bytes());
        arr.write(0, &data).unwrap();
        arr.fail_disk(0).unwrap();

        // Advance the watermark into the middle of the array, then
        // overwrite a range spanning stripes on both sides of it.
        arr.rebuild_step(2 * rows).unwrap();
        let n = arr.capacity_elements();
        let patch = vec![0xC3u8; (n / 2) * BLOCK];
        let start = n / 4;
        arr.write(start, &patch).unwrap();
        let mut expect = data;
        expect[start * BLOCK..start * BLOCK + patch.len()].copy_from_slice(&patch);

        assert_eq!(
            arr.read(0, n).unwrap(),
            expect,
            "{name}: mid-rebuild write lost"
        );
        while !arr.rebuild_step(rows).unwrap() {}
        assert_eq!(
            arr.read(0, n).unwrap(),
            expect,
            "{name}: post-rebuild data differs"
        );
    }
}
