//! Rotation load study — Section II's argument, quantified.
//!
//! The paper dismisses stripe-by-stripe rotation as a fix for unbalanced
//! codes: rotation averages parity placement *across* stripes, but stripes
//! have different access frequencies, so a skewed workload still hammers
//! whichever physical disks hold the hot stripes' parities. This module
//! maps per-stripe logical access counts through a [`RotationScheme`] onto
//! physical disks under a configurable stripe-popularity distribution, so
//! the claim becomes a measurement (see the `rotation_study` binary).

use crate::rotation::RotationScheme;
use dcode_core::layout::CodeLayout;

/// How stripe access frequency is distributed.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum StripeSkew {
    /// Every stripe equally likely — rotation's best case.
    Uniform,
    /// Zipf-like skew with the given exponent (≥ 0; larger = hotter head).
    Zipf(f64),
    /// All traffic on one stripe — rotation's worst case.
    SingleHot,
}

impl StripeSkew {
    /// Relative weight of stripe `i` (unnormalized).
    pub fn weight(self, i: usize, _n: usize) -> f64 {
        match self {
            StripeSkew::Uniform => 1.0,
            StripeSkew::Zipf(s) => 1.0 / ((i + 1) as f64).powf(s),
            StripeSkew::SingleHot => {
                if i == 0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Combine one stripe's per-logical-column access counts into physical-disk
/// counts over `n_stripes` stripes weighted by `skew`.
pub fn physical_loads(
    layout: &CodeLayout,
    per_logical_col: &[f64],
    rotation: RotationScheme,
    n_stripes: usize,
    skew: StripeSkew,
) -> Vec<f64> {
    let disks = layout.disks();
    assert_eq!(per_logical_col.len(), disks);
    let mut physical = vec![0.0; disks];
    for s in 0..n_stripes {
        let w = skew.weight(s, n_stripes);
        for (col, &load) in per_logical_col.iter().enumerate() {
            physical[rotation.to_physical(s, col, disks)] += w * load;
        }
    }
    physical
}

/// Load-balancing factor of a physical load vector (∞ when a disk is idle).
pub fn lf(loads: &[f64]) -> f64 {
    let max = loads.iter().copied().fold(0.0, f64::max);
    let min = loads.iter().copied().fold(f64::INFINITY, f64::min);
    if min <= 0.0 {
        if max <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::dcode;

    /// An RDP-like skewed logical load: last two columns hot (parity disks
    /// under writes).
    fn skewed_load(disks: usize) -> Vec<f64> {
        (0..disks)
            .map(|c| if c >= disks - 2 { 5.0 } else { 1.0 })
            .collect()
    }

    #[test]
    fn rotation_balances_uniform_stripe_access() {
        let layout = dcode(7).unwrap();
        let load = skewed_load(7);
        let unrotated =
            physical_loads(&layout, &load, RotationScheme::None, 7, StripeSkew::Uniform);
        let rotated = physical_loads(
            &layout,
            &load,
            RotationScheme::PerStripe,
            7,
            StripeSkew::Uniform,
        );
        assert!(lf(&unrotated) > 4.9);
        // With stripes = a multiple of disks and uniform access, rotation
        // is perfect.
        assert!((lf(&rotated) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_cannot_balance_a_hot_stripe() {
        // The paper's point: with one hot stripe, rotation leaves LF
        // exactly as bad as no rotation.
        let layout = dcode(7).unwrap();
        let load = skewed_load(7);
        let unrotated = physical_loads(
            &layout,
            &load,
            RotationScheme::None,
            7,
            StripeSkew::SingleHot,
        );
        let rotated = physical_loads(
            &layout,
            &load,
            RotationScheme::PerStripe,
            7,
            StripeSkew::SingleHot,
        );
        assert_eq!(lf(&unrotated), lf(&rotated));
        assert!(lf(&rotated) > 4.9);
    }

    #[test]
    fn zipf_skew_degrades_rotation_benefit_monotonically() {
        let layout = dcode(7).unwrap();
        let load = skewed_load(7);
        let lf_at = |s: f64| {
            lf(&physical_loads(
                &layout,
                &load,
                RotationScheme::PerStripe,
                70,
                StripeSkew::Zipf(s),
            ))
        };
        let mild = lf_at(0.5);
        let strong = lf_at(2.0);
        let extreme = lf_at(4.0);
        assert!(
            mild < strong && strong < extreme,
            "{mild} {strong} {extreme}"
        );
    }

    #[test]
    fn balanced_codes_do_not_need_rotation() {
        // D-Code's logical load is already flat, so LF ≈ 1 with or without
        // rotation, under any skew.
        let layout = dcode(7).unwrap();
        let flat = vec![1.0; 7];
        for skew in [
            StripeSkew::Uniform,
            StripeSkew::Zipf(2.0),
            StripeSkew::SingleHot,
        ] {
            for rot in [RotationScheme::None, RotationScheme::PerStripe] {
                let loads = physical_loads(&layout, &flat, rot, 16, skew);
                assert!((lf(&loads) - 1.0).abs() < 1e-9, "{skew:?} {rot:?}");
            }
        }
    }
}
