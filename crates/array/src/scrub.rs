//! Parity scrubbing: detect and localize silent corruption.
//!
//! RAID-6's two independent parity families can do more than survive
//! erasures: because every data element sits in exactly one equation of
//! each family (and parities sit in one), a *single* silently corrupted
//! element produces a unique syndrome signature — exactly the equations
//! covering it fail verification. The scrubber evaluates every equation,
//! intersects the failing set, and repairs the culprit by solving one of
//! its equations with the culprit treated as erased. This is the
//! lost-write-detection story that motivates keeping two orthogonal parity
//! families even where one would suffice for the failure model.

use dcode_codec::{xor::xor_many_into, Stripe};
use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use std::collections::BTreeSet;

/// Result of scrubbing one stripe.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScrubReport {
    /// All equations verify.
    Clean,
    /// Exactly one element is inconsistent and was repaired in place.
    Repaired {
        /// The corrupted element.
        cell: Cell,
    },
    /// Two elements were inconsistent; the pair was uniquely identified by
    /// the syndrome and both were repaired in place.
    RepairedPair {
        /// The corrupted elements, in ascending order.
        cells: [Cell; 2],
    },
    /// The syndrome does not localize to one element or one unique pair;
    /// nothing was modified.
    Ambiguous {
        /// Indices of the failing equations.
        failing_equations: Vec<usize>,
    },
}

/// Indices of equations whose parity block does not equal the XOR of its
/// member blocks.
pub fn failing_equations(layout: &CodeLayout, stripe: &Stripe) -> Vec<usize> {
    let mut scratch = vec![0u8; stripe.block_size()];
    layout
        .equations()
        .iter()
        .enumerate()
        .filter(|(_, eq)| {
            let sources: Vec<&[u8]> = eq.members.iter().map(|&m| stripe.block(m)).collect();
            xor_many_into(&mut scratch, &sources);
            scratch.as_slice() != stripe.block(eq.parity)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Scrub one stripe: verify every equation, localize a single corrupted
/// element if possible, and repair it in place.
pub fn scrub_stripe(layout: &CodeLayout, stripe: &mut Stripe) -> ScrubReport {
    let failing = failing_equations(layout, stripe);
    if failing.is_empty() {
        return ScrubReport::Clean;
    }

    // Candidate culprits: cells involved in *every* failing equation and in
    // *no* passing equation.
    let failing_set: BTreeSet<usize> = failing.iter().copied().collect();
    let mut candidates: Vec<Cell> = Vec::new();
    for cell in layout.grid().cells() {
        let mut involved: Vec<usize> = layout.member_eqs(cell).to_vec();
        if let Some(se) = layout.storing_eq(cell) {
            involved.push(se);
        }
        let involved: BTreeSet<usize> = involved.into_iter().collect();
        if involved == failing_set {
            candidates.push(cell);
        }
    }

    let [culprit] = candidates.as_slice() else {
        if candidates.is_empty() {
            // No single cell explains the syndrome — try unique pairs: the
            // two cells' involved-equation sets must cover the failing set
            // exactly, with the failing set being their symmetric-ish union
            // (equations shared by both cells cancel only if the two errors
            // are equal, which we cannot assume, so we use plain union).
            return try_pair_repair(layout, stripe, &failing);
        }
        return ScrubReport::Ambiguous {
            failing_equations: failing,
        };
    };
    let culprit = *culprit;

    // Repair: recompute the culprit from one of its equations.
    let eq = layout.equation(failing[0]);
    let sources: Vec<Cell> = eq.cells().filter(|&c| c != culprit).collect();
    let original = stripe.snapshot(culprit);
    let mut fixed = vec![0u8; stripe.block_size()];
    {
        let blocks: Vec<&[u8]> = sources.iter().map(|&c| stripe.block(c)).collect();
        xor_many_into(&mut fixed, &blocks);
    }
    stripe.block_mut(culprit).copy_from_slice(&fixed);

    // The repair must leave the stripe fully consistent; if not, the
    // localization was coincidental — undo it and report ambiguity instead
    // of lying (an ambiguous scrub must never modify the stripe).
    if failing_equations(layout, stripe).is_empty() {
        ScrubReport::Repaired { cell: culprit }
    } else {
        stripe.block_mut(culprit).copy_from_slice(&original);
        ScrubReport::Ambiguous {
            failing_equations: failing,
        }
    }
}

/// Scrub one stripe without modifying it: report what [`scrub_stripe`]
/// *would* do. Backs the CLI's `scrub --repair=off` dry-run mode — the
/// operator sees the diagnosis (clean / localized / ambiguous) before
/// authorizing writes.
pub fn scrub_stripe_dry(layout: &CodeLayout, stripe: &Stripe) -> ScrubReport {
    let mut copy = stripe.clone();
    scrub_stripe(layout, &mut copy)
}

/// Attempt a unique two-element localization and repair. The pair is
/// repaired by treating both cells as erased and running the recovery
/// planner — valid whenever the two cells sit in different columns (a
/// RAID-6 code recovers any two columns, a fortiori any two cells).
fn try_pair_repair(layout: &CodeLayout, stripe: &mut Stripe, failing: &[usize]) -> ScrubReport {
    use dcode_codec::apply_plan;
    use dcode_core::decoder::plan_recovery;

    let failing_set: BTreeSet<usize> = failing.iter().copied().collect();
    let involved = |cell: Cell| -> BTreeSet<usize> {
        let mut eqs: Vec<usize> = layout.member_eqs(cell).to_vec();
        if let Some(se) = layout.storing_eq(cell) {
            eqs.push(se);
        }
        eqs.into_iter().collect()
    };

    // Candidate cells: involved in ≥1 failing equation and in no passing
    // equation (a corrupted cell fails *everything* it participates in).
    let cells: Vec<Cell> = layout
        .grid()
        .cells()
        .filter(|&c| {
            let inv = involved(c);
            !inv.is_empty() && inv.iter().all(|e| failing_set.contains(e))
        })
        .collect();

    let mut pairs = Vec::new();
    for (i, &a) in cells.iter().enumerate() {
        for &b in &cells[i + 1..] {
            let mut union = involved(a);
            union.extend(involved(b));
            if union == failing_set && a.col != b.col {
                pairs.push([a, b]);
            }
        }
    }
    let [pair] = pairs.as_slice() else {
        return ScrubReport::Ambiguous {
            failing_equations: failing.to_vec(),
        };
    };
    let pair = *pair;

    // Repair by erasure-decoding the pair from everything else; verify, and
    // roll back if the localization was coincidental.
    let originals: Vec<Vec<u8>> = pair.iter().map(|&c| stripe.snapshot(c)).collect();
    let erased: BTreeSet<Cell> = pair.iter().copied().collect();
    let Ok(plan) = plan_recovery(layout, &erased) else {
        return ScrubReport::Ambiguous {
            failing_equations: failing.to_vec(),
        };
    };
    apply_plan(stripe, &plan);
    if failing_equations(layout, stripe).is_empty() {
        ScrubReport::RepairedPair { cells: pair }
    } else {
        for (&c, orig) in pair.iter().zip(&originals) {
            stripe.block_mut(c).copy_from_slice(orig);
        }
        ScrubReport::Ambiguous {
            failing_equations: failing.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_codec::encode;
    use dcode_core::dcode::dcode;

    fn encoded_stripe() -> (CodeLayout, Stripe) {
        let layout = dcode(7).unwrap();
        let payload: Vec<u8> = (0..layout.data_len() * 32)
            .map(|i| (i * 17 % 251) as u8)
            .collect();
        let mut s = Stripe::from_data(&layout, 32, &payload);
        encode(&layout, &mut s);
        (layout, s)
    }

    #[test]
    fn clean_stripe_reports_clean() {
        let (layout, mut s) = encoded_stripe();
        assert_eq!(scrub_stripe(&layout, &mut s), ScrubReport::Clean);
    }

    #[test]
    fn single_data_corruption_is_localized_and_repaired() {
        let (layout, golden) = encoded_stripe();
        for &cell in &golden.grid().cells().collect::<Vec<_>>() {
            let mut s = golden.clone();
            s.block_mut(cell)[0] ^= 0xFF; // flip bits silently
            match scrub_stripe(&layout, &mut s) {
                ScrubReport::Repaired { cell: found } => {
                    assert_eq!(found, cell, "wrong culprit");
                    assert_eq!(s, golden, "repair did not restore the stripe");
                }
                other => panic!("cell {cell}: expected repair, got {other:?}"),
            }
        }
    }

    #[test]
    fn double_corruption_in_distinct_columns_repairs_when_unique() {
        let (layout, golden) = encoded_stripe();
        let mut s = golden.clone();
        let (a, b) = (Cell::new(0, 0), Cell::new(3, 4));
        s.block_mut(a)[0] ^= 1;
        s.block_mut(b)[0] ^= 1;
        match scrub_stripe(&layout, &mut s) {
            ScrubReport::RepairedPair { cells } => {
                assert_eq!(cells, [a, b]);
                assert_eq!(s, golden, "pair repair must restore the stripe");
            }
            // The pair is not always uniquely identified — but then the
            // stripe must be untouched.
            ScrubReport::Ambiguous { .. } => {
                let mut expect = golden.clone();
                expect.block_mut(a)[0] ^= 1;
                expect.block_mut(b)[0] ^= 1;
                assert_eq!(s, expect, "ambiguous scrub must not modify the stripe");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn pair_repair_sweep() {
        // Over many distinct-column pairs, every outcome is either an exact
        // pair repair or an untouched-ambiguous — never a wrong "repair".
        let (layout, golden) = encoded_stripe();
        let mut repaired = 0;
        let cells: Vec<Cell> = golden.grid().cells().collect();
        for (i, &a) in cells.iter().enumerate().step_by(5) {
            for &b in cells[i + 1..].iter().step_by(7) {
                if a.col == b.col {
                    continue;
                }
                let mut s = golden.clone();
                s.block_mut(a)[3] ^= 0x77;
                s.block_mut(b)[9] ^= 0x11;
                match scrub_stripe(&layout, &mut s) {
                    ScrubReport::RepairedPair { cells } => {
                        assert_eq!(cells, if a < b { [a, b] } else { [b, a] });
                        assert_eq!(s, golden);
                        repaired += 1;
                    }
                    ScrubReport::Ambiguous { .. } => {}
                    other => panic!("({a},{b}): unexpected {other:?}"),
                }
            }
        }
        assert!(repaired > 0, "pair repair never engaged");
    }

    #[test]
    fn dry_run_diagnoses_without_modifying() {
        let (layout, golden) = encoded_stripe();
        let mut s = golden.clone();
        let cell = Cell::new(1, 1);
        s.block_mut(cell)[0] ^= 4;
        let before = s.clone();
        match scrub_stripe_dry(&layout, &s) {
            ScrubReport::Repaired { cell: found } => assert_eq!(found, cell),
            other => panic!("expected a repair diagnosis, got {other:?}"),
        }
        assert_eq!(s, before, "dry run must not modify the stripe");
    }

    #[test]
    fn triple_corruption_stays_ambiguous_and_untouched() {
        let (layout, golden) = encoded_stripe();
        let mut s = golden.clone();
        for cell in [Cell::new(0, 0), Cell::new(1, 2), Cell::new(2, 5)] {
            s.block_mut(cell)[0] ^= 0xF0;
        }
        let before = s.clone();
        match scrub_stripe(&layout, &mut s) {
            ScrubReport::Ambiguous { .. } => assert_eq!(s, before),
            ScrubReport::RepairedPair { .. } | ScrubReport::Repaired { .. } => {
                // A lucky aliasing repair must at least leave a fully
                // consistent stripe; anything else is a bug.
                assert!(failing_equations(&layout, &s).is_empty());
            }
            ScrubReport::Clean => panic!("triple corruption cannot be clean"),
        }
    }
}
