//! Write-ahead parity intent journal: the on-disk format that closes the
//! RAID-6 write hole.
//!
//! A stripe update writes several blocks (data cells, then both parity
//! cells). A crash between any two of those writes leaves the stripe's
//! parity inconsistent with its data — the classic *write hole* — and the
//! corruption is silent until a later degraded read reconstructs garbage
//! through the stale parity. The journal closes the hole by making every
//! stripe mutation re-runnable: before touching the stripe, the array
//! appends a checksummed *intent record* to a journal region, flushes it,
//! applies the writes, and only then retires the record. Mount-time
//! replay re-applies every committed-but-unretired record idempotently
//! and discards torn ones by checksum.
//!
//! ## Geometry
//!
//! The journal lives in extra blocks at the tail of each disk's block
//! range: a backend for a journaled array holds
//! `n_stripes × rows + blocks_per_disk()` blocks per disk. Each disk
//! carries one fixed *record slot* (`header_blocks` + `payload_blocks`),
//! and disk 0 additionally owns a one-block mount-state area at the very
//! end of the region (the last block of every disk is reserved so the
//! geometry stays uniform). Record `seq` is written to slot
//! `seq % disks`, probing forward past disks that refuse the write — the
//! journal load rotates across the array just like the parity does, and
//! at most one record is ever live per stripe mutation, so `disks` slots
//! are plenty.
//!
//! ## Record lifecycle
//!
//! 1. payload blocks are written (cell contents being journaled),
//! 2. the header — magic, seq, stripe, mode, per-cell CRCs, a CRC over
//!    the payload bytes, and a trailing CRC over the header itself — is
//!    written after the payload,
//! 3. the journal disk is flushed: the record is now *committed*,
//! 4. the stripe writes are applied and their disks flushed,
//! 5. the header's first block is overwritten with a tombstone and the
//!    journal disk flushed again: the record is *retired*.
//!
//! A crash before (3) leaves a record whose header or payload CRC cannot
//! both validate — replay discards it (the stripe was never touched). A
//! crash after (3) leaves a valid record — replay re-applies it. Replay
//! is idempotent because records carry *content*, not deltas.
//!
//! ## Record modes
//!
//! * [`RecordMode::ParityIntent`] (healthy stripes): CRCs of the new data
//!   cells plus the full new parity contents. Replay checks the on-disk
//!   data cells against the journaled CRCs: if all match, the data landed
//!   and the journaled parity is written; otherwise the crash interrupted
//!   the data writes, and parity is *recomputed* from whatever data is on
//!   disk — the un-acknowledged write may be partially visible, but the
//!   stripe is consistent either way.
//! * [`RecordMode::Redo`] (degraded stripes or active rebuild): full
//!   contents of every block the write will touch. A partial degraded
//!   write is information-destroying — the failed slot's implied content
//!   changes with the parity — so replay must be able to force the whole
//!   intent, not reconcile halves.

use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use dcode_faults::{crc32, DiskBackend};

const MAGIC_RECORD: &[u8; 4] = b"DJRN";
const MAGIC_TOMBSTONE: &[u8; 4] = b"DJRT";
const MAGIC_STATE: &[u8; 4] = b"DJST";

/// Fixed header bytes before the per-entry table.
const HEADER_FIXED: usize = 27;
/// Bytes per entry in the header table: row u16, col u16, crc u32, flag u8.
const ENTRY_BYTES: usize = 9;
/// Trailing CRC32 over the whole header.
const HEADER_CRC: usize = 4;

/// Derived journal geometry for one array. Deterministic in
/// `(layout, block_size)`, so [`format`] and [`attach`] agree on it
/// without any on-disk superblock.
///
/// [`format`]: crate::ResilientArray::format_journaled
/// [`attach`]: crate::ResilientArray::attach_journaled
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JournalSpec {
    /// Data blocks per disk (`n_stripes × rows`); the journal region
    /// starts here.
    pub data_blocks: usize,
    /// Blocks of one record header.
    pub header_blocks: usize,
    /// Blocks of one record payload area (one block per journalable cell).
    pub payload_blocks: usize,
    /// Physical disks carrying a record slot.
    pub disks: usize,
    /// Bytes per block.
    pub block_size: usize,
    /// Most cells one record can carry (a full segment: every data cell
    /// plus every parity cell).
    pub max_entries: usize,
}

/// Journal blocks appended to every disk for the given code geometry —
/// what callers add to `n_stripes × rows` when sizing a backend.
pub fn journal_blocks_per_disk(layout: &CodeLayout, block_size: usize) -> usize {
    JournalSpec::for_geometry(layout, block_size, 1).blocks_per_disk()
}

impl JournalSpec {
    /// Geometry for `layout` at `block_size` over `n_stripes` stripes.
    /// Blocks must hold the tombstone and state records, hence the
    /// minimum block size.
    pub fn for_geometry(layout: &CodeLayout, block_size: usize, n_stripes: usize) -> Self {
        assert!(block_size >= 32, "journaled arrays need blocks ≥ 32 bytes");
        let parity_count = layout.parity_cells().count();
        let max_entries = layout.data_len() + parity_count;
        let header_bytes = HEADER_FIXED + ENTRY_BYTES * max_entries + HEADER_CRC;
        JournalSpec {
            data_blocks: n_stripes * layout.rows(),
            header_blocks: header_bytes.div_ceil(block_size),
            payload_blocks: max_entries,
            disks: layout.disks(),
            block_size,
            max_entries,
        }
    }

    /// Journal blocks appended to every disk: one record slot plus the
    /// reserved state block.
    pub fn blocks_per_disk(&self) -> usize {
        self.header_blocks + self.payload_blocks + 1
    }

    /// Journal bytes per disk.
    pub fn bytes_per_disk(&self) -> usize {
        self.blocks_per_disk() * self.block_size
    }

    /// First header block of the record slot (same offset on every disk).
    pub fn header_start(&self) -> usize {
        self.data_blocks
    }

    /// First payload block of the record slot.
    pub fn payload_start(&self) -> usize {
        self.data_blocks + self.header_blocks
    }

    /// The mount-state block (meaningful on disk 0; reserved elsewhere).
    pub fn state_block(&self) -> usize {
        self.data_blocks + self.header_blocks + self.payload_blocks
    }
}

/// How a record's stripe was protected when it was journaled.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RecordMode {
    /// Healthy stripe: data-cell CRCs + full parity contents.
    ParityIntent,
    /// Degraded stripe or active rebuild: full contents of every touched
    /// block.
    Redo,
}

/// One journaled cell: its position, the CRC of its *new* content, and —
/// for parity cells and redo records — the content itself.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecordEntry {
    /// The cell (logical coordinates; the rotation maps it to a disk).
    pub cell: Cell,
    /// CRC32 of the new content.
    pub crc: u32,
    /// The new content, for entries journaled by value.
    pub payload: Option<Vec<u8>>,
}

/// One intent record: everything replay needs to make `stripe`
/// consistent again.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IntentRecord {
    /// Monotonic sequence number (also selects the record slot).
    pub seq: u64,
    /// The stripe this record protects.
    pub stripe: usize,
    /// How to replay it.
    pub mode: RecordMode,
    /// Journaled cells, data cells first, then parity.
    pub entries: Vec<RecordEntry>,
}

/// What decoding a slot's first header block found.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SlotHeader {
    /// Never written (all zero).
    Empty,
    /// A retired record.
    Tombstone(u64),
    /// A structurally valid, committed record header (payload still to be
    /// read and verified against the embedded payload CRC).
    Record(IntentRecord, u32),
    /// Anything else — a torn or half-overwritten header. Replay discards
    /// it: the commit flush had not completed, so the stripe was never
    /// touched.
    Torn,
}

impl IntentRecord {
    /// Serialize the header into a full header-region buffer
    /// (`header_blocks × block_size`, zero padded).
    pub fn encode_header(&self, spec: &JournalSpec) -> Vec<u8> {
        assert!(self.entries.len() <= spec.max_entries);
        let mut buf = vec![0u8; spec.header_blocks * spec.block_size];
        buf[0..4].copy_from_slice(MAGIC_RECORD);
        buf[4..12].copy_from_slice(&self.seq.to_le_bytes());
        buf[12..20].copy_from_slice(&(self.stripe as u64).to_le_bytes());
        buf[20] = match self.mode {
            RecordMode::ParityIntent => 0,
            RecordMode::Redo => 1,
        };
        buf[21..23].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        buf[23..27].copy_from_slice(&self.payload_crc().to_le_bytes());
        let mut off = HEADER_FIXED;
        for e in &self.entries {
            buf[off..off + 2].copy_from_slice(&(e.cell.row as u16).to_le_bytes());
            buf[off + 2..off + 4].copy_from_slice(&(e.cell.col as u16).to_le_bytes());
            buf[off + 4..off + 8].copy_from_slice(&e.crc.to_le_bytes());
            buf[off + 8] = u8::from(e.payload.is_some());
            off += ENTRY_BYTES;
        }
        let crc = crc32(&buf[..off]);
        buf[off..off + 4].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// CRC32 over the concatenated payload bytes, in entry order.
    pub fn payload_crc(&self) -> u32 {
        let mut all = Vec::new();
        for e in &self.entries {
            if let Some(p) = &e.payload {
                all.extend_from_slice(p);
            }
        }
        crc32(&all)
    }

    /// The by-value entries, in payload-block order.
    pub fn payload_entries(&self) -> impl Iterator<Item = &RecordEntry> {
        self.entries.iter().filter(|e| e.payload.is_some())
    }

    /// Parse a header region. Returns the record with payloads unset (the
    /// flag is kept as `Some(vec![])` placeholders) plus the payload CRC
    /// the caller must verify after reading the payload blocks.
    pub fn decode_header(buf: &[u8], spec: &JournalSpec) -> SlotHeader {
        if buf.iter().all(|&b| b == 0) {
            return SlotHeader::Empty;
        }
        if buf.len() >= 16 && &buf[0..4] == MAGIC_TOMBSTONE {
            let seq = u64::from_le_bytes(buf[4..12].try_into().expect("sized"));
            let crc = u32::from_le_bytes(buf[12..16].try_into().expect("sized"));
            if crc32(&buf[..12]) == crc {
                return SlotHeader::Tombstone(seq);
            }
            return SlotHeader::Torn;
        }
        if buf.len() < HEADER_FIXED + HEADER_CRC || &buf[0..4] != MAGIC_RECORD {
            return SlotHeader::Torn;
        }
        let n = u16::from_le_bytes(buf[21..23].try_into().expect("sized")) as usize;
        if n > spec.max_entries {
            return SlotHeader::Torn;
        }
        let end = HEADER_FIXED + ENTRY_BYTES * n;
        if buf.len() < end + HEADER_CRC {
            return SlotHeader::Torn;
        }
        let stored = u32::from_le_bytes(buf[end..end + 4].try_into().expect("sized"));
        if crc32(&buf[..end]) != stored {
            return SlotHeader::Torn;
        }
        let mode = match buf[20] {
            0 => RecordMode::ParityIntent,
            1 => RecordMode::Redo,
            _ => return SlotHeader::Torn,
        };
        let mut entries = Vec::with_capacity(n);
        let mut off = HEADER_FIXED;
        for _ in 0..n {
            let row = u16::from_le_bytes(buf[off..off + 2].try_into().expect("sized")) as usize;
            let col = u16::from_le_bytes(buf[off + 2..off + 4].try_into().expect("sized")) as usize;
            let crc = u32::from_le_bytes(buf[off + 4..off + 8].try_into().expect("sized"));
            entries.push(RecordEntry {
                cell: Cell::new(row, col),
                crc,
                payload: (buf[off + 8] != 0).then(Vec::new),
            });
            off += ENTRY_BYTES;
        }
        let payload_crc = u32::from_le_bytes(buf[23..27].try_into().expect("sized"));
        SlotHeader::Record(
            IntentRecord {
                seq: u64::from_le_bytes(buf[4..12].try_into().expect("sized")),
                stripe: u64::from_le_bytes(buf[12..20].try_into().expect("sized")) as usize,
                mode,
                entries,
            },
            payload_crc,
        )
    }

    /// Serialize a tombstone for `seq` into one block.
    pub fn encode_tombstone(seq: u64, block_size: usize) -> Vec<u8> {
        let mut buf = vec![0u8; block_size];
        buf[0..4].copy_from_slice(MAGIC_TOMBSTONE);
        buf[4..12].copy_from_slice(&seq.to_le_bytes());
        let crc = crc32(&buf[..12]);
        buf[12..16].copy_from_slice(&crc.to_le_bytes());
        buf
    }
}

/// Outcome of the last mount-time replay.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ReplayOutcome {
    /// No live records found — the array was shut down cleanly.
    Clean,
    /// Committed records were re-applied.
    Replayed,
    /// Replay ran against unreadable blocks and had to fall back to
    /// writing journaled parity without verifying the data cells.
    Degraded,
}

impl ReplayOutcome {
    /// Human-readable name (status output).
    pub fn name(self) -> &'static str {
        match self {
            ReplayOutcome::Clean => "clean",
            ReplayOutcome::Replayed => "replayed",
            ReplayOutcome::Degraded => "degraded",
        }
    }
}

/// What mount-time replay did, persisted in the journal state block and
/// surfaced by `dcode status` / shard snapshots.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ReplaySummary {
    /// Record slots scanned.
    pub scanned: u32,
    /// Committed records found live (and re-applied).
    pub replayed: u32,
    /// Torn / uncommitted records discarded by CRC.
    pub discarded: u32,
    /// How the replay went.
    pub outcome: ReplayOutcome,
}

impl Default for ReplaySummary {
    fn default() -> Self {
        ReplaySummary {
            scanned: 0,
            replayed: 0,
            discarded: 0,
            outcome: ReplayOutcome::Clean,
        }
    }
}

/// The journal's persistent mount state (one block on disk 0): how many
/// times the array was mounted and what the last replay found.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct JournalState {
    /// Mounts (format or attach) recorded so far.
    pub mounts: u64,
    /// Last mount's replay summary.
    pub last: ReplaySummary,
}

impl JournalState {
    /// Serialize into one block.
    pub fn encode(&self, block_size: usize) -> Vec<u8> {
        let mut buf = vec![0u8; block_size];
        buf[0..4].copy_from_slice(MAGIC_STATE);
        buf[4..12].copy_from_slice(&self.mounts.to_le_bytes());
        buf[12..16].copy_from_slice(&self.last.scanned.to_le_bytes());
        buf[16..20].copy_from_slice(&self.last.replayed.to_le_bytes());
        buf[20..24].copy_from_slice(&self.last.discarded.to_le_bytes());
        buf[24] = match self.last.outcome {
            ReplayOutcome::Clean => 0,
            ReplayOutcome::Replayed => 1,
            ReplayOutcome::Degraded => 2,
        };
        let crc = crc32(&buf[..25]);
        buf[25..29].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parse a state block; `None` for anything but a valid state record.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < 29 || &buf[0..4] != MAGIC_STATE {
            return None;
        }
        let crc = u32::from_le_bytes(buf[25..29].try_into().ok()?);
        if crc32(&buf[..25]) != crc {
            return None;
        }
        let outcome = match buf[24] {
            0 => ReplayOutcome::Clean,
            1 => ReplayOutcome::Replayed,
            2 => ReplayOutcome::Degraded,
            _ => return None,
        };
        Some(JournalState {
            mounts: u64::from_le_bytes(buf[4..12].try_into().ok()?),
            last: ReplaySummary {
                scanned: u32::from_le_bytes(buf[12..16].try_into().ok()?),
                replayed: u32::from_le_bytes(buf[16..20].try_into().ok()?),
                discarded: u32::from_le_bytes(buf[20..24].try_into().ok()?),
                outcome,
            },
        })
    }
}

/// A read-only sweep over the journal region (status reporting — replay
/// itself lives in [`ResilientArray`](crate::ResilientArray)).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JournalScan {
    /// Live (committed, unretired) records as `(disk, seq, stripe)`.
    pub live: Vec<(usize, u64, usize)>,
    /// Retired slots.
    pub tombstones: usize,
    /// Torn or unreadable slots.
    pub torn: usize,
    /// Never-written slots.
    pub empty: usize,
    /// The persistent mount state, if disk 0's state block is valid.
    pub state: Option<JournalState>,
}

/// Scan every record slot and the state block without modifying anything.
pub fn scan_journal<B: DiskBackend>(backend: &mut B, spec: &JournalSpec) -> JournalScan {
    let mut out = JournalScan {
        live: Vec::new(),
        tombstones: 0,
        torn: 0,
        empty: 0,
        state: None,
    };
    let bs = spec.block_size;
    for disk in 0..spec.disks {
        let mut header = vec![0u8; spec.header_blocks * bs];
        let mut readable = true;
        for hb in 0..spec.header_blocks {
            if backend
                .read_block(
                    disk,
                    spec.header_start() + hb,
                    &mut header[hb * bs..(hb + 1) * bs],
                )
                .is_err()
            {
                readable = false;
                break;
            }
        }
        if !readable {
            out.torn += 1;
            continue;
        }
        match IntentRecord::decode_header(&header, spec) {
            SlotHeader::Empty => out.empty += 1,
            SlotHeader::Tombstone(_) => out.tombstones += 1,
            SlotHeader::Torn => out.torn += 1,
            SlotHeader::Record(rec, _) => out.live.push((disk, rec.seq, rec.stripe)),
        }
    }
    let mut state = vec![0u8; bs];
    if backend
        .read_block(0, spec.state_block(), &mut state)
        .is_ok()
    {
        out.state = JournalState::decode(&state);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::dcode;

    fn spec() -> JournalSpec {
        JournalSpec::for_geometry(&dcode(5).unwrap(), 32, 3)
    }

    fn sample(spec: &JournalSpec) -> IntentRecord {
        IntentRecord {
            seq: 7,
            stripe: 2,
            mode: RecordMode::ParityIntent,
            entries: vec![
                RecordEntry {
                    cell: Cell::new(0, 1),
                    crc: 0xDEAD_BEEF,
                    payload: None,
                },
                RecordEntry {
                    cell: Cell::new(3, 2),
                    crc: 0x1234_5678,
                    payload: Some(vec![0xAB; spec.block_size]),
                },
            ],
        }
    }

    #[test]
    fn header_roundtrips() {
        let spec = spec();
        let rec = sample(&spec);
        let buf = rec.encode_header(&spec);
        assert_eq!(buf.len(), spec.header_blocks * spec.block_size);
        match IntentRecord::decode_header(&buf, &spec) {
            SlotHeader::Record(got, payload_crc) => {
                assert_eq!(got.seq, rec.seq);
                assert_eq!(got.stripe, rec.stripe);
                assert_eq!(got.mode, rec.mode);
                assert_eq!(got.entries.len(), 2);
                assert_eq!(got.entries[0].cell, Cell::new(0, 1));
                assert_eq!(got.entries[0].payload, None);
                assert_eq!(got.entries[1].payload, Some(Vec::new()));
                assert_eq!(payload_crc, rec.payload_crc());
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn torn_headers_are_rejected() {
        let spec = spec();
        let rec = sample(&spec);
        let mut buf = rec.encode_header(&spec);
        buf[30] ^= 0x01; // corrupt an entry byte under the CRC
        assert_eq!(IntentRecord::decode_header(&buf, &spec), SlotHeader::Torn);
        // A half-written header (tail still zero) is torn, not a record.
        // Cut inside the fixed fields so real content is actually lost.
        let mut half = rec.encode_header(&spec);
        let keep = HEADER_FIXED - 5;
        half[keep..].iter_mut().for_each(|b| *b = 0);
        assert_eq!(IntentRecord::decode_header(&half, &spec), SlotHeader::Torn);
        // All-zero is empty.
        assert_eq!(
            IntentRecord::decode_header(&vec![0u8; buf.len()], &spec),
            SlotHeader::Empty
        );
    }

    #[test]
    fn tombstone_and_state_roundtrip() {
        let spec = spec();
        let tomb = IntentRecord::encode_tombstone(42, spec.block_size);
        assert_eq!(
            IntentRecord::decode_header(&tomb, &spec),
            SlotHeader::Tombstone(42)
        );
        let st = JournalState {
            mounts: 9,
            last: ReplaySummary {
                scanned: 5,
                replayed: 1,
                discarded: 2,
                outcome: ReplayOutcome::Replayed,
            },
        };
        let buf = st.encode(spec.block_size);
        assert_eq!(JournalState::decode(&buf), Some(st));
        assert_eq!(JournalState::decode(&[0u8; 32]), None);
    }

    #[test]
    fn geometry_is_deterministic_and_fits() {
        for p in [5usize, 7, 11] {
            let layout = dcode(p).unwrap();
            let a = JournalSpec::for_geometry(&layout, 64, 4);
            let b = JournalSpec::for_geometry(&layout, 64, 4);
            assert_eq!(a, b);
            assert_eq!(a.blocks_per_disk(), journal_blocks_per_disk(&layout, 64));
            // Header region really holds the worst-case entry table.
            let worst = HEADER_FIXED + ENTRY_BYTES * a.max_entries + HEADER_CRC;
            assert!(a.header_blocks * 64 >= worst);
            assert_eq!(a.state_block(), a.data_blocks + a.blocks_per_disk() - 1);
        }
    }
}
